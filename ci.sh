#!/bin/sh
# Offline CI for the slam-toolkit workspace: release build, the full
# test suite, and an explicit pass over the paper's golden figures.
# The workspace has zero external dependencies, so everything here runs
# without network access.
set -eu

cd "$(dirname "$0")"

echo "== format =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace -- -D warnings

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests (workspace) =="
cargo test --offline --workspace -q

echo "== golden figures (1, 2, 3) =="
cargo test --offline -q --test figure1
cargo test --offline -q --test figure2
cargo test --offline -q --test figure3

echo "== determinism across worker counts =="
cargo test --offline -q --test determinism

echo "== pruning differential + corpus lint gate =="
# Lints every corpus-generated boolean program (pruned and unpruned)
# and proves the two abstractions normalize identically.
cargo test --offline -q --test prune_differential

echo "ci: all green"
