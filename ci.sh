#!/bin/sh
# Offline CI for the slam-toolkit workspace: release build, the full
# test suite, and an explicit pass over the paper's golden figures.
# The workspace has zero external dependencies, so everything here runs
# without network access.
set -eu

cd "$(dirname "$0")"

echo "== format =="
cargo fmt --check

echo "== clippy (deny warnings) =="
cargo clippy --offline --workspace -- -D warnings

echo "== build (release) =="
cargo build --release --offline --workspace

echo "== tests (workspace) =="
cargo test --offline --workspace -q

echo "== golden figures (1, 2, 3) =="
cargo test --offline -q --test figure1
cargo test --offline -q --test figure2
cargo test --offline -q --test figure3

echo "== determinism across worker counts =="
cargo test --offline -q --test determinism

echo "== pruning differential + corpus lint gate =="
# Lints every corpus-generated boolean program (pruned and unpruned)
# and proves the two abstractions normalize identically.
cargo test --offline -q --test prune_differential

echo "== incremental-session differentials =="
# Random session-vs-fresh-solver sequences and theory push/pop stress
# (prover crate), then the whole corpus abstracted with sessions on and
# off — boolean programs and deterministic counters must be identical.
cargo test --offline -q -p prover --test session_differential
cargo test --offline -q --test incremental_differential

echo "== incremental A/B smoke (exits nonzero on divergence) =="
inc_json="$(mktemp)"
./target/release/incremental_ab --smoke --json "$inc_json"
rm -f "$inc_json"

echo "== cross-iteration reuse differential =="
# The full CEGAR loop with and without the reuse session: byte-identical
# boolean programs at every iteration, same verdicts, same final
# predicate sets, worker-count invariant within each mode.
cargo test --offline -q --test reuse_differential

echo "== CEGAR reuse A/B smoke (exits nonzero on divergence) =="
cegar_json="$(mktemp)"
./target/release/cegar_ab --smoke --json "$cegar_json"
rm -f "$cegar_json"

echo "== alias-precision differential (unify vs inclusion) =="
# Whole-corpus subset cross-check (inclusion points-to sets must be
# subsets of the unification sets) plus verdict/final-predicate
# equality between the two alias modes at 1 and 4 workers.
cargo test --offline -q --test alias_differential

echo "== alias-precision A/B smoke (exits nonzero on divergence or subset violation) =="
alias_json="$(mktemp)"
./target/release/alias_ab --smoke --json "$alias_json"
rm -f "$alias_json"

echo "== slicing + interval-oracle differential =="
# The two ISSUE 7 passes are transparent: same verdicts and final
# predicates in all four {slice, intervals} x {on, off} configurations
# over the drivers and the whole generated corpus, at 1 and 4 workers,
# with the oracle leaving boolean programs byte-identical.
cargo test --offline -q --test slice_differential

echo "== slicing + interval A/B smoke (exits nonzero on divergence, ground-truth miss, <20% counter saving, or a >5% Table 1 regression) =="
./target/release/slice_ab --smoke --json "BENCH_slice.json" > /dev/null

echo "== cube-engine differential (search vs AllSAT enumeration) =="
# The two ISSUE 8 engines answer every F_V/G_V goal identically:
# byte-identical boolean programs, same verdicts, same final predicate
# sets over the drivers, the whole generated corpus, and the toys, at
# 1 and 4 workers (prover-call profiles may differ).
cargo test --offline -q --test enum_differential

echo "== cube-engine A/B smoke (exits nonzero on divergence, ground-truth miss, or no counter-family prover-call drop) =="
./target/release/enum_ab --smoke --json "BENCH_enum.json" > /dev/null

echo "== verification-service differential (scheduler + disk store) =="
# One batch across {disk store on/off} x {cold/warm} x {1,4 workers}:
# byte-identical boolean programs, verdicts, and final predicate sets
# in every configuration; a corrupted store degrades to a clean cold
# start (warning, identical outputs); a warm store must halve the
# batch's prover calls.
cargo test --offline -q --test serve_differential

echo "== disk-store robustness (truncation, bit flips, version skew, lock contention) =="
cargo test --offline -q -p diskcache

echo "== serve A/B smoke (exits nonzero on divergence or <50% warm prover-call drop) =="
./target/release/serve_ab --smoke --json "BENCH_serve.json" > /dev/null

echo "== corpus check-in gate =="
# Every file under corpus/ parses, instruments against its spec family
# and lints clean; generated drivers byte-match their generator output.
cargo test --offline -q --test corpus_sanity

echo "== matrix wall smoke (exits nonzero on any verdict mismatch) =="
# Fixed seeds: 7 spec families x 3 seeds x {safe, defect} x
# {reuse on/off}, every verdict checked against generator ground truth.
# BENCH_matrix.json is the checked-in record of this subset; the full
# 504-pair wall runs with --full (see EXPERIMENTS.md).
./target/release/matrix --smoke --json "BENCH_matrix.json" > /dev/null

echo "ci: all green"
