/* The in-development floppy driver of Table 1 ("an internally developed
 * floppy device driver"), for which the SLAM toolkit found a real error
 * in interrupt-request-packet handling. This synthetic counterpart seeds
 * the same class of bug: on the transfer-failure path the request is
 * completed once by the error handler and then, because the failure also
 * falls through to the normal epilogue, completed a second time. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
void IoCompleteRequest(void) { ; }
void IoCheckCompleted(void) { ; }
void HalStartMotor(void) { ; }
int HalTransferSector(int sector, int writing) { return sector; }

int motor_on;
int controller_busy;

struct irp {
    int sector;
    int writing;
    int status;
};

int FlnCheckController(void) {
    if (motor_on == 0) {
        motor_on = 1;
        HalStartMotor();
    }
    if (controller_busy == 1) {
        return 0;
    }
    controller_busy = 1;
    return 1;
}

/* error handler: fails the request and completes it */
void FlnFailRequest(struct irp *request, int rc) {
    request->status = rc;
    IoCompleteRequest();
}

int FlopnewReadWrite(struct irp *request) {
    int ready, rc;
    rc = 0;
    KeAcquireSpinLock();
    ready = FlnCheckController();
    KeReleaseSpinLock();
    if (ready == 0) {
        FlnFailRequest(request, -3);
        IoCheckCompleted();
        return -3;
    }
    rc = HalTransferSector(request->sector, request->writing);
    if (rc < 0) {
        /* BUG: the error handler completes the IRP, but control falls
         * through to the common epilogue below, which completes it
         * again. */
        FlnFailRequest(request, rc);
    }
    KeAcquireSpinLock();
    controller_busy = 0;
    KeReleaseSpinLock();
    IoCompleteRequest();
    IoCheckCompleted();
    return rc;
}
