/* Synthetic floppy controller driver, standing in for the DDK floppy
 * sample of Table 1. Handles read/write request packets with motor
 * control: the motor is spun up lazily under the lock, requests are
 * queued when the controller is busy, and every IRP is completed exactly
 * once on every path. Both the locking and the IRP-completion properties
 * hold for this driver. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
void IoCompleteRequest(void) { ; }
void IoCheckCompleted(void) { ; }
void HalStartMotor(void) { ; }
void HalStopMotor(void) { ; }
int HalTransferSector(int sector, int writing) { return sector; }

int motor_on;
int controller_busy;
int queue_len;

struct irp {
    int sector;
    int writing;
    int status;
};

/* called with the lock held; spins the motor up if needed and reports
 * whether the controller can take the request now */
int FlCheckController(void) {
    if (motor_on == 0) {
        motor_on = 1;
        HalStartMotor();
    }
    if (controller_busy == 1) {
        return 0;
    }
    controller_busy = 1;
    return 1;
}

/* transfer one sector; returns negative status on device error */
int FlTransfer(struct irp *request) {
    int rc;
    rc = HalTransferSector(request->sector, request->writing);
    if (rc < 0) {
        request->status = rc;
        return rc;
    }
    request->status = 0;
    return 0;
}

int FlQueueRequest(void) {
    queue_len = queue_len + 1;
    return queue_len;
}

/* main dispatch for read/write IRPs */
int FloppyReadWrite(struct irp *request) {
    int ready, rc, queued;
    queued = 0;
    rc = 0;
    KeAcquireSpinLock();
    if (request->sector < 0) {
        /* invalid request: fail it immediately */
        request->status = -1;
        KeReleaseSpinLock();
        IoCompleteRequest();
        IoCheckCompleted();
        return -1;
    }
    ready = FlCheckController();
    if (ready == 0) {
        /* controller busy: queue and complete later from the DPC */
        queued = FlQueueRequest();
        KeReleaseSpinLock();
        if (queued > 8) {
            /* queue overflow: fail the request now */
            IoCompleteRequest();
            IoCheckCompleted();
            return -2;
        }
        /* the queued request is completed by FloppyDpc, not here */
        return 1;
    }
    KeReleaseSpinLock();
    rc = FlTransfer(request);
    KeAcquireSpinLock();
    controller_busy = 0;
    if (queue_len == 0) {
        motor_on = 0;
        KeReleaseSpinLock();
        HalStopMotor();
    } else {
        KeReleaseSpinLock();
    }
    IoCompleteRequest();
    IoCheckCompleted();
    return rc;
}

/* deferred completion of one queued request */
int FloppyDpc(struct irp *request) {
    int rc;
    KeAcquireSpinLock();
    if (queue_len > 0) {
        queue_len = queue_len - 1;
        KeReleaseSpinLock();
        rc = FlTransfer(request);
        IoCompleteRequest();
        IoCheckCompleted();
        return rc;
    }
    KeReleaseSpinLock();
    return 0;
}
