/* Synthetic NT-style ioctl dispatcher, standing in for the DDK `ioctl`
 * sample of Table 1. Control-intensive: a chain of request codes, each
 * taking and releasing the device spin lock around its work, with an
 * early-exit path for invalid parameters. The locking property holds. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
int IoValidateBuffer(int length) { return length; }

struct device_ext {
    int opened;
    int busy;
    int buffer_len;
};

int status_ok;
int status_invalid;

int DeviceIoControl(struct device_ext *dev, int code, int length) {
    int status;
    int validated;
    status_ok = 0;
    status_invalid = 1;
    status = status_ok;

    if (code == 1) {
        /* query: lock, read state, unlock */
        KeAcquireSpinLock();
        if (dev->opened == 0) {
            status = status_invalid;
        }
        KeReleaseSpinLock();
        return status;
    }
    if (code == 2) {
        /* write: validate before taking the lock */
        validated = IoValidateBuffer(length);
        if (validated <= 0) {
            return status_invalid;
        }
        KeAcquireSpinLock();
        if (dev->busy == 1) {
            status = status_invalid;
            KeReleaseSpinLock();
            return status;
        }
        dev->busy = 1;
        dev->buffer_len = validated;
        KeReleaseSpinLock();
        return status;
    }
    if (code == 3) {
        /* reset: loop until the device quiesces */
        int tries;
        tries = 3;
        while (tries > 0) {
            KeAcquireSpinLock();
            if (dev->busy == 0) {
                dev->buffer_len = 0;
                KeReleaseSpinLock();
                return status_ok;
            }
            dev->busy = 0;
            KeReleaseSpinLock();
            tries = tries - 1;
        }
        return status_invalid;
    }
    return status_invalid;
}
