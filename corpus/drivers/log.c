/* Synthetic logging driver, standing in for the `log` row of Table 1.
 * Appends records to a circular buffer under the device lock, flushing
 * through a helper when the buffer fills; the flush path temporarily
 * drops the lock around the slow write. The locking property holds. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
int HalWriteBlock(int count) { return count; }

int log_head;
int log_count;
int log_capacity;
int dropped;

/* must be called with the lock held; returns with the lock held */
int LogFlush(void) {
    int to_write, written;
    to_write = log_count;
    if (to_write == 0) {
        return 0;
    }
    /* drop the lock around the slow hardware write */
    KeReleaseSpinLock();
    written = HalWriteBlock(to_write);
    KeAcquireSpinLock();
    if (written < 0) {
        dropped = dropped + to_write;
        log_count = 0;
        return written;
    }
    log_count = log_count - written;
    if (log_count < 0) {
        log_count = 0;
    }
    return written;
}

int LogAppend(int severity) {
    int rc;
    rc = 0;
    KeAcquireSpinLock();
    if (log_capacity == 0) {
        log_capacity = 64;
    }
    if (log_count >= log_capacity) {
        rc = LogFlush();
        if (rc < 0) {
            KeReleaseSpinLock();
            return rc;
        }
    }
    log_count = log_count + 1;
    log_head = log_head + 1;
    if (severity >= 3) {
        /* urgent records force a flush */
        rc = LogFlush();
    }
    KeReleaseSpinLock();
    return rc;
}
