/* Synthetic mirrored-extension driver: two statically allocated device
 * extensions whose busy flags are reached through pointers. `own` and
 * `peer` each point at exactly one flag, but both flow into `cur`, so a
 * unification-based points-to analysis merges all three pointers into
 * one equivalence class covering both flags, while the inclusion-based
 * analysis keeps own -> {primary.busy} and peer -> {shadow.busy}. The
 * locking property holds unconditionally; the seeded predicates over
 * the two flags measure how many Morris-axiom alias disjuncts each
 * analysis charges the stores (see `bench --bin alias_ab`). */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }

struct DEVICE_EXTENSION {
    int busy;
    int errors;
};

struct DEVICE_EXTENSION primary;
struct DEVICE_EXTENSION shadow;

int DispatchMirror(int request) {
    int *own;
    int *peer;
    int *cur;
    own = &primary.busy;
    peer = &shadow.busy;
    if (request > 0) {
        cur = own;
    } else {
        cur = peer;
    }
    *peer = 0;
    KeAcquireSpinLock();
    *own = 1;
    *cur = request;
    KeReleaseSpinLock();
    return primary.busy;
}
