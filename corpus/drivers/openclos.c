/* Synthetic open/close handler pair, standing in for the DDK `openclos`
 * sample of Table 1. Maintains a reference count under the device lock;
 * the close path conditionally powers the device down while still holding
 * the lock. The locking property holds. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
void PoPowerDown(void) { ; }
void PoPowerUp(void) { ; }

int refcount;
int powered;

int DeviceOpen(int exclusive) {
    int granted;
    granted = 0;
    KeAcquireSpinLock();
    if (exclusive == 1) {
        if (refcount == 0) {
            refcount = 1;
            granted = 1;
        }
    } else {
        refcount = refcount + 1;
        granted = 1;
    }
    if (granted == 1) {
        if (powered == 0) {
            powered = 1;
            KeReleaseSpinLock();
            PoPowerUp();
            return 1;
        }
    }
    KeReleaseSpinLock();
    return granted;
}

int DeviceClose(void) {
    int drop_power;
    drop_power = 0;
    KeAcquireSpinLock();
    if (refcount > 0) {
        refcount = refcount - 1;
    }
    if (refcount == 0) {
        if (powered == 1) {
            powered = 0;
            drop_power = 1;
        }
    }
    KeReleaseSpinLock();
    if (drop_power == 1) {
        PoPowerDown();
    }
    return 0;
}

int DispatchOpenClose(int opening, int exclusive) {
    int status;
    if (opening == 1) {
        status = DeviceOpen(exclusive);
    } else {
        status = DeviceClose();
    }
    return status;
}
