/* Synthetic retry dispatch routine. The lock is acquired and released
 * under the same test of `attempts`, so proving the locking discipline
 * needs a predicate over `attempts`; harnesses seed `attempts > 0` in
 * one polarity (left alone, refinement discovers both sides and their
 * mutual exclusion keeps them enforce-live). The bookkeeping after the
 * release decrements `attempts` and stores it into an untracked
 * global: live C code, but dead at the predicate level, so the
 * abstraction's final update to the attempts predicate can be
 * pruned. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
void IoMarkPending(void) { ; }

int backoff_hint;

void DispatchRetry(int attempts) {
    if (attempts > 0) {
        KeAcquireSpinLock();
    }
    IoMarkPending();
    if (attempts > 0) {
        KeReleaseSpinLock();
    }
    attempts = attempts - 1;
    backoff_hint = attempts;
}
