/* Synthetic start/reset driver, standing in for the DDK `srdriver` sample
 * of Table 1. A retry loop re-acquires the lock each attempt; failure
 * paths release before backing off; a nested helper performs the actual
 * hardware poke under the caller's lock. The locking property holds. */

void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }
int HalPokeHardware(int value) { return value; }
void KeStallExecution(void) { ; }

int device_state;
int last_error;

/* must be called with the lock held; never touches the lock */
int ProgramController(int value) {
    int result;
    result = HalPokeHardware(value);
    if (result < 0) {
        last_error = result;
        device_state = 2;
        return 0;
    }
    device_state = 1;
    return 1;
}

int StartDevice(int config) {
    int attempts, done, ok;
    attempts = 0;
    done = 0;
    ok = 0;
    while (done == 0) {
        if (attempts >= 3) {
            done = 1;
        } else {
            KeAcquireSpinLock();
            if (device_state == 2) {
                /* needs reset before retry */
                device_state = 0;
                KeReleaseSpinLock();
                KeStallExecution();
            } else {
                ok = ProgramController(config);
                KeReleaseSpinLock();
                if (ok == 1) {
                    done = 1;
                }
            }
            attempts = attempts + 1;
        }
    }
    return ok;
}

int ResetDevice(void) {
    int was_started;
    was_started = 0;
    KeAcquireSpinLock();
    if (device_state == 1) {
        was_started = 1;
    }
    device_state = 0;
    last_error = 0;
    KeReleaseSpinLock();
    if (was_started == 1) {
        KeStallExecution();
        KeAcquireSpinLock();
        device_state = 1;
        KeReleaseSpinLock();
    }
    return was_started;
}

int DispatchStartReset(int starting, int config) {
    int status;
    if (starting == 1) {
        status = StartDevice(config);
    } else {
        status = ResetDevice();
    }
    return status;
}
