// corpusgen: family=apiorder seed=0 statements=5 depth=2 pressure=2 pointers=false loops=true counter=true truth=safe
void IoInitDevice(void) { ; }
void IoStartDevice(void) { ; }
void IoStopDevice(void) { ; }
void IoSubmitRequest(void) { ; }

void DispatchDevice(int n0, int n1, int n2, int n3) {
    int t0;
    int t1;
    int i0;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    IoInitDevice();
    if (n0 > 0) {
        IoStartDevice();
        t0 = t0 - 1;
        IoSubmitRequest();
    }
    t0 = t0 - 1;
    t0 = t0 + 1;
    if (n0 > 0) {
        IoStopDevice();
    }
    IoStartDevice();
    IoSubmitRequest();
    IoSubmitRequest();
    IoStopDevice();
    t1 = t1 + t0;
    if (n1 > 0) {
        IoStartDevice();
        IoSubmitRequest();
        IoSubmitRequest();
    }
    t1 = t1 + t0;
    t0 = t0 - 1;
    if (n1 > 0) {
        IoStopDevice();
    }
    t0 = t0 - 1;
    i0 = 0;
    while (i0 < n2) {
        if (n3 > 0) {
            t0 = t0 + 1;
            t0 = t0 - 1;
        }
        if (i0 >= 0) {
            IoStartDevice();
            t0 = t0 - 1;
            IoStopDevice();
        }
        i0 = i0 + 1;
    }
}
