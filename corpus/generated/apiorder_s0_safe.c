// corpusgen: family=apiorder seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=safe
void IoInitDevice(void) { ; }
void IoStartDevice(void) { ; }
void IoStopDevice(void) { ; }
void IoSubmitRequest(void) { ; }

void DispatchDevice(int n0, int n1) {
    int t0;
    int t1;
    int i0;
    int i1;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    IoInitDevice();
    IoStartDevice();
    IoSubmitRequest();
    t1 = 0;
    IoStopDevice();
    t1 = t1 + t0;
    i0 = n0;
    while (i0 > 0) {
        t0 = t0 - 1;
        i0 = i0 - 1;
    }
    i1 = n1;
    while (i1 > 0) {
        t1 = 0;
        IoStartDevice();
        IoSubmitRequest();
        t0 = t0 + 1;
        IoStopDevice();
        i1 = i1 - 1;
    }
}
