// corpusgen: family=apiorder seed=7 statements=7 depth=2 pressure=1 pointers=true loops=false counter=false truth=safe
void IoInitDevice(void) { ; }
void IoStartDevice(void) { ; }
void IoStopDevice(void) { ; }
void IoSubmitRequest(void) { ; }

void DispatchDevice(int b0, int b1, int b2) {
    int t0;
    int t1;
    int scratch;
    int *sp;
    t0 = 0;
    t1 = 0;
    scratch = 0;
    t0 = t0 - 1;
    IoInitDevice();
    IoStartDevice();
    t1 = t1 + t0;
    t0 = t0 - 1;
    IoStopDevice();
    t0 = t0 + 1;
    t0 = t0 + 1;
    t1 = t1 + t0;
    IoStartDevice();
    IoSubmitRequest();
    IoStopDevice();
    t0 = t0 + 1;
    IoStartDevice();
    t0 = t0 - 1;
    IoSubmitRequest();
    IoStopDevice();
    if (b0 > 0) {
        IoStartDevice();
        t1 = t1 + t0;
        IoSubmitRequest();
    }
    if (b1 > 0) {
        sp = &scratch;
        *sp = *sp + 1;
        if (b2 > 0) {
            sp = &scratch;
            *sp = *sp + 1;
        }
    }
    if (b0 > 0) {
        IoStopDevice();
    }
}
