// corpusgen: family=dfree seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=close-at-zero
void ExAllocatePool(void) { ; }
void ExFreePool(void) { ; }

void DispatchPool(int n0, int n1) {
    int t0;
    int t1;
    int i0;
    int i1;
    t0 = 0;
    t1 = 0;
    ExFreePool(); /* DEFECT: close-at-zero */
    t0 = t0 + 1;
    ExAllocatePool();
    t1 = t1 + t0;
    t0 = t0 + 1;
    ExFreePool();
    i0 = n0;
    while (i0 > 0) {
        t1 = 0;
        ExAllocatePool();
        t1 = t1 + t0;
        t0 = t0 - 1;
        ExFreePool();
        i0 = i0 - 1;
    }
    i1 = n1;
    while (i1 > 0) {
        t0 = t0 + 1;
        i1 = i1 - 1;
    }
    ExAllocatePool();
    t1 = 0;
    t1 = 0;
    ExFreePool();
}
