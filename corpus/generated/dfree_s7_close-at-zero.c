// corpusgen: family=dfree seed=7 statements=7 depth=2 pressure=1 pointers=true loops=false counter=false truth=close-at-zero
void ExAllocatePool(void) { ; }
void ExFreePool(void) { ; }

void DispatchPool(int b0, int b1) {
    int t0;
    int t1;
    int scratch;
    int *sp;
    t0 = 0;
    t1 = 0;
    scratch = 0;
    t0 = t0 - 1;
    ExAllocatePool();
    t0 = t0 + 1;
    t1 = t1 + t0;
    ExFreePool();
    t0 = t0 + 1;
    t1 = t1 + t0;
    if (b0 > 0) {
        ExAllocatePool();
        t0 = t0 + 1;
    }
    t0 = t0 - 1;
    sp = &scratch;
    *sp = *sp + 1;
    if (b0 > 0) {
        ExFreePool();
    }
    t0 = t0 - 1;
    if (b1 > 0) {
        t0 = t0 - 1;
        ExFreePool(); /* DEFECT: close-at-zero */
        t0 = t0 + 1;
    }
    t0 = t0 - 1;
    t0 = t0 - 1;
}
