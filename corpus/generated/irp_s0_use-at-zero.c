// corpusgen: family=irp seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=use-at-zero
void IoCompleteRequest(void) { ; }
void IoCheckCompleted(void) { ; }

void DispatchIrp(int n0) {
    int t0;
    int t1;
    int i0;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    IoCheckCompleted(); /* DEFECT: use-at-zero */
    IoCompleteRequest();
    IoCheckCompleted();
    t1 = 0;
    t1 = t1 + t0;
    i0 = n0;
    while (i0 > 0) {
        t0 = t0 - 1;
        i0 = i0 - 1;
    }
    t1 = 0;
}
