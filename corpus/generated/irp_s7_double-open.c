// corpusgen: family=irp seed=7 statements=7 depth=2 pressure=1 pointers=true loops=false counter=false truth=double-open
void IoCompleteRequest(void) { ; }
void IoCheckCompleted(void) { ; }

void DispatchIrp(int b0, int b1) {
    int t0;
    int t1;
    int scratch;
    int *sp;
    t0 = 0;
    t1 = 0;
    scratch = 0;
    t0 = t0 - 1;
    IoCompleteRequest();
    t1 = t1 + t0;
    t0 = t0 - 1;
    IoCompleteRequest(); /* DEFECT: double-open */
    IoCheckCompleted();
    if (b0 > 0) {
        if (b1 > 0) {
            sp = &scratch;
            *sp = *sp + 1;
        }
        t0 = t0 - 1;
    }
    t0 = t0 + 1;
    t0 = t0 + 1;
    IoCheckCompleted();
    t1 = t1 + t0;
    sp = &scratch;
    *sp = *sp + 1;
}
