// corpusgen: family=irql seed=0 statements=5 depth=2 pressure=2 pointers=false loops=true counter=true truth=double-open
void KeRaiseIrql(void) { ; }
void KeLowerIrql(void) { ; }

void DispatchIrql(int n0, int n1, int n2) {
    int t0;
    int t1;
    int i0;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    if (n0 > 0) {
        KeRaiseIrql();
        t0 = t0 + 1;
        t0 = t0 - 1;
    }
    t1 = 0;
    t0 = t0 - 1;
    if (n0 > 0) {
        KeRaiseIrql(); /* DEFECT: double-open */
        KeLowerIrql();
    }
    t0 = t0 - 1;
    i0 = 0;
    while (i0 < n1) {
        t1 = 0;
        if (i0 >= 0) {
            KeRaiseIrql();
            t0 = t0 + 1;
            KeLowerIrql();
        }
        i0 = i0 + 1;
    }
    KeRaiseIrql();
    t0 = t0 - 1;
    t1 = t1 + t0;
    KeLowerIrql();
    if (n2 > 0) {
        KeRaiseIrql();
        t1 = 0;
        t1 = t1 + t0;
    }
    t1 = t1 + t0;
    t0 = t0 - 1;
    if (n2 > 0) {
        KeLowerIrql();
    }
    t0 = t0 - 1;
}
