// corpusgen: family=irql seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=safe
void KeRaiseIrql(void) { ; }
void KeLowerIrql(void) { ; }

void DispatchIrql(int n0, int n1) {
    int t0;
    int t1;
    int i0;
    int i1;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    KeRaiseIrql();
    t1 = t1 + t0;
    t0 = t0 + 1;
    KeLowerIrql();
    i0 = n0;
    while (i0 > 0) {
        t1 = 0;
        KeRaiseIrql();
        t1 = t1 + t0;
        t0 = t0 - 1;
        KeLowerIrql();
        i0 = i0 - 1;
    }
    i1 = n1;
    while (i1 > 0) {
        t0 = t0 + 1;
        i1 = i1 - 1;
    }
    KeRaiseIrql();
    t1 = 0;
    t1 = 0;
    KeLowerIrql();
}
