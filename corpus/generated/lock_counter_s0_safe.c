// corpusgen: family=lock seed=0 statements=5 depth=2 pressure=2 pointers=false loops=true counter=true truth=safe
void KeAcquireSpinLock(void) { ; }
void KeReleaseSpinLock(void) { ; }

void DispatchLock(int n0, int n1, int n2) {
    int t0;
    int t1;
    int i0;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    if (n0 > 0) {
        KeAcquireSpinLock();
        t0 = t0 + 1;
        t0 = t0 - 1;
    }
    t1 = 0;
    t0 = t0 - 1;
    if (n0 > 0) {
        KeReleaseSpinLock();
    }
    t0 = t0 - 1;
    i0 = 0;
    while (i0 < n1) {
        t1 = 0;
        if (i0 >= 0) {
            KeAcquireSpinLock();
            t0 = t0 + 1;
            KeReleaseSpinLock();
        }
        i0 = i0 + 1;
    }
    KeAcquireSpinLock();
    t0 = t0 - 1;
    t1 = t1 + t0;
    KeReleaseSpinLock();
    if (n2 > 0) {
        KeAcquireSpinLock();
        t1 = 0;
        t1 = t1 + t0;
    }
    t1 = t1 + t0;
    t0 = t0 - 1;
    if (n2 > 0) {
        KeReleaseSpinLock();
    }
    t0 = t0 - 1;
}
