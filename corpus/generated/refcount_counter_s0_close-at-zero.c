// corpusgen: family=refcount seed=0 statements=5 depth=2 pressure=2 pointers=false loops=true counter=true truth=close-at-zero
void ObReferenceObject(void) { ; }
void ObDereferenceObject(void) { ; }

void DispatchObject(int n0, int n1, int n2, int n3, int n4) {
    int t0;
    int t1;
    int i0;
    int i1;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    if (n0 > 0) {
        ObReferenceObject();
        t0 = t0 + 1;
        t0 = t0 - 1;
    }
    t1 = 0;
    t0 = t0 - 1;
    if (n0 > 0) {
        ObDereferenceObject();
    }
    t0 = t0 - 1;
    i0 = 0;
    while (i0 < n1) {
        t1 = 0;
        i0 = i0 + 1;
    }
    i1 = 0;
    while (i1 < n2) {
        ObDereferenceObject(); /* DEFECT: close-at-zero */
        t0 = t0 + 1;
        i1 = i1 + 1;
    }
    t0 = t0 - 1;
    if (n3 > 0) {
        if (n4 > 0) {
            t1 = 0;
            t0 = t0 + 1;
        }
        t0 = t0 - 1;
    }
}
