// corpusgen: family=refcount seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=close-at-zero
void ObReferenceObject(void) { ; }
void ObDereferenceObject(void) { ; }

void DispatchObject(int b0, int b1) {
    int t0;
    int t1;
    t0 = 0;
    t1 = 0;
    ObDereferenceObject(); /* DEFECT: close-at-zero */
    t0 = t0 + 1;
    ObReferenceObject();
    t1 = t1 + t0;
    t0 = t0 + 1;
    ObDereferenceObject();
    if (b0 > 0) {
        t1 = 0;
        t1 = t1 + t0;
    }
    t0 = t0 + 1;
    if (b1 > 0) {
        t1 = 0;
        t1 = 0;
    }
}
