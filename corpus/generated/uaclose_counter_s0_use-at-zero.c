// corpusgen: family=uaclose seed=0 statements=5 depth=2 pressure=2 pointers=false loops=true counter=true truth=use-at-zero
void ZwOpenFile(void) { ; }
void ZwClose(void) { ; }
void ZwReadFile(void) { ; }

void DispatchFile(int n0, int n1, int n2, int n3) {
    int t0;
    int t1;
    int i0;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    ZwReadFile(); /* DEFECT: use-at-zero */
    if (n0 > 0) {
        ZwOpenFile();
        t0 = t0 - 1;
        ZwReadFile();
    }
    t0 = t0 - 1;
    t0 = t0 + 1;
    if (n0 > 0) {
        ZwClose();
    }
    ZwOpenFile();
    ZwReadFile();
    ZwReadFile();
    ZwClose();
    t1 = t1 + t0;
    if (n1 > 0) {
        ZwOpenFile();
        ZwReadFile();
        ZwReadFile();
    }
    t1 = t1 + t0;
    t0 = t0 - 1;
    if (n1 > 0) {
        ZwClose();
    }
    t0 = t0 - 1;
    i0 = 0;
    while (i0 < n2) {
        if (n3 > 0) {
            t0 = t0 + 1;
            t0 = t0 - 1;
        }
        if (i0 >= 0) {
            ZwOpenFile();
            t0 = t0 - 1;
            ZwClose();
        }
        i0 = i0 + 1;
    }
}
