// corpusgen: family=uaclose seed=0 statements=3 depth=1 pressure=0 pointers=false loops=true counter=false truth=safe
void ZwOpenFile(void) { ; }
void ZwClose(void) { ; }
void ZwReadFile(void) { ; }

void DispatchFile(int n0, int n1) {
    int t0;
    int t1;
    int i0;
    int i1;
    t0 = 0;
    t1 = 0;
    t0 = t0 + 1;
    ZwOpenFile();
    ZwReadFile();
    t1 = 0;
    ZwClose();
    t1 = t1 + t0;
    i0 = n0;
    while (i0 > 0) {
        t0 = t0 - 1;
        i0 = i0 - 1;
    }
    i1 = n1;
    while (i1 > 0) {
        t1 = 0;
        ZwOpenFile();
        ZwReadFile();
        t0 = t0 + 1;
        ZwClose();
        i1 = i1 - 1;
    }
}
