// corpusgen: family=uaclose seed=7 statements=7 depth=2 pressure=1 pointers=true loops=false counter=false truth=use-at-zero
void ZwOpenFile(void) { ; }
void ZwClose(void) { ; }
void ZwReadFile(void) { ; }

void DispatchFile(int b0, int b1, int b2) {
    int t0;
    int t1;
    int scratch;
    int *sp;
    t0 = 0;
    t1 = 0;
    scratch = 0;
    t0 = t0 - 1;
    ZwOpenFile();
    t1 = t1 + t0;
    t0 = t0 - 1;
    ZwClose();
    ZwReadFile(); /* DEFECT: use-at-zero */
    t0 = t0 + 1;
    t0 = t0 + 1;
    t1 = t1 + t0;
    ZwOpenFile();
    ZwReadFile();
    ZwClose();
    t0 = t0 + 1;
    ZwOpenFile();
    t0 = t0 - 1;
    ZwReadFile();
    ZwClose();
    if (b0 > 0) {
        ZwOpenFile();
        t1 = t1 + t0;
        ZwReadFile();
    }
    if (b1 > 0) {
        sp = &scratch;
        *sp = *sp + 1;
        if (b2 > 0) {
            sp = &scratch;
            *sp = *sp + 1;
        }
    }
    if (b0 > 0) {
        ZwClose();
    }
}
