/* Liveness-stress toy: a polling loop drains two counters, then the
 * epilogue folds both into untracked bookkeeping. The final decrements
 * still change the tracked predicates (their weakest preconditions are
 * not constant), but no later statement observes either predicate, so
 * a liveness-aware abstraction engine can skip both cube searches. */
int spent;

int poll(int budget, int signal) {
    int seen;
    seen = 0;
    while (budget > 0) {
        if (signal > 0) {
            seen = seen + 1;
            signal = signal - 1;
        }
        budget = budget - 1;
    }
    budget = budget - 1;
    signal = signal - 1;
    spent = budget + signal;
    return seen;
}
