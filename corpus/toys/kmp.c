/* Knuth-Morris-Pratt string matching over integer arrays, after the
 * example Necula used for proof-carrying code [26]. The asserts are the
 * array-bounds obligations whose loop invariants the PCC compiler had to
 * generate; predicate abstraction discovers them automatically from the
 * index-bound predicates. */
int pat[4];
int str[16];
int fail[4];

int kmp(int m, int n) {
    int i, j;
    assume(m >= 1);
    assume(m <= 4);
    assume(n >= 0);
    assume(n <= 16);
    /* failure function */
    fail[0] = 0;
    i = 1;
    j = 0;
    while (i < m) {
        assert(i >= 0);
        assert(i < 4);
        if (pat[i] == pat[j]) {
            fail[i] = j + 1;
            i = i + 1;
            j = j + 1;
        } else {
            if (j == 0) {
                fail[i] = 0;
                i = i + 1;
            } else {
                j = fail[j - 1];
                assume(j >= 0);
                assume(j < m);
            }
        }
    }
    /* scan */
    i = 0;
    j = 0;
    while (i < n) {
        L: assert(i >= 0);
        assert(i < 16);
        if (str[i] == pat[j]) {
            i = i + 1;
            j = j + 1;
            if (j == m) {
                return i - m;
            }
        } else {
            if (j == 0) {
                i = i + 1;
            } else {
                j = fail[j - 1];
                assume(j >= 0);
                assume(j < m);
            }
        }
    }
    return -1;
}
