/* List membership test: returns 1 iff some cell holds v. */
typedef struct cell {
    int val;
    struct cell *next;
} *list;

int listfind(list l, int v) {
    list curr;
    int found;
    curr = l;
    found = 0;
    while (curr != NULL) {
        if (curr->val == v) {
            found = 1;
            L: break;
        }
        curr = curr->next;
    }
    return found;
}
