/* Array quicksort (Lomuto partition), after Necula's PCC example [26].
 * The asserts are the array-bounds obligations; the loop invariant
 * lo <= i <= j <= hi < 16 is discovered from the index predicates. */
int a[16];

void qsort_range(int lo, int hi) {
    int i, j, pivot, tmp;
    assume(lo >= 0);
    assume(hi < 16);
    if (lo >= hi) {
        return;
    }
    pivot = a[hi];
    i = lo;
    j = i;
    while (j < hi) {
        L: assert(j >= 0);
        assert(j < 16);
        assert(i >= 0);
        assert(i < 16);
        if (a[j] < pivot) {
            tmp = a[i];
            a[i] = a[j];
            a[j] = tmp;
            i = i + 1;
        }
        j = j + 1;
    }
    tmp = a[i];
    a[i] = a[hi];
    a[hi] = tmp;
    qsort_range(lo, i - 1);
    qsort_range(i + 1, hi);
}
