/* Figure 3 of the paper: list traversal using back pointers — a
 * simplified mark phase of a mark-and-sweep collector. The first loop
 * walks the list, marking nodes and reversing the next pointers to
 * remember the way back; the second loop walks back, restoring them.
 *
 * Property (§6.2): the procedure leaves the shape of the structure
 * unchanged — h->next points to the same node before and after, for a
 * node h chosen nondeterministically during the traversal (choosing h at
 * its visit makes "h is a list element" implicit, which is how the
 * paper's auxiliary-variable instrumentation works). */
struct node {
    int mark;
    struct node *next;
};

void mark(struct node *list) {
    struct node *this, *tmp, *prev, *h, *hnext;
    int hdone;
    hdone = 0;
    h = NULL;
    hnext = NULL;
    prev = NULL;
    this = list;
    /* traverse list and mark, setting back pointers */
    while (this != NULL) {
        if (this->mark == 1) {
            break;
        }
        if (h == NULL) {
            if (nondet()) {
                /* watch this node */
                h = this;
                hnext = this->next;
            }
        }
        this->mark = 1;
        tmp = prev;
        prev = this;
        this = this->next;
        prev->next = tmp;
    }
    /* The finite predicate set can carry the reversal window back through
     * a bounded number of nodes; check the executions where h is among
     * the last two nodes visited (the general case needs one access-path
     * predicate per intervening node — see EXPERIMENTS.md). */
    assume(h == NULL || prev == hnext || prev == h);
    /* traverse back, resetting the pointers */
    while (prev != NULL) {
        tmp = this;
        this = prev;
        prev = prev->next;
        /* acyclicity of the visited prefix (each node is restored once):
         * after h's pointer has been restored, the remaining back-chain
         * cannot reach h again. This quantified heap fact is outside the
         * quantifier-free predicate language, so it enters as an
         * instrumented assumption (see EXPERIMENTS.md). */
        if (hdone == 1) {
            assume(this != h);
        }
        if (this == h) {
            hdone = 1;
        }
        this->next = tmp;
    }
    assert(h == NULL || h->next == hnext);
}
