//! Static well-formedness verifier ("bp-lint") for generated boolean
//! programs, plus the liveness-based normalizer the differential test
//! suite compares pruned/unpruned abstractions with.
//!
//! The lint is a CBMC-style sanity gate over `bp::ast`: a boolean
//! program that trips any check is either malformed (undefined labels,
//! arity mismatches, undeclared variables) or suspicious in a way a
//! correct abstraction never is (unreachable code, dead variables,
//! conflicting parallel-assignment targets, degenerate `enforce`
//! clauses). C2bp output must lint clean; the seeded-defect fixtures in
//! the test suite document exactly what each check catches.

use crate::dataflow::{reachable, solve, BitSet, Cfg, Direction};
use bp::ast::{BExpr, BProc, BProgram, BStmt};
use bp::flow::{flatten_proc, BInstr, FlatProc};
use bp::print::{bexpr_to_string, var_to_string};
use cparse::ast::StmtId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Lint category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintKind {
    /// `goto L` where `L` is not defined in the procedure.
    UndefinedLabel,
    /// The same label defined more than once in a procedure.
    DuplicateLabel,
    /// A statement no path from the procedure entry can reach.
    UnreachableStmt,
    /// A declared variable never referenced by any statement.
    DeadVar,
    /// The same target assigned twice in one parallel assignment.
    DuplicateTarget,
    /// Parallel assignment with differing target/value counts.
    ArityMismatch,
    /// A referenced variable not declared in any enclosing scope.
    UndeclaredVar,
    /// A call to a procedure the program does not define.
    UndefinedCallee,
    /// A call whose argument or destination count disagrees with the
    /// callee's signature.
    CallArity,
    /// A degenerate or ill-scoped `enforce` clause.
    EnforceMisuse,
    /// An `assume` or branch edge whose forced predicate literals are
    /// numerically unsatisfiable (advisory; see
    /// [`lint_infeasible_edges`]).
    InfeasibleEdge,
}

impl fmt::Display for LintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LintKind::UndefinedLabel => "undefined-label",
            LintKind::DuplicateLabel => "duplicate-label",
            LintKind::UnreachableStmt => "unreachable-stmt",
            LintKind::DeadVar => "dead-var",
            LintKind::DuplicateTarget => "duplicate-target",
            LintKind::ArityMismatch => "arity-mismatch",
            LintKind::UndeclaredVar => "undeclared-var",
            LintKind::UndefinedCallee => "undefined-callee",
            LintKind::CallArity => "call-arity",
            LintKind::EnforceMisuse => "enforce-misuse",
            LintKind::InfeasibleEdge => "infeasible-edge",
        };
        write!(f, "{s}")
    }
}

/// One finding, with enough location detail to act on: the procedure,
/// the originating C statement id when the boolean statement carries
/// one, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lint {
    /// Lint category.
    pub kind: LintKind,
    /// Enclosing procedure (`None` for program-level findings).
    pub proc: Option<String>,
    /// Originating C statement, when the statement carries a span.
    pub stmt: Option<StmtId>,
    /// Description of the finding.
    pub message: String,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.kind)?;
        if let Some(p) = &self.proc {
            write!(f, " in `{p}`")?;
        }
        if let Some(id) = self.stmt {
            write!(f, " at C stmt {id}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Runs every check over a boolean program; an empty result means the
/// program is well-formed.
pub fn lint_program(program: &BProgram) -> Vec<Lint> {
    let mut lints = Vec::new();
    let mut referenced_globals: BTreeSet<String> = BTreeSet::new();
    for proc in &program.procs {
        lint_proc(program, proc, &mut lints, &mut referenced_globals);
    }
    // Program-level: globals no procedure ever references. `enforce`
    // clauses count as references (checked inside lint_proc).
    for g in &program.globals {
        if !referenced_globals.contains(g) {
            lints.push(Lint {
                kind: LintKind::DeadVar,
                proc: None,
                stmt: None,
                message: format!("global {} is never referenced", var_to_string(g)),
            });
        }
    }
    lints.sort_by(|a, b| (&a.proc, a.kind, &a.message).cmp(&(&b.proc, b.kind, &b.message)));
    lints
}

fn lint_proc(
    program: &BProgram,
    proc: &BProc,
    lints: &mut Vec<Lint>,
    referenced_globals: &mut BTreeSet<String>,
) {
    let pname = Some(proc.name.clone());
    let scope: BTreeSet<&str> = program
        .globals
        .iter()
        .chain(proc.formals.iter())
        .chain(proc.locals.iter())
        .map(String::as_str)
        .collect();
    let globals: BTreeSet<&str> = program.globals.iter().map(String::as_str).collect();

    // -- labels ----------------------------------------------------------
    let mut defined_labels: BTreeMap<&str, usize> = BTreeMap::new();
    let mut gotos: Vec<&str> = Vec::new();
    proc.body.walk(&mut |s| match s {
        BStmt::Label(l) => *defined_labels.entry(l.as_str()).or_insert(0) += 1,
        BStmt::Goto(l) => gotos.push(l.as_str()),
        _ => {}
    });
    for (label, count) in &defined_labels {
        if *count > 1 {
            lints.push(Lint {
                kind: LintKind::DuplicateLabel,
                proc: pname.clone(),
                stmt: None,
                message: format!("label `{label}` defined {count} times"),
            });
        }
    }
    for label in &gotos {
        if !defined_labels.contains_key(label) {
            lints.push(Lint {
                kind: LintKind::UndefinedLabel,
                proc: pname.clone(),
                stmt: None,
                message: format!("goto targets undefined label `{label}`"),
            });
        }
    }

    // -- per-statement checks -------------------------------------------
    let mut referenced: BTreeSet<String> = BTreeSet::new();
    let reference = |referenced: &mut BTreeSet<String>, e: &BExpr| {
        for v in e.vars() {
            referenced.insert(v);
        }
    };
    proc.body.walk(&mut |s| match s {
        BStmt::Assign {
            id,
            targets,
            values,
        } => {
            if targets.len() != values.len() {
                lints.push(Lint {
                    kind: LintKind::ArityMismatch,
                    proc: pname.clone(),
                    stmt: *id,
                    message: format!(
                        "parallel assignment has {} targets but {} values",
                        targets.len(),
                        values.len()
                    ),
                });
            }
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            for t in targets {
                if !seen.insert(t.as_str()) {
                    lints.push(Lint {
                        kind: LintKind::DuplicateTarget,
                        proc: pname.clone(),
                        stmt: *id,
                        message: format!(
                            "target {} assigned twice in one parallel assignment",
                            var_to_string(t)
                        ),
                    });
                }
                referenced.insert(t.clone());
            }
            for v in values {
                reference(&mut referenced, v);
            }
        }
        BStmt::Assume { cond, .. } | BStmt::Assert { cond, .. } => {
            reference(&mut referenced, cond);
        }
        BStmt::If { cond, .. } | BStmt::While { cond, .. } => {
            reference(&mut referenced, cond);
        }
        BStmt::Call {
            id,
            dsts,
            proc: callee,
            args,
        } => {
            for d in dsts {
                referenced.insert(d.clone());
            }
            for a in args {
                reference(&mut referenced, a);
            }
            match program.proc(callee) {
                None => lints.push(Lint {
                    kind: LintKind::UndefinedCallee,
                    proc: pname.clone(),
                    stmt: *id,
                    message: format!("call to undefined procedure `{callee}`"),
                }),
                Some(c) => {
                    if args.len() != c.formals.len() {
                        lints.push(Lint {
                            kind: LintKind::CallArity,
                            proc: pname.clone(),
                            stmt: *id,
                            message: format!(
                                "`{callee}` takes {} arguments, call passes {}",
                                c.formals.len(),
                                args.len()
                            ),
                        });
                    }
                    if !dsts.is_empty() && dsts.len() != c.n_returns {
                        lints.push(Lint {
                            kind: LintKind::CallArity,
                            proc: pname.clone(),
                            stmt: *id,
                            message: format!(
                                "`{callee}` returns {} values, call binds {}",
                                c.n_returns,
                                dsts.len()
                            ),
                        });
                    }
                }
            }
        }
        BStmt::Return { values, .. } => {
            for v in values {
                reference(&mut referenced, v);
            }
        }
        _ => {}
    });
    if let Some(e) = &proc.enforce {
        reference(&mut referenced, e);
    }

    // -- scoping ---------------------------------------------------------
    for v in &referenced {
        if !scope.contains(v.as_str()) {
            lints.push(Lint {
                kind: LintKind::UndeclaredVar,
                proc: pname.clone(),
                stmt: None,
                message: format!("{} is referenced but not declared", var_to_string(v)),
            });
        }
        if globals.contains(v.as_str()) {
            referenced_globals.insert(v.clone());
        }
    }
    for l in &proc.locals {
        if !referenced.contains(l) {
            lints.push(Lint {
                kind: LintKind::DeadVar,
                proc: pname.clone(),
                stmt: None,
                message: format!("local {} is never referenced", var_to_string(l)),
            });
        }
    }

    // -- enforce ---------------------------------------------------------
    if let Some(e) = &proc.enforce {
        if !e.is_deterministic() {
            lints.push(Lint {
                kind: LintKind::EnforceMisuse,
                proc: pname.clone(),
                stmt: None,
                message: format!(
                    "enforce clause `{}` is nondeterministic",
                    bexpr_to_string(e)
                ),
            });
        }
        if *e == BExpr::Const(false) {
            lints.push(Lint {
                kind: LintKind::EnforceMisuse,
                proc: pname.clone(),
                stmt: None,
                message: "enforce clause is `false`: every execution is discarded".into(),
            });
        }
    }

    // -- unreachable code (on the flat form) -----------------------------
    // Undefined labels make flattening fail; those were reported above.
    if let Ok(flat) = flatten_proc(proc) {
        let cfg = flat_cfg(&flat);
        let live = reachable(&cfg);
        for (i, ok) in live.iter().enumerate() {
            if *ok {
                continue;
            }
            // The flattener appends a synthetic fall-off return; it is
            // legitimately unreachable when the body always returns.
            if i == flat.instrs.len() - 1
                && matches!(&flat.instrs[i], BInstr::Return { id: None, .. })
            {
                continue;
            }
            lints.push(Lint {
                kind: LintKind::UnreachableStmt,
                proc: pname.clone(),
                stmt: flat.instrs[i].id(),
                message: format!(
                    "instruction {i} ({}) is unreachable",
                    instr_mnemonic(&flat.instrs[i])
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Interval-informed feasibility advisory
// ---------------------------------------------------------------------------

/// Collects the predicate literals an edge *forces*: conjuncts of the
/// condition (negated for the else/exit edge) that are plain variables
/// or their negations. Extraction is partial — disjunctive,
/// nondeterministic, and `choose` parts contribute nothing, which only
/// weakens the constraint set and so can never invent a spurious
/// infeasibility.
fn forced_literals<'a>(e: &'a BExpr, neg: bool, out: &mut Vec<(&'a str, bool)>) {
    match e {
        BExpr::Var(v) => out.push((v.as_str(), !neg)),
        BExpr::Not(inner) => forced_literals(inner, !neg, out),
        BExpr::And(cs) if !neg => {
            for c in cs {
                forced_literals(c, neg, out);
            }
        }
        BExpr::Or(cs) if neg => {
            for c in cs {
                forced_literals(c, neg, out);
            }
        }
        _ => {}
    }
}

/// True when the literal set is numerically unsatisfiable: every
/// variable name that parses as a C expression becomes an interval
/// constraint, and the resulting box is empty. Unparseable names are
/// skipped (weakening the set), so `true` is definite.
fn literals_are_unsat(lits: &[(&str, bool)]) -> bool {
    let parsed: Vec<(cparse::ast::Expr, bool)> = lits
        .iter()
        .filter_map(|(name, sign)| Some((cparse::parse_expr(name).ok()?, *sign)))
        .collect();
    if parsed.is_empty() {
        return false;
    }
    let hyps: Vec<(&cparse::ast::Expr, bool)> = parsed.iter().map(|(e, s)| (e, *s)).collect();
    // goal `0` is identically false: the implication holds exactly when
    // the hypothesis box is empty
    let goal = cparse::ast::Expr::IntLit(0);
    crate::intervals::decide_implication(&hyps, &goal, &|_| true)
        == Some(crate::intervals::NumericAnswer::Proved)
}

/// Interval-informed feasibility advisory over a boolean program: flags
/// `assume` statements and `if`/`while` edges whose forced predicate
/// literals — interpreted through the variables' C predicate names,
/// together with the procedure's `enforce` clause — are numerically
/// unsatisfiable. Such an edge can never execute; a sufficiently
/// precise abstraction would have emitted `assume(false)` or dropped
/// the arm outright, so a hit usually means the cube bound truncated a
/// provable combination.
///
/// Deliberately not part of [`lint_program`]: infeasible edges are
/// sound (merely wasteful), so clients treat these findings as
/// advisory rather than fatal.
pub fn lint_infeasible_edges(program: &BProgram) -> Vec<Lint> {
    let mut lints = Vec::new();
    for proc in &program.procs {
        let mut ambient: Vec<(&str, bool)> = Vec::new();
        if let Some(e) = &proc.enforce {
            forced_literals(e, false, &mut ambient);
        }
        let pname = Some(proc.name.clone());
        proc.body.walk(&mut |s| {
            let mut check = |id: &Option<StmtId>, cond: &BExpr, neg: bool, what: &str| {
                let mut lits = ambient.clone();
                let before = lits.len();
                forced_literals(cond, neg, &mut lits);
                // the edge itself must force something, else the finding
                // would just restate an enforce contradiction
                if lits.len() == before {
                    return;
                }
                if literals_are_unsat(&lits) {
                    lints.push(Lint {
                        kind: LintKind::InfeasibleEdge,
                        proc: pname.clone(),
                        stmt: *id,
                        message: format!(
                            "{what} `{}` forces numerically unsatisfiable literals",
                            bexpr_to_string(cond)
                        ),
                    });
                }
            };
            match s {
                BStmt::Assume { id, cond, .. } => check(id, cond, false, "assume"),
                BStmt::If { id, cond, .. } => {
                    check(id, cond, false, "then edge of");
                    check(id, cond, true, "else edge of");
                }
                BStmt::While { id, cond, .. } => {
                    check(id, cond, false, "loop-entry edge of");
                    check(id, cond, true, "loop-exit edge of");
                }
                _ => {}
            }
        });
    }
    lints.sort_by(|a, b| (&a.proc, a.kind, &a.message).cmp(&(&b.proc, b.kind, &b.message)));
    lints
}

fn instr_mnemonic(i: &BInstr) -> &'static str {
    match i {
        BInstr::Assign { .. } => "assign",
        BInstr::Assume { .. } => "assume",
        BInstr::Assert { .. } => "assert",
        BInstr::Branch { .. } => "branch",
        BInstr::Jump(_) => "jump",
        BInstr::Call { .. } => "call",
        BInstr::Return { .. } => "return",
        BInstr::Nop => "nop",
    }
}

/// The CFG of a flat boolean procedure: straight-line fallthrough except
/// for branches, jumps, and returns.
pub fn flat_cfg(flat: &FlatProc) -> Cfg {
    let n = flat.instrs.len();
    let succs = flat
        .instrs
        .iter()
        .enumerate()
        .map(|(i, instr)| match instr {
            BInstr::Branch {
                target_true,
                target_false,
                ..
            } => {
                if target_true == target_false {
                    vec![*target_true]
                } else {
                    vec![*target_true, *target_false]
                }
            }
            BInstr::Jump(t) => vec![*t],
            BInstr::Return { .. } => vec![],
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        })
        .collect();
    Cfg::new(succs)
}

// ---------------------------------------------------------------------------
// Liveness-based normal form
// ---------------------------------------------------------------------------

/// Strong (faint-variable) liveness per instruction of a flat procedure:
/// `live_after[i]` holds the variables whose values can still influence
/// an assume, assert, branch, call, return, or the `enforce` clause.
///
/// An assignment target generates its source variables only when the
/// target itself is live after the instruction, so chains of assignments
/// that feed nothing — even mutually-recursive ones — stay dead.
fn strong_liveness(program: &BProgram, proc: &BProc, flat: &FlatProc) -> Vec<BitSet> {
    let scope = program.scope_of(proc);
    let index: BTreeMap<&str, usize> = scope
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let bits = scope.len();
    let mut always = BitSet::empty(bits);
    // The enforce clause is an implicit assume between every pair of
    // statements: its variables are live everywhere.
    if let Some(e) = &proc.enforce {
        for v in e.vars() {
            if let Some(&i) = index.get(v.as_str()) {
                always.insert(i);
            }
        }
    }
    // Globals survive the procedure and flow through calls.
    let mut global_bits = BitSet::empty(bits);
    for g in &program.globals {
        if let Some(&i) = index.get(g.as_str()) {
            global_bits.insert(i);
        }
    }
    let add_vars = |set: &mut BitSet, e: &BExpr| {
        for v in e.vars() {
            if let Some(&i) = index.get(v.as_str()) {
                set.insert(i);
            }
        }
    };
    let cfg = flat_cfg(flat);
    let mut transfer = |n: usize, live_after: &BitSet| -> BitSet {
        let mut out = live_after.clone();
        match &flat.instrs[n] {
            BInstr::Assign {
                targets, values, ..
            } => {
                // Parallel semantics: record which targets are live, kill
                // all targets, then gen sources of the live ones.
                let live_targets: Vec<bool> = targets
                    .iter()
                    .map(|t| {
                        index
                            .get(t.as_str())
                            .is_some_and(|&i| live_after.contains(i))
                    })
                    .collect();
                for t in targets {
                    if let Some(&i) = index.get(t.as_str()) {
                        out.remove(i);
                    }
                }
                for (j, v) in values.iter().enumerate() {
                    if live_targets.get(j).copied().unwrap_or(true) {
                        add_vars(&mut out, v);
                    }
                }
            }
            BInstr::Assume { cond, .. }
            | BInstr::Assert { cond, .. }
            | BInstr::Branch { cond, .. } => add_vars(&mut out, cond),
            BInstr::Call { dsts, args, .. } => {
                for d in dsts {
                    if let Some(&i) = index.get(d.as_str()) {
                        out.remove(i);
                    }
                }
                for a in args {
                    add_vars(&mut out, a);
                }
                // The callee may read or write any global.
                out.union_with(&global_bits);
            }
            BInstr::Return { values, .. } => {
                for v in values {
                    add_vars(&mut out, v);
                }
                out.union_with(&global_bits);
            }
            BInstr::Jump(_) | BInstr::Nop => {}
        }
        out.union_with(&always);
        out
    };
    let sol = solve(
        &cfg,
        Direction::Backward,
        &BitSet::empty(bits),
        &mut transfer,
    );
    sol.exit
}

/// A canonical, liveness-normalized rendering of a boolean program.
///
/// Two abstractions of the same C program — one built with predicate
/// pruning, one without — differ only in assignments to predicates whose
/// values nothing downstream observes. This normal form erases exactly
/// that difference: per procedure it flattens the body, drops
/// assignments to strongly-dead variables, removes unreachable
/// instructions, renumbers, and prints the result. Byte-equal normal
/// forms therefore witness semantically identical programs, which is the
/// contract `tests/prune_differential.rs` checks across the corpus.
pub fn normalized_text(program: &BProgram) -> String {
    let mut out = String::new();
    for g in &program.globals {
        out.push_str(&format!("decl {};\n", var_to_string(g)));
    }
    for proc in &program.procs {
        normalize_proc(program, proc, &mut out);
    }
    out
}

fn normalize_proc(program: &BProgram, proc: &BProc, out: &mut String) {
    out.push_str(&format!(
        "proc {}({}) returns {}\n",
        proc.name,
        proc.formals
            .iter()
            .map(|f| var_to_string(f))
            .collect::<Vec<_>>()
            .join(", "),
        proc.n_returns
    ));
    for l in &proc.locals {
        out.push_str(&format!("  decl {};\n", var_to_string(l)));
    }
    if let Some(e) = &proc.enforce {
        out.push_str(&format!("  enforce {};\n", bexpr_to_string(e)));
    }
    let Ok(flat) = flatten_proc(proc) else {
        // Malformed procedure (undefined label): fall back to the raw
        // body so the caller still gets a stable, comparable rendering.
        out.push_str(&bp::print::bstmt_to_string(&proc.body, 2));
        out.push('\n');
        return;
    };
    let scope = program.scope_of(proc);
    let live_after = strong_liveness(program, proc, &flat);
    let index: BTreeMap<&str, usize> = scope
        .iter()
        .enumerate()
        .map(|(i, v)| (v.as_str(), i))
        .collect();
    let reach = reachable(&flat_cfg(&flat));

    // Rebuild each instruction, dropping dead assignment targets, then
    // decide which instructions survive.
    let n = flat.instrs.len();
    let mut kept: Vec<Option<BInstr>> = Vec::with_capacity(n);
    for (i, instr) in flat.instrs.iter().enumerate() {
        if !reach[i] {
            kept.push(None);
            continue;
        }
        let slot = match instr {
            BInstr::Assign {
                id,
                targets,
                values,
            } => {
                let mut ts = Vec::new();
                let mut vs = Vec::new();
                for (t, v) in targets.iter().zip(values) {
                    let live = index
                        .get(t.as_str())
                        .is_some_and(|&b| live_after[i].contains(b));
                    if live {
                        ts.push(t.clone());
                        vs.push(v.clone());
                    }
                }
                if ts.is_empty() {
                    None
                } else {
                    Some(BInstr::Assign {
                        id: *id,
                        targets: ts,
                        values: vs,
                    })
                }
            }
            BInstr::Nop => None,
            other => Some(other.clone()),
        };
        kept.push(slot);
    }

    // Renumber: every old index maps to the next kept instruction at or
    // after it; jumping past the end means falling off (the synthetic
    // return is always kept, so this is only a safety net).
    let mut next_kept = vec![0usize; n + 1];
    let mut new_count = 0usize;
    for i in 0..n {
        next_kept[i] = new_count;
        if kept[i].is_some() {
            new_count += 1;
        }
    }
    next_kept[n] = new_count;

    for slot in kept.into_iter().flatten() {
        let line = match slot {
            BInstr::Assign {
                targets, values, ..
            } => format!(
                "{} := {}",
                targets
                    .iter()
                    .map(|t| var_to_string(t))
                    .collect::<Vec<_>>()
                    .join(", "),
                values
                    .iter()
                    .map(bexpr_to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            BInstr::Assume { branch, cond, .. } => match branch {
                Some(b) => format!("assume[{b}] {}", bexpr_to_string(&cond)),
                None => format!("assume {}", bexpr_to_string(&cond)),
            },
            BInstr::Assert { cond, .. } => format!("assert {}", bexpr_to_string(&cond)),
            BInstr::Branch {
                cond,
                target_true,
                target_false,
                ..
            } => format!(
                "br {} -> {}, {}",
                bexpr_to_string(&cond),
                next_kept[target_true],
                next_kept[target_false]
            ),
            BInstr::Jump(t) => format!("jmp {}", next_kept[t]),
            BInstr::Call {
                dsts, proc, args, ..
            } => format!(
                "{}call {}({})",
                if dsts.is_empty() {
                    String::new()
                } else {
                    format!(
                        "{} := ",
                        dsts.iter()
                            .map(|d| var_to_string(d))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                },
                proc,
                args.iter()
                    .map(bexpr_to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            BInstr::Return { values, .. } => format!(
                "ret {}",
                values
                    .iter()
                    .map(bexpr_to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            BInstr::Nop => unreachable!("nops were dropped"),
        };
        out.push_str("  ");
        out.push_str(&line);
        out.push('\n');
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp::parse_bp;

    fn kinds(program: &BProgram) -> Vec<LintKind> {
        let mut ks: Vec<LintKind> = lint_program(program).iter().map(|l| l.kind).collect();
        ks.dedup();
        ks
    }

    #[test]
    fn clean_program_has_no_findings() {
        let p = parse_bp(
            r#"
            decl g;
            void main() {
                bool a;
                a = g;
                if (a) { g = false; } else { g = true; }
                assert(!a || !g);
            }
        "#,
        )
        .unwrap();
        assert_eq!(lint_program(&p), Vec::new());
    }

    #[test]
    fn undefined_and_duplicate_labels() {
        let p = parse_bp("void main() { L: skip; L: skip; goto M; }").unwrap();
        let ks = kinds(&p);
        assert!(ks.contains(&LintKind::DuplicateLabel));
        assert!(ks.contains(&LintKind::UndefinedLabel));
    }

    #[test]
    fn unreachable_after_return() {
        let p = parse_bp("decl g; void main() { return; g = true; }").unwrap();
        assert!(kinds(&p).contains(&LintKind::UnreachableStmt));
    }

    #[test]
    fn dead_local_flagged_dead_global_flagged() {
        let p = parse_bp("decl g; void main() { bool a; skip; }").unwrap();
        let ls = lint_program(&p);
        let dead: Vec<&Lint> = ls.iter().filter(|l| l.kind == LintKind::DeadVar).collect();
        assert_eq!(dead.len(), 2, "{ls:?}");
    }

    #[test]
    fn duplicate_parallel_target() {
        let p = parse_bp("decl g; void main() { g, g = true, false; }").unwrap();
        assert!(kinds(&p).contains(&LintKind::DuplicateTarget));
    }

    #[test]
    fn undeclared_variable() {
        let p = parse_bp("void main() { phantom = true; }").unwrap();
        assert!(kinds(&p).contains(&LintKind::UndeclaredVar));
    }

    #[test]
    fn undefined_callee_and_arity() {
        let p = parse_bp(
            r#"
            void callee(x) { skip; }
            void main() {
                bool a;
                a = true;
                callee(a, a);
                missing();
            }
        "#,
        )
        .unwrap();
        let ks = kinds(&p);
        assert!(ks.contains(&LintKind::UndefinedCallee));
        assert!(ks.contains(&LintKind::CallArity));
    }

    #[test]
    fn enforce_false_flagged() {
        let mut p = parse_bp("decl g; void main() { g = true; }").unwrap();
        p.procs[0].enforce = Some(BExpr::Const(false));
        assert!(kinds(&p).contains(&LintKind::EnforceMisuse));
    }

    #[test]
    fn enforce_nondet_flagged() {
        let mut p = parse_bp("decl g; void main() { g = true; }").unwrap();
        p.procs[0].enforce = Some(BExpr::or([BExpr::var("g"), BExpr::Nondet]));
        assert!(kinds(&p).contains(&LintKind::EnforceMisuse));
    }

    #[test]
    fn infeasible_assume_is_flagged() {
        // seeded defect: no integer satisfies x > 0 ∧ x <= 0
        let p = parse_bp(
            r#"
            void main() {
                assume({x > 0} && {x <= 0});
            }
        "#,
        )
        .unwrap();
        let ls = lint_infeasible_edges(&p);
        assert_eq!(ls.len(), 1, "{ls:?}");
        assert_eq!(ls[0].kind, LintKind::InfeasibleEdge);
        assert_eq!(ls[0].proc.as_deref(), Some("main"));
    }

    #[test]
    fn feasible_assume_is_not_flagged() {
        // distinct variables: the box {x > 0, y <= 0} is nonempty
        let p = parse_bp(
            r#"
            void main() {
                assume({x > 0} && {y <= 0});
                assume(!{x > 0});
            }
        "#,
        )
        .unwrap();
        assert_eq!(lint_infeasible_edges(&p), Vec::new());
    }

    #[test]
    fn else_edge_infeasibility_is_flagged() {
        // ¬(x > 0 ∨ x + 1 <= 1) forces x <= 0 ∧ x + 1 > 1, i.e. x > 0
        let p = parse_bp(
            r#"
            void main() {
                if ({x > 0} || {x + 1 <= 1}) { skip; } else { skip; }
            }
        "#,
        )
        .unwrap();
        let ls = lint_infeasible_edges(&p);
        assert_eq!(ls.len(), 1, "{ls:?}");
        assert!(ls[0].message.contains("else edge"), "{}", ls[0].message);
    }

    #[test]
    fn enforce_clause_joins_the_constraint_set() {
        let mut p = parse_bp(
            r#"
            void main() {
                assume({x <= 4});
            }
        "#,
        )
        .unwrap();
        // alone, x <= 4 is satisfiable; under enforce x > 4 it is not
        assert_eq!(lint_infeasible_edges(&p), Vec::new());
        p.procs[0].enforce = Some(BExpr::var("x > 4"));
        let ls = lint_infeasible_edges(&p);
        assert_eq!(ls.len(), 1, "{ls:?}");
    }

    #[test]
    fn nondeterministic_and_disjunctive_conditions_are_skipped() {
        // nothing here *forces* contradictory literals: `*` and the
        // non-negated disjunction contribute no constraints
        let p = parse_bp(
            r#"
            void main() {
                if (*) { skip; } else { skip; }
                assume({x > 0} || {x <= 0});
                while (*) { skip; }
            }
        "#,
        )
        .unwrap();
        assert_eq!(lint_infeasible_edges(&p), Vec::new());
    }

    #[test]
    fn normalization_drops_dead_assignment_chains() {
        // `a` feeds `b`, `b` feeds nothing: both assignments are faint
        // and must normalize away, leaving the two programs byte-equal.
        let with_chain = parse_bp(
            r#"
            decl g;
            void main() {
                bool a; bool b;
                a = g;
                b = a;
                g = !g;
            }
        "#,
        )
        .unwrap();
        let without = parse_bp(
            r#"
            decl g;
            void main() {
                bool a; bool b;
                g = !g;
            }
        "#,
        )
        .unwrap();
        assert_eq!(normalized_text(&with_chain), normalized_text(&without));
    }

    #[test]
    fn normalization_keeps_observable_assignments() {
        let p = parse_bp(
            r#"
            decl g;
            void main() {
                bool a;
                a = g;
                assert(a);
            }
        "#,
        )
        .unwrap();
        let text = normalized_text(&p);
        assert!(text.contains(":= g"), "{text}");
        assert!(text.contains("assert"), "{text}");
    }

    #[test]
    fn normalization_redirects_jumps_over_dropped_instrs() {
        // The dead store sits inside a loop body; dropping it must not
        // break the loop's branch targets.
        let p = parse_bp(
            r#"
            decl g;
            void main() {
                bool dead;
                while (*) {
                    dead = g;
                    g = !g;
                }
            }
        "#,
        )
        .unwrap();
        let q = parse_bp(
            r#"
            decl g;
            void main() {
                bool dead;
                while (*) {
                    g = !g;
                }
            }
        "#,
        )
        .unwrap();
        assert_eq!(normalized_text(&p), normalized_text(&q));
    }

    #[test]
    fn enforce_keeps_its_variables_live() {
        let mut p = parse_bp(
            r#"
            decl g;
            void main() {
                bool a;
                a = g;
                g = !g;
            }
        "#,
        )
        .unwrap();
        p.procs[0].enforce = Some(BExpr::or([BExpr::var("a"), BExpr::var("g")]));
        let text = normalized_text(&p);
        assert!(
            text.contains("a := g") || text.contains("{a} := g"),
            "{text}"
        );
    }
}
