//! Call graph over a [`cparse::ast::Program`]: direct-call edges,
//! Tarjan strongly-connected components, and a bottom-up ordering for
//! interprocedural summary propagation.

use cparse::ast::{Expr, Program, Stmt};
use std::collections::BTreeMap;

/// The call graph of a program, with nodes in program function order.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// Function names, in program declaration order.
    pub names: Vec<String>,
    /// `callees[i]` lists indices of functions that `names[i]` calls
    /// directly (deduplicated, sorted; unknown callees are dropped).
    pub callees: Vec<Vec<usize>>,
    /// Strongly-connected components in reverse topological order:
    /// callees appear before callers, so iterating `sccs` in order is a
    /// bottom-up traversal. Each component lists node indices.
    pub sccs: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the call graph and its SCC decomposition.
    pub fn build(program: &Program) -> CallGraph {
        let names: Vec<String> = program.functions.iter().map(|f| f.name.clone()).collect();
        let index: BTreeMap<&str, usize> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), i))
            .collect();
        let mut callees: Vec<Vec<usize>> = vec![Vec::new(); names.len()];
        for (i, f) in program.functions.iter().enumerate() {
            f.body.walk(&mut |stmt| {
                if let Stmt::Call { func, .. } = stmt {
                    if let Some(&j) = index.get(func.as_str()) {
                        callees[i].push(j);
                    }
                }
            });
            callees[i].sort_unstable();
            callees[i].dedup();
        }
        let sccs = tarjan(&callees);
        CallGraph {
            names,
            callees,
            sccs,
        }
    }

    /// Index of a function by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// True if `node` sits on a call cycle (including self-recursion).
    pub fn is_recursive(&self, node: usize) -> bool {
        self.sccs
            .iter()
            .find(|scc| scc.contains(&node))
            .map(|scc| scc.len() > 1 || self.callees[node].contains(&node))
            .unwrap_or(false)
    }
}

/// Iterative Tarjan SCC; components come out in reverse topological
/// order (callees before callers), which is exactly the bottom-up
/// summary-propagation order.
fn tarjan(succs: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = succs.len();
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    // explicit DFS frames: (node, next-child position)
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            if *child < succs[v].len() {
                let w = succs[v][*child];
                *child += 1;
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    sccs
}

/// Visits every expression appearing in a statement tree (conditions,
/// assignment sides, call arguments and destinations, returned values).
pub fn walk_exprs(body: &Stmt, f: &mut dyn FnMut(&Expr)) {
    body.walk(&mut |stmt| match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        Stmt::Call { dst, args, .. } => {
            if let Some(d) = dst {
                f(d);
            }
            for a in args {
                f(a);
            }
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => f(cond),
        Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => f(cond),
        Stmt::Return { value: Some(e), .. } => f(e),
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_sccs(succs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        tarjan(&succs)
    }

    #[test]
    fn sccs_come_out_bottom_up() {
        // 0 -> 1 -> 2, 2 -> 1 (cycle {1,2}), 0 -> 3
        let sccs = graph_sccs(vec![vec![1, 3], vec![2], vec![1], vec![]]);
        // Components in reverse topological order: leaves first.
        let pos = |node: usize| {
            sccs.iter()
                .position(|c| c.contains(&node))
                .expect("node in some scc")
        };
        assert!(pos(1) < pos(0), "callee cycle before caller");
        assert!(pos(3) < pos(0));
        assert_eq!(sccs[pos(1)], vec![1, 2]);
    }

    #[test]
    fn self_loop_is_its_own_component() {
        let sccs = graph_sccs(vec![vec![0]]);
        assert_eq!(sccs, vec![vec![0]]);
    }

    #[test]
    fn callgraph_from_source() {
        let program = cparse::parse_and_simplify(
            "int g;\n\
             void leaf() { g = 1; }\n\
             void mid() { leaf(); }\n\
             void main() { mid(); leaf(); }\n",
        )
        .expect("parse");
        let cg = CallGraph::build(&program);
        let leaf = cg.index_of("leaf").unwrap();
        let mid = cg.index_of("mid").unwrap();
        let main = cg.index_of("main").unwrap();
        assert_eq!(cg.callees[main], {
            let mut v = vec![mid, leaf];
            v.sort_unstable();
            v
        });
        assert!(!cg.is_recursive(main));
        let pos = |node: usize| cg.sccs.iter().position(|c| c.contains(&node)).unwrap();
        assert!(pos(leaf) < pos(mid) && pos(mid) < pos(main));
    }

    #[test]
    fn recursion_detected() {
        let program = cparse::parse_and_simplify(
            "int g;\n\
             void even() { if (g) { odd(); } }\n\
             void odd() { if (g) { even(); } }\n\
             void main() { even(); }\n",
        )
        .expect("parse");
        let cg = CallGraph::build(&program);
        assert!(cg.is_recursive(cg.index_of("even").unwrap()));
        assert!(cg.is_recursive(cg.index_of("odd").unwrap()));
        assert!(!cg.is_recursive(cg.index_of("main").unwrap()));
    }
}
