//! A generic monotone dataflow framework: bit-vector facts, a CFG
//! abstraction, and a forward/backward worklist solver.
//!
//! The solver is deliberately small: facts are [`BitSet`]s over a
//! caller-chosen universe (predicates, boolean variables, reachability
//! bits), transfer functions are arbitrary monotone closures, and the
//! fixpoint is the classic Kildall worklist. Callers instantiate it for
//! MOD/REF-style summaries, predicate liveness, boolean-variable strong
//! liveness, and plain reachability; a brute-force round-robin fixpoint
//! in the test suite pins down the solver contract.

use std::collections::VecDeque;
use std::fmt;

/// A fixed-width bit set; the dataflow fact lattice (`⊥` = empty,
/// join = union).
#[derive(Clone, PartialEq, Eq)]
pub struct BitSet {
    bits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over a universe of `bits` elements.
    pub fn empty(bits: usize) -> BitSet {
        BitSet {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The full set over a universe of `bits` elements.
    pub fn full(bits: usize) -> BitSet {
        let mut s = BitSet::empty(bits);
        for i in 0..bits {
            s.insert(i);
        }
        s
    }

    /// Universe size.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Sets bit `i`; returns true if it was newly set.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Clears bit `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self ∖= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.bits, other.bits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.bits).filter(|&i| self.contains(i))
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A control-flow graph given purely by successor lists; node 0 is the
/// entry.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[n]` lists the successors of node `n`.
    pub succs: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds a CFG from successor lists.
    pub fn new(succs: Vec<Vec<usize>>) -> Cfg {
        Cfg { succs }
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Predecessor lists derived from `succs`.
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.succs.len()];
        for (n, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(n);
            }
        }
        preds
    }
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along edges (entry fact at node 0).
    Forward,
    /// Facts flow against edges (boundary fact at exit nodes).
    Backward,
}

/// The fixpoint: one fact pair per node, in execution order.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Fact at the *entry* of each node (before the node executes).
    pub entry: Vec<BitSet>,
    /// Fact at the *exit* of each node (after the node executes).
    pub exit: Vec<BitSet>,
}

/// Runs the worklist solver to fixpoint.
///
/// * `boundary` seeds the entry of node 0 (forward) or the exit of every
///   node without successors (backward).
/// * `transfer(n, input) -> output` maps the node's input-side fact to
///   its output side (entry→exit when forward, exit→entry when
///   backward). It must be monotone in `input` for termination.
///
/// The worklist is seeded in a fixed order and deduplicated, so the
/// result — a unique least fixpoint for monotone transfers — is also
/// reached deterministically.
pub fn solve(
    cfg: &Cfg,
    direction: Direction,
    boundary: &BitSet,
    transfer: &mut dyn FnMut(usize, &BitSet) -> BitSet,
) -> Solution {
    let n = cfg.len();
    let bits = boundary.len();
    let mut entry = vec![BitSet::empty(bits); n];
    let mut exit = vec![BitSet::empty(bits); n];
    if n == 0 {
        return Solution { entry, exit };
    }
    let preds = cfg.preds();
    // the edge relation the facts flow along
    let (flow_in, flow_out): (&Vec<Vec<usize>>, &Vec<Vec<usize>>) = match direction {
        Forward => (&preds, &cfg.succs),
        Backward => (&cfg.succs, &preds),
    };
    use Direction::*;
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    // seed the boundary
    match direction {
        Forward => {
            entry[0] = boundary.clone();
        }
        Backward => {
            for (i, ss) in cfg.succs.iter().enumerate() {
                if ss.is_empty() {
                    exit[i] = boundary.clone();
                }
            }
        }
    }
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        // join the incoming facts
        let (input, output) = match direction {
            Forward => (&mut entry, &mut exit),
            Backward => (&mut exit, &mut entry),
        };
        for &p in &flow_in[node] {
            let incoming = output[p].clone();
            input[node].union_with(&incoming);
        }
        let next = transfer(node, &input[node]);
        if next != output[node] {
            output[node] = next;
            for &s in &flow_out[node] {
                if !queued[s] {
                    queued[s] = true;
                    queue.push_back(s);
                }
            }
        }
    }
    Solution { entry, exit }
}

/// Convenience: gen/kill instantiation of [`solve`]
/// (`out = gen ∪ (in ∖ kill)`).
pub fn solve_gen_kill(
    cfg: &Cfg,
    direction: Direction,
    boundary: &BitSet,
    gen: &[BitSet],
    kill: &[BitSet],
) -> Solution {
    solve(cfg, direction, boundary, &mut |n, input| {
        let mut out = input.clone();
        out.subtract(&kill[n]);
        out.union_with(&gen[n]);
        out
    })
}

/// A generic forward, *edge-sensitive* worklist solver over an
/// arbitrary join semilattice, with widening.
///
/// Unlike [`solve`], facts are an opaque type `T` (an interval
/// environment, a constant map, …) and the transfer function is applied
/// per out-edge: `transfer(n, fact, slot)` produces the fact flowing
/// along the edge to `cfg.succs[n][slot]`, which is how a branch node
/// refines its condition differently on its true and false edges.
///
/// * `boundary` seeds the entry of node 0.
/// * `join(cur, incoming) -> changed` merges an edge fact into a node's
///   accumulated entry fact.
/// * `widen(cur, incoming) -> changed` is used instead of `join` at
///   nodes where `widen_at` is true; it must be a widening operator
///   (every infinite ascending chain stabilizes). Passing back-edge
///   targets guarantees termination on lattices of infinite height,
///   because every CFG cycle then contains a widening point.
///
/// Returns the entry fact of every node; `None` marks nodes no fact
/// ever reached (unreachable from the entry). The worklist is FIFO and
/// deduplicated, so for monotone transfers the result is deterministic.
pub fn solve_forward_lattice<T: Clone>(
    cfg: &Cfg,
    boundary: T,
    widen_at: &[bool],
    transfer: &mut dyn FnMut(usize, &T, usize) -> T,
    join: &mut dyn FnMut(&mut T, &T) -> bool,
    widen: &mut dyn FnMut(&mut T, &T) -> bool,
) -> Vec<Option<T>> {
    let n = cfg.len();
    let mut entry: Vec<Option<T>> = vec![None; n];
    if n == 0 {
        return entry;
    }
    entry[0] = Some(boundary);
    let mut queue: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![false; n];
    queued[0] = true;
    while let Some(node) = queue.pop_front() {
        queued[node] = false;
        let Some(fact) = entry[node].clone() else {
            continue;
        };
        for slot in 0..cfg.succs[node].len() {
            let succ = cfg.succs[node][slot];
            let incoming = transfer(node, &fact, slot);
            let changed = match &mut entry[succ] {
                Some(cur) => {
                    if widen_at.get(succ).copied().unwrap_or(false) {
                        widen(cur, &incoming)
                    } else {
                        join(cur, &incoming)
                    }
                }
                slot @ None => {
                    *slot = Some(incoming);
                    true
                }
            };
            if changed && !queued[succ] {
                queued[succ] = true;
                queue.push_back(succ);
            }
        }
    }
    entry
}

/// Forward reachability from the entry node: the set of nodes a path
/// from node 0 can visit.
pub fn reachable(cfg: &Cfg) -> Vec<bool> {
    let n = cfg.len();
    let mut seen = vec![false; n];
    if n == 0 {
        return seen;
    }
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(node) = stack.pop() {
        for &s in &cfg.succs[node] {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(bits: usize, elems: &[usize]) -> BitSet {
        let mut s = BitSet::empty(bits);
        for &e in elems {
            s.insert(e);
        }
        s
    }

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        assert_eq!(s.count(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 129]);
        s.remove(0);
        assert!(!s.contains(0));
        let full = BitSet::full(130);
        assert_eq!(full.count(), 130);
    }

    #[test]
    fn forward_gen_kill_on_a_diamond() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3: reaching "definitions" {0..3}, each
        // node generates its own bit
        let cfg = Cfg::new(vec![vec![1, 2], vec![3], vec![3], vec![]]);
        let bits = 4;
        let gen: Vec<BitSet> = (0..4).map(|i| set(bits, &[i])).collect();
        let kill = vec![BitSet::empty(bits); 4];
        let sol = solve_gen_kill(&cfg, Direction::Forward, &BitSet::empty(bits), &gen, &kill);
        assert_eq!(sol.entry[3], set(bits, &[0, 1, 2]));
        assert_eq!(sol.exit[3], set(bits, &[0, 1, 2, 3]));
    }

    #[test]
    fn backward_liveness_through_a_loop() {
        // 0: x=.. ; 1: loop head (uses x); 2: body (kills x, re-gens x);
        // 3: exit (no successors)
        let cfg = Cfg::new(vec![vec![1], vec![2, 3], vec![1], vec![]]);
        let bits = 1;
        let gen = vec![
            BitSet::empty(bits),
            set(bits, &[0]),
            set(bits, &[0]),
            BitSet::empty(bits),
        ];
        let kill = vec![
            BitSet::empty(bits),
            BitSet::empty(bits),
            set(bits, &[0]),
            BitSet::empty(bits),
        ];
        let sol = solve_gen_kill(&cfg, Direction::Backward, &BitSet::empty(bits), &gen, &kill);
        // x is live into the loop head and into node 0
        assert!(sol.entry[1].contains(0));
        assert!(sol.entry[0].contains(0));
        // nothing is live out of the exit
        assert!(sol.exit[3].is_empty());
    }

    #[test]
    fn conditional_transfer_models_strong_liveness() {
        // strong liveness: node 1 assigns t := f(u) — u becomes live only
        // if t is live after. Node 2 uses t; node 3 uses nothing.
        // CFG A: 0 -> 1 -> 2(end).  CFG B: 0 -> 1 -> 3(end).
        let bits = 2; // bit 0 = t, bit 1 = u
        let run = |last_gen: BitSet| {
            let cfg = Cfg::new(vec![vec![1], vec![2], vec![]]);
            let mut transfer = |n: usize, input: &BitSet| -> BitSet {
                let mut out = input.clone();
                if n == 1 {
                    let t_live = out.contains(0);
                    out.remove(0);
                    if t_live {
                        out.insert(1);
                    }
                }
                if n == 2 {
                    out.union_with(&last_gen);
                }
                out
            };
            solve(
                &cfg,
                Direction::Backward,
                &BitSet::empty(bits),
                &mut transfer,
            )
        };
        let uses_t = run(set(bits, &[0]));
        assert!(uses_t.entry[1].contains(1), "u live when t is used");
        let uses_nothing = run(BitSet::empty(bits));
        assert!(
            !uses_nothing.entry[1].contains(1),
            "u faint when t is faint"
        );
    }

    #[test]
    fn reachability_skips_disconnected_nodes() {
        let cfg = Cfg::new(vec![vec![1], vec![], vec![1]]);
        assert_eq!(reachable(&cfg), vec![true, true, false]);
    }

    #[test]
    fn empty_cfg_is_fine() {
        let cfg = Cfg::new(Vec::new());
        let sol = solve_gen_kill(&cfg, Direction::Forward, &BitSet::empty(0), &[], &[]);
        assert!(sol.entry.is_empty() && sol.exit.is_empty());
        assert!(reachable(&cfg).is_empty());
        let lattice = solve_forward_lattice(
            &cfg,
            0u32,
            &[],
            &mut |_, f, _| *f,
            &mut |_, _| false,
            &mut |_, _| false,
        );
        assert!(lattice.is_empty());
    }

    #[test]
    fn single_node_self_loop_converges() {
        // one node whose only successor is itself: the gen/kill solver
        // and the lattice solver must both reach a fixpoint, not spin
        let cfg = Cfg::new(vec![vec![0]]);
        let sol = solve_gen_kill(
            &cfg,
            Direction::Forward,
            &BitSet::empty(2),
            &[set(2, &[1])],
            &[BitSet::empty(2)],
        );
        assert_eq!(sol.exit[0], set(2, &[1]));
        // saturating transfer: fact only grows to a cap, so plain join
        // (max) stabilizes without widening
        let entry = solve_forward_lattice(
            &cfg,
            0u32,
            &[false],
            &mut |_, f, _| (*f + 1).min(7),
            &mut |cur, inc| {
                let next = (*cur).max(*inc);
                let changed = next != *cur;
                *cur = next;
                changed
            },
            &mut |_, _| unreachable!("no widening point"),
        );
        assert_eq!(entry[0], Some(7));
    }

    #[test]
    fn unreachable_blocks_get_no_lattice_fact() {
        // 0 -> 1; node 2 is disconnected (and points at 1, like dead
        // code falling back into live code)
        let cfg = Cfg::new(vec![vec![1], vec![], vec![1]]);
        let entry = solve_forward_lattice(
            &cfg,
            10u32,
            &[false; 3],
            &mut |_, f, _| *f,
            &mut |cur, inc| {
                let next = (*cur).max(*inc);
                let changed = next != *cur;
                *cur = next;
                changed
            },
            &mut |_, _| false,
        );
        assert_eq!(entry[0], Some(10));
        assert_eq!(entry[1], Some(10));
        assert_eq!(entry[2], None, "unreachable node must stay bottom");
    }

    #[test]
    fn widening_terminates_an_oscillating_transfer() {
        // 0 -> 1 -> 1 (self loop). The transfer on the back edge
        // oscillates between 0 and 1 forever; plain replacement-join
        // would never stabilize, so the solver must terminate only
        // because node 1 is a widening point that jumps to top (= 2),
        // where the transfer is finally stable.
        let cfg = Cfg::new(vec![vec![1], vec![1]]);
        let entry = solve_forward_lattice(
            &cfg,
            0u8,
            &[false, true],
            &mut |_, f, _| if *f >= 2 { 2 } else { 1 - *f },
            &mut |cur, inc| {
                let changed = *cur != *inc;
                *cur = *inc;
                changed
            },
            &mut |cur, inc| {
                if *cur == *inc {
                    false
                } else {
                    let changed = *cur != 2;
                    *cur = 2; // top
                    changed
                }
            },
        );
        assert_eq!(entry[1], Some(2), "widening must have jumped to top");
    }

    #[test]
    fn lattice_branch_edges_see_different_facts() {
        // 0 is a two-way branch: slot 0 (true edge, to node 1) adds 100,
        // slot 1 (false edge, to node 2) adds 200 — per-edge transfer is
        // what lets interval analysis refine branch conditions.
        let cfg = Cfg::new(vec![vec![1, 2], vec![], vec![]]);
        let entry = solve_forward_lattice(
            &cfg,
            1u32,
            &[false; 3],
            &mut |_, f, slot| f + if slot == 0 { 100 } else { 200 },
            &mut |cur, inc| {
                let next = (*cur).max(*inc);
                let changed = next != *cur;
                *cur = next;
                changed
            },
            &mut |_, _| false,
        );
        assert_eq!(entry[1], Some(101));
        assert_eq!(entry[2], Some(201));
    }
}
