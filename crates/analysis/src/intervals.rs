//! Interval + constant-propagation abstract interpretation, and the
//! numeric implication decider it backs.
//!
//! Two consumers share the machinery in this module:
//!
//! * [`IntervalFacts::analyze`] runs a forward, per-function abstract
//!   interpretation over the flat CFG ([`cparse::flow`]) on the interval
//!   lattice (constants are width-zero intervals), with widening at
//!   back-edge targets followed by two narrowing sweeps, yielding
//!   per-statement variable bounds. The same [`Env`] constraint
//!   machinery backs the boolean-program lint's infeasible-edge
//!   advisory ([`crate::bplint`]).
//! * [`decide_implication`] is the *NumericOracle* consulted by the cube
//!   search before every theorem-prover query: given the cube's literals
//!   and the goal, it attempts to settle `cube ⇒ goal` by pure interval
//!   reasoning over integer-typed scalars. [`NumericAnswer::Proved`] and
//!   [`NumericAnswer::Disproved`] are only returned when the answer is
//!   guaranteed to coincide with the prover's (the caller cross-checks
//!   this in debug builds), so the oracle can replace prover calls but
//!   never change a cube result.
//!
//! The decider is deliberately *not* seeded with the per-program-point
//! facts: the cube search asks context-free validity questions
//! (`cube ⇒ goal` must hold in every state, not just states reaching a
//! particular statement), so strengthening the hypothesis with point
//! invariants would change answers relative to the prover. Constant
//! facts still reach the queries, through the weakest-precondition
//! substitutions that inline assigned constants into the goal text; see
//! DESIGN.md for the decision table.

use crate::dataflow::{solve_forward_lattice, Cfg};
use crate::modref::ModRef;
use cparse::ast::{BinOp, Expr, Program, StmtId, Type, UnOp};
use cparse::flow::{flatten_function, Instr};
use pointsto::{analyze_shared, AliasMode, AliasOracle};
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The interval domain
// ---------------------------------------------------------------------------

/// An integer interval `[lo, hi]`; `None` bounds are ±∞. `lo > hi`
/// encodes the empty interval (an unsatisfiable constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The unconstrained interval (−∞, +∞).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The single-point interval `[v, v]`.
    pub fn point(v: i64) -> Interval {
        Interval {
            lo: Some(v),
            hi: Some(v),
        }
    }

    /// True when no integer lies in the interval.
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// The constant value, when the interval is a single point.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &Interval) -> Interval {
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Standard interval widening: any bound that moved is dropped to ∞.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.is_empty() {
            return *next;
        }
        if next.is_empty() {
            return *self;
        }
        Interval {
            lo: match (self.lo, next.lo) {
                (Some(a), Some(b)) if b >= a => Some(a),
                _ => None,
            },
            hi: match (self.hi, next.hi) {
                (Some(a), Some(b)) if b <= a => Some(a),
                _ => None,
            },
        }
    }

    fn add(&self, other: &Interval) -> Interval {
        let add = |a: Option<i64>, b: Option<i64>| match (a, b) {
            (Some(x), Some(y)) => x.checked_add(y),
            _ => None,
        };
        Interval {
            lo: add(self.lo, other.lo),
            hi: add(self.hi, other.hi),
        }
    }

    fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    fn neg(&self) -> Interval {
        let neg = |b: Option<i64>| b.and_then(i64::checked_neg);
        Interval {
            lo: neg(self.hi),
            hi: neg(self.lo),
        }
    }

    fn mul(&self, other: &Interval) -> Interval {
        // exact only for bounded operands; any overflow widens to ∞
        let (Some(al), Some(ah), Some(bl), Some(bh)) = (self.lo, self.hi, other.lo, other.hi)
        else {
            // one precise special case: multiplication by the constant 0
            if self.as_const() == Some(0) || other.as_const() == Some(0) {
                return Interval::point(0);
            }
            return Interval::TOP;
        };
        let mut lo: Option<i64> = None;
        let mut hi: Option<i64> = None;
        for a in [al, ah] {
            for b in [bl, bh] {
                match a.checked_mul(b) {
                    Some(p) => {
                        lo = Some(lo.map_or(p, |c: i64| c.min(p)));
                        hi = Some(hi.map_or(p, |c: i64| c.max(p)));
                    }
                    None => return Interval::TOP,
                }
            }
        }
        Interval { lo, hi }
    }
}

/// A three-valued truth value for abstract condition evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// Definitely true for every concrete value in the abstract state.
    True,
    /// Definitely false for every concrete value in the abstract state.
    False,
    /// Cannot be decided from the intervals.
    Unknown,
}

impl Tri {
    fn negate(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::False => Tri::True,
            Tri::Unknown => Tri::Unknown,
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract environments
// ---------------------------------------------------------------------------

/// Variable → interval at one program point. Absent variables are
/// unconstrained; the whole environment is only recorded for reachable
/// points. [`Env::unsat`] marks a point whose accumulated constraints
/// are contradictory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Env {
    vars: BTreeMap<String, Interval>,
}

impl Env {
    /// The unconstrained environment.
    pub fn top() -> Env {
        Env::default()
    }

    /// The interval of `var` (TOP when untracked).
    pub fn get(&self, var: &str) -> Interval {
        self.vars.get(var).copied().unwrap_or(Interval::TOP)
    }

    fn set(&mut self, var: &str, iv: Interval) {
        if iv == Interval::TOP {
            self.vars.remove(var);
        } else {
            self.vars.insert(var.to_string(), iv);
        }
    }

    fn havoc(&mut self, var: &str) {
        self.vars.remove(var);
    }

    /// Drops every binding whose variable `keep` rejects (the `"0"`
    /// contradiction marker survives). Used by the forward pass so
    /// branch refinement never pins a fact on an untracked variable a
    /// pointer store could silently invalidate.
    fn retain_vars(&mut self, keep: &dyn Fn(&str) -> bool) {
        self.vars.retain(|k, _| k == "0" || keep(k));
    }

    /// True when some variable's constraints are contradictory — no
    /// concrete state satisfies this environment.
    pub fn unsat(&self) -> bool {
        self.vars.values().any(Interval::is_empty)
    }

    /// Number of variables with a nontrivial bound.
    pub fn bounded_vars(&self) -> usize {
        self.vars.len()
    }

    fn join_with(&mut self, other: &Env) -> bool {
        self.merge_with(other, Interval::join)
    }

    fn widen_with(&mut self, other: &Env) -> bool {
        self.merge_with(other, Interval::widen)
    }

    fn merge_with(&mut self, other: &Env, op: fn(&Interval, &Interval) -> Interval) -> bool {
        // an unsat side contributes nothing (it is the bottom state)
        if other.unsat() {
            return false;
        }
        if self.unsat() {
            *self = other.clone();
            return true;
        }
        let mut changed = false;
        let keys: Vec<String> = self.vars.keys().cloned().collect();
        for k in keys {
            let merged = op(&self.get(&k), &other.get(&k));
            if merged != self.get(&k) {
                changed = true;
            }
            self.set(&k, merged);
        }
        changed
    }

    /// Abstract evaluation of a pure expression. Over-approximates: the
    /// result interval contains every value the expression can take in
    /// any state described by `self`.
    pub fn eval(&self, e: &Expr) -> Interval {
        match e {
            Expr::IntLit(v) => Interval::point(*v),
            Expr::Null => Interval::point(0),
            Expr::Var(v) => self.get(v),
            Expr::Unary(UnOp::Neg, inner) => self.eval(inner).neg(),
            Expr::Unary(UnOp::Not, inner) => match self.eval_bool(inner) {
                Tri::True => Interval::point(0),
                Tri::False => Interval::point(1),
                Tri::Unknown => Interval {
                    lo: Some(0),
                    hi: Some(1),
                },
            },
            Expr::Binary(op, l, r) => {
                let (a, b) = (self.eval(l), self.eval(r));
                match op {
                    BinOp::Add => a.add(&b),
                    BinOp::Sub => a.sub(&b),
                    BinOp::Mul => a.mul(&b),
                    op if op.is_comparison() => match self.compare(*op, &a, &b) {
                        Tri::True => Interval::point(1),
                        Tri::False => Interval::point(0),
                        Tri::Unknown => Interval {
                            lo: Some(0),
                            hi: Some(1),
                        },
                    },
                    BinOp::And | BinOp::Or => match self.eval_bool(e) {
                        Tri::True => Interval::point(1),
                        Tri::False => Interval::point(0),
                        Tri::Unknown => Interval {
                            lo: Some(0),
                            hi: Some(1),
                        },
                    },
                    // integer division/remainder semantics are left to
                    // the prover; stay sound with TOP
                    _ => Interval::TOP,
                }
            }
            _ => Interval::TOP,
        }
    }

    fn compare(&self, op: BinOp, a: &Interval, b: &Interval) -> Tri {
        if a.is_empty() || b.is_empty() {
            // vacuous: no concrete state reaches this comparison
            return Tri::Unknown;
        }
        let lt = |x: &Interval, y: &Interval| match (x.hi, y.lo) {
            (Some(xh), Some(yl)) if xh < yl => Tri::True,
            _ => match (x.lo, y.hi) {
                (Some(xl), Some(yh)) if xl >= yh => Tri::False,
                _ => Tri::Unknown,
            },
        };
        let le = |x: &Interval, y: &Interval| match (x.hi, y.lo) {
            (Some(xh), Some(yl)) if xh <= yl => Tri::True,
            _ => match (x.lo, y.hi) {
                (Some(xl), Some(yh)) if xl > yh => Tri::False,
                _ => Tri::Unknown,
            },
        };
        match op {
            BinOp::Lt => lt(a, b),
            BinOp::Le => le(a, b),
            BinOp::Gt => lt(b, a),
            BinOp::Ge => le(b, a),
            BinOp::Eq => match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) if x == y => Tri::True,
                _ => {
                    // disjoint intervals are definitely unequal
                    if le(a, b) == Tri::False || le(b, a) == Tri::False {
                        Tri::False
                    } else {
                        Tri::Unknown
                    }
                }
            },
            BinOp::Ne => self.compare(BinOp::Eq, a, b).negate(),
            _ => Tri::Unknown,
        }
    }

    /// Three-valued truth of a condition in this environment.
    pub fn eval_bool(&self, e: &Expr) -> Tri {
        match e {
            Expr::IntLit(v) => {
                if *v != 0 {
                    Tri::True
                } else {
                    Tri::False
                }
            }
            Expr::Unary(UnOp::Not, inner) => self.eval_bool(inner).negate(),
            Expr::Binary(BinOp::And, l, r) => match (self.eval_bool(l), self.eval_bool(r)) {
                (Tri::False, _) | (_, Tri::False) => Tri::False,
                (Tri::True, Tri::True) => Tri::True,
                _ => Tri::Unknown,
            },
            Expr::Binary(BinOp::Or, l, r) => match (self.eval_bool(l), self.eval_bool(r)) {
                (Tri::True, _) | (_, Tri::True) => Tri::True,
                (Tri::False, Tri::False) => Tri::False,
                _ => Tri::Unknown,
            },
            Expr::Binary(op, l, r) if op.is_comparison() => {
                self.compare(*op, &self.eval(l), &self.eval(r))
            }
            other => {
                let iv = self.eval(other);
                match iv.as_const() {
                    Some(0) => Tri::False,
                    Some(_) => Tri::True,
                    None => {
                        // an interval excluding 0 is definitely truthy
                        if matches!(iv.lo, Some(l) if l > 0) || matches!(iv.hi, Some(h) if h < 0) {
                            Tri::True
                        } else {
                            Tri::Unknown
                        }
                    }
                }
            }
        }
    }

    /// Marks the environment contradictory. `"0"` is not a legal C
    /// identifier, so the marker can never collide with a real variable.
    fn mark_unsat(&mut self) {
        self.vars.insert(
            "0".to_string(),
            Interval {
                lo: Some(1),
                hi: Some(0),
            },
        );
    }

    /// Refines the environment by assuming `cond` evaluates to `sense`.
    /// `exact` is cleared when some conjunct could not be captured as an
    /// interval constraint (the refined box then over-approximates the
    /// constrained states — still sound for `Proved`, not for
    /// `Disproved`).
    fn assume(&mut self, cond: &Expr, sense: bool, exact: &mut bool) {
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.assume(inner, !sense, exact),
            Expr::Binary(BinOp::And, l, r) if sense => {
                self.assume(l, true, exact);
                self.assume(r, true, exact);
            }
            // ¬(l ∨ r) ≡ ¬l ∧ ¬r
            Expr::Binary(BinOp::Or, l, r) if !sense => {
                self.assume(l, false, exact);
                self.assume(r, false, exact);
            }
            Expr::IntLit(v) => {
                if (*v != 0) != sense {
                    self.mark_unsat();
                }
            }
            Expr::Binary(op, l, r) if op.is_comparison() => {
                let op = if sense {
                    *op
                } else {
                    op.negate().expect("comparisons always negate")
                };
                self.assume_cmp(op, l, r, exact);
            }
            Expr::Var(v) if !sense => {
                // `!v`, i.e. v == 0
                self.set(v, self.get(v).meet(&Interval::point(0)));
            }
            other => {
                // disjunctions, truthy variables, and anything else the
                // box can't capture: still catch a definite conflict
                match (self.eval_bool(other), sense) {
                    (Tri::True, false) | (Tri::False, true) => self.mark_unsat(),
                    // already entailed by the box: nothing to add
                    (Tri::True, true) | (Tri::False, false) => {}
                    (Tri::Unknown, _) => *exact = false,
                }
            }
        }
    }

    fn assume_cmp(&mut self, op: BinOp, l: &Expr, r: &Expr, exact: &mut bool) {
        // normalize to `var ⋈ interval-of-other-side`
        let (var, bound, op) = match (l, r) {
            (Expr::Var(v), other) => (v, self.eval(other), op),
            (other, Expr::Var(v)) => {
                let Some(flipped) = op.flip() else {
                    *exact = false;
                    return;
                };
                (v, self.eval(other), flipped)
            }
            _ => {
                // constant-vs-constant still decides satisfiability
                match self.compare(op, &self.eval(l), &self.eval(r)) {
                    Tri::False => self.mark_unsat(),
                    Tri::Unknown => *exact = false,
                    Tri::True => {}
                }
                return;
            }
        };
        // the bound side must be a known constant for an exact box edge
        let Some(c) = bound.as_const() else {
            *exact = false;
            return;
        };
        let cur = self.get(var);
        let refined = match op {
            BinOp::Eq => cur.meet(&Interval::point(c)),
            BinOp::Lt => cur.meet(&Interval {
                lo: None,
                hi: c.checked_sub(1),
            }),
            BinOp::Le => cur.meet(&Interval {
                lo: None,
                hi: Some(c),
            }),
            BinOp::Gt => cur.meet(&Interval {
                lo: c.checked_add(1),
                hi: None,
            }),
            BinOp::Ge => cur.meet(&Interval {
                lo: Some(c),
                hi: None,
            }),
            BinOp::Ne => {
                // representable when it contradicts a point or trims an
                // interval endpoint; otherwise the box over-approximates
                if cur.as_const() == Some(c) {
                    Interval {
                        lo: Some(1),
                        hi: Some(0),
                    }
                } else if cur.lo == Some(c) {
                    Interval {
                        lo: c.checked_add(1),
                        hi: cur.hi,
                    }
                } else if cur.hi == Some(c) {
                    Interval {
                        lo: cur.lo,
                        hi: c.checked_sub(1),
                    }
                } else {
                    *exact = false;
                    cur
                }
            }
            _ => {
                *exact = false;
                cur
            }
        };
        self.set(var, refined);
    }
}

// ---------------------------------------------------------------------------
// The numeric implication oracle
// ---------------------------------------------------------------------------

/// A definite answer from the numeric oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NumericAnswer {
    /// The hypothesis implies the goal (the prover would answer Unsat
    /// for `hyp ∧ ¬goal`).
    Proved,
    /// The hypothesis does not imply the goal (the prover would find a
    /// model of `hyp ∧ ¬goal`).
    Disproved,
}

/// Is `e` a pure integer-scalar expression the interval semantics
/// models exactly: integer literals, integer-typed variables accepted by
/// `is_int_var`, and `+ − × ! && || comparisons` over them? Pointer
/// shapes, struct fields, division, and calls disqualify the query.
pub fn pure_int_expr(e: &Expr, is_int_var: &dyn Fn(&str) -> bool) -> bool {
    match e {
        Expr::IntLit(_) => true,
        Expr::Var(v) => is_int_var(v),
        Expr::Unary(UnOp::Neg | UnOp::Not, inner) => pure_int_expr(inner, is_int_var),
        Expr::Binary(op, l, r) => {
            !matches!(op, BinOp::Div | BinOp::Rem)
                && pure_int_expr(l, is_int_var)
                && pure_int_expr(r, is_int_var)
        }
        _ => false,
    }
}

/// The NumericOracle: attempts to settle `⋀ hyps ⇒ goal` by interval
/// reasoning alone. Each hypothesis is `(expr, polarity)` — a cube
/// literal. `is_int_var` must accept only integer-typed scalars whose
/// address is never taken (so the prover models them as free integers).
///
/// `Some(Proved)` is sound whenever the hypothesis box (an
/// over-approximation of the hypothesis's models) forces the goal true,
/// or the captured constraints are already contradictory.
/// `Some(Disproved)` additionally requires every hypothesis conjunct to
/// be captured *exactly* in the box (the box then equals the
/// hypothesis's model set, so any point of the nonempty box refutes the
/// implication when the goal is definitely false over it). Anything
/// else is `None` and falls through to the prover.
pub fn decide_implication(
    hyps: &[(&Expr, bool)],
    goal: &Expr,
    is_int_var: &dyn Fn(&str) -> bool,
) -> Option<NumericAnswer> {
    if !pure_int_expr(goal, is_int_var) {
        return None;
    }
    let mut env = Env::top();
    let mut exact = true;
    for (e, sign) in hyps {
        if pure_int_expr(e, is_int_var) {
            env.assume(e, *sign, &mut exact);
        } else {
            exact = false;
        }
    }
    if env.unsat() {
        // the captured constraints alone are contradictory, and they are
        // implied by the full hypothesis: the implication holds vacuously
        return Some(NumericAnswer::Proved);
    }
    match env.eval_bool(goal) {
        Tri::True => Some(NumericAnswer::Proved),
        Tri::False if exact => Some(NumericAnswer::Disproved),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// The forward per-function pass
// ---------------------------------------------------------------------------

/// Per-statement interval facts for a whole program.
///
/// Facts are recorded at the *entry* of each identified statement of
/// each function, for every integer-typed, address-free scalar. The
/// analysis is intraprocedural with conservative boundaries: parameters
/// and globals are unconstrained on entry, and calls havoc everything
/// the MOD/REF summary says the callee may modify.
pub struct IntervalFacts {
    per_func: BTreeMap<String, BTreeMap<StmtId, Env>>,
}

impl IntervalFacts {
    /// Runs the analysis over every function of a simplified program.
    pub fn analyze(program: &Program) -> IntervalFacts {
        let pts = analyze_shared(program, AliasMode::Inclusion);
        let modref = ModRef::analyze(program);
        let mut per_func = BTreeMap::new();
        for f in &program.functions {
            let Ok(flat) = flatten_function(f) else {
                continue;
            };
            let facts = analyze_flat(program, f, &flat.instrs, &pts, &modref);
            per_func.insert(f.name.clone(), facts);
        }
        IntervalFacts { per_func }
    }

    /// The environment at the entry of statement `id` in `func`, if the
    /// statement is reachable and was analyzed.
    pub fn at(&self, func: &str, id: StmtId) -> Option<&Env> {
        self.per_func.get(func)?.get(&id)
    }

    /// Three-valued truth of `cond` at the entry of statement `id`
    /// (`Unknown` when no facts were recorded there).
    pub fn cond_at(&self, func: &str, id: StmtId, cond: &Expr) -> Tri {
        match self.at(func, id) {
            Some(env) => env.eval_bool(cond),
            None => Tri::Unknown,
        }
    }

    /// Total nontrivially-bounded (statement, variable) facts — a cheap
    /// "did the analysis find anything" diagnostic.
    pub fn bounded_facts(&self) -> usize {
        self.per_func
            .values()
            .flat_map(|m| m.values())
            .map(Env::bounded_vars)
            .sum()
    }
}

fn analyze_flat(
    program: &Program,
    f: &cparse::ast::Function,
    instrs: &[Instr],
    pts: &Arc<dyn AliasOracle>,
    modref: &ModRef,
) -> BTreeMap<StmtId, Env> {
    let fname = f.name.clone();
    // track only integer scalars whose address is never taken: stores
    // through pointers can then never invalidate a tracked fact
    let tracked = |v: &str| -> bool {
        let ty = f.var_type(v).or_else(|| program.global_type(v));
        matches!(ty, Some(Type::Int)) && !pts.address_taken(&fname, v)
    };
    let n = instrs.len();
    let succs: Vec<Vec<usize>> = instrs
        .iter()
        .enumerate()
        .map(|(i, ins)| match ins {
            Instr::Branch {
                target_true,
                target_false,
                ..
            } => vec![*target_true, *target_false],
            Instr::Jump(t) => vec![*t],
            Instr::Return { .. } => vec![],
            _ => {
                if i + 1 < n {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
        })
        .collect();
    let cfg = Cfg::new(succs);
    // widen at back-edge targets: every loop the flattener emits jumps
    // backward in instruction order, so cycles always contain one
    let mut widen_at = vec![false; n];
    for (i, ss) in cfg.succs.iter().enumerate() {
        for &s in ss {
            if s <= i {
                widen_at[s] = true;
            }
        }
    }
    let mut transfer = |node: usize, env: &Env, slot: usize| -> Env {
        let mut out = env.clone();
        let mut _exact = true;
        match &instrs[node] {
            Instr::Assign { lhs, rhs, .. } => {
                if let Expr::Var(v) = lhs {
                    if tracked(v) {
                        out.set(v, env.eval(rhs));
                    }
                }
                // non-variable destinations can only name untracked
                // storage (tracked scalars are never address-taken)
            }
            Instr::Call { dst, func, .. } => {
                if let Some(Expr::Var(v)) = dst {
                    out.havoc(v);
                }
                let clobbered: Vec<String> = out
                    .vars
                    .keys()
                    .filter(|v| modref.may_modify(pts.as_ref(), func, &fname, v))
                    .cloned()
                    .collect();
                for v in clobbered {
                    out.havoc(&v);
                }
            }
            Instr::Branch { cond, .. } => {
                out.assume(cond, slot == 0, &mut _exact);
                out.retain_vars(&tracked);
            }
            Instr::Assert { cond, .. } | Instr::Assume { cond, .. } => {
                out.assume(cond, true, &mut _exact);
                out.retain_vars(&tracked);
            }
            Instr::Jump(_) | Instr::Return { .. } | Instr::Nop => {}
        }
        out
    };
    let mut entry = solve_forward_lattice(
        &cfg,
        Env::top(),
        &widen_at,
        &mut transfer,
        &mut |cur, inc| cur.join_with(inc),
        &mut |cur, inc| cur.widen_with(inc),
    );
    // two narrowing sweeps: re-applying the (monotone) equations from a
    // post-fixpoint stays above the least fixpoint, so each sweep can
    // only tighten the widened bounds, never break soundness
    let preds = cfg.preds();
    for _ in 0..2 {
        for node in 1..n {
            let mut acc: Option<Env> = None;
            for &p in &preds[node] {
                let Some(penv) = entry[p].clone() else {
                    continue;
                };
                // a branch can list the same successor on both slots;
                // every edge contributes its own refined fact
                for (slot, &s) in cfg.succs[p].iter().enumerate() {
                    if s != node {
                        continue;
                    }
                    let fact = transfer(p, &penv, slot);
                    match &mut acc {
                        Some(a) => {
                            a.join_with(&fact);
                        }
                        None => acc = Some(fact),
                    }
                }
            }
            if let (Some(new), Some(_)) = (acc, &entry[node]) {
                entry[node] = Some(new);
            }
        }
    }
    let mut facts = BTreeMap::new();
    for (i, ins) in instrs.iter().enumerate() {
        let (Some(id), Some(env)) = (ins.id(), &entry[i]) else {
            continue;
        };
        if id == StmtId::UNASSIGNED {
            continue;
        }
        facts
            .entry(id)
            .and_modify(|e: &mut Env| {
                e.join_with(env);
            })
            .or_insert_with(|| env.clone());
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use cparse::parser::{parse_expr, parse_program};
    use cparse::simplify::simplify_program;

    fn all_int(_: &str) -> bool {
        true
    }

    fn decide(hyps: &[(&str, bool)], goal: &str) -> Option<NumericAnswer> {
        let hyps: Vec<(Expr, bool)> = hyps
            .iter()
            .map(|(s, b)| (parse_expr(s).unwrap(), *b))
            .collect();
        let refs: Vec<(&Expr, bool)> = hyps.iter().map(|(e, b)| (e, *b)).collect();
        let goal = parse_expr(goal).unwrap();
        decide_implication(&refs, &goal, &all_int)
    }

    #[test]
    fn constants_prove_and_disprove() {
        assert_eq!(
            decide(&[("count == 0", true)], "count <= 0"),
            Some(NumericAnswer::Proved)
        );
        assert_eq!(
            decide(&[("count == 0", true)], "count > 0"),
            Some(NumericAnswer::Disproved)
        );
        assert_eq!(
            decide(&[("count == 0", true)], "count + 1 > 0"),
            Some(NumericAnswer::Proved)
        );
    }

    #[test]
    fn negated_literals_refine() {
        // ¬(count < 1) is count >= 1
        assert_eq!(
            decide(&[("count < 1", false)], "count > 0"),
            Some(NumericAnswer::Proved)
        );
    }

    #[test]
    fn contradictory_hypotheses_are_vacuously_proved() {
        assert_eq!(
            decide(&[("x > 5", true), ("x < 3", true)], "x == 100"),
            Some(NumericAnswer::Proved)
        );
    }

    #[test]
    fn two_variable_goals_stay_unknown() {
        assert_eq!(decide(&[("x > 0", true)], "x > y"), None);
    }

    #[test]
    fn inexact_hypotheses_never_disprove() {
        // the `x != 3` literal is not box-representable, so the oracle
        // must not claim a refutation even though the box says false
        assert_eq!(decide(&[("x != 3", true)], "x > 10"), None);
        // …but proving through an over-approximated box is still fine
        assert_eq!(
            decide(&[("x != 3", true), ("x > 4", true)], "x > 0"),
            Some(NumericAnswer::Proved)
        );
    }

    #[test]
    fn pointer_shapes_disqualify() {
        let is_int = |v: &str| v != "p";
        let goal = parse_expr("*p > 0").unwrap();
        assert_eq!(decide_implication(&[], &goal, &is_int), None);
        let hyp = parse_expr("p == 0").unwrap();
        let goal2 = parse_expr("x > 0").unwrap();
        // untyped hypothesis is dropped; goal alone is undecidable
        assert_eq!(decide_implication(&[(&hyp, true)], &goal2, &is_int), None);
    }

    #[test]
    fn division_is_left_to_the_prover() {
        assert_eq!(decide(&[("x == 4", true)], "x / 2 == 2"), None);
    }

    #[test]
    fn multiplication_overflow_widens() {
        let env = {
            let mut e = Env::top();
            e.set("x", Interval::point(i64::MAX));
            e
        };
        let expr = parse_expr("x * 2").unwrap();
        assert_eq!(env.eval(&expr), Interval::TOP);
    }

    fn facts_for(src: &str) -> (cparse::Program, IntervalFacts) {
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p).unwrap();
        let facts = IntervalFacts::analyze(&s);
        (s, facts)
    }

    fn branch_ids(program: &cparse::Program, func: &str) -> Vec<(StmtId, Expr)> {
        let mut out = Vec::new();
        program.function(func).unwrap().body.walk(&mut |s| {
            if let cparse::ast::Stmt::If { id, cond, .. }
            | cparse::ast::Stmt::While { id, cond, .. } = s
            {
                out.push((*id, cond.clone()));
            }
        });
        out
    }

    #[test]
    fn constant_propagation_reaches_a_branch() {
        let (p, facts) = facts_for(
            r#"
            void f(void) {
                int x;
                x = 0;
                if (x > 0) { x = 1; } else { x = 2; }
            }
        "#,
        );
        let (id, cond) = branch_ids(&p, "f").remove(0);
        assert_eq!(facts.cond_at("f", id, &cond), Tri::False);
        assert!(facts.bounded_facts() > 0);
    }

    #[test]
    fn loops_widen_but_keep_the_stable_bound() {
        let (p, facts) = facts_for(
            r#"
            void f(int n) {
                int i;
                i = 0;
                while (i < n) {
                    i = i + 1;
                }
            }
        "#,
        );
        // at the loop head, widening drops the upper bound but the
        // lower bound 0 is stable and must survive
        let (id, _) = branch_ids(&p, "f")[0].clone();
        let env = facts.at("f", id).expect("loop head reachable");
        assert_eq!(env.get("i").lo, Some(0));
    }

    #[test]
    fn calls_havoc_what_the_callee_may_modify() {
        let (p, facts) = facts_for(
            r#"
            int g;
            void bump(void) { g = g + 1; }
            void f(void) {
                int x; int y;
                g = 0;
                x = 0;
                bump();
                if (g > 0) { y = 1; } else { y = 2; }
                if (x > 0) { y = 3; } else { y = 4; }
            }
        "#,
        );
        let branches = branch_ids(&p, "f");
        // g was havocked by the call: its branch is undecided
        assert_eq!(
            facts.cond_at("f", branches[0].0, &branches[0].1),
            Tri::Unknown
        );
        // x was untouched by the call: still the constant 0
        assert_eq!(
            facts.cond_at("f", branches[1].0, &branches[1].1),
            Tri::False
        );
    }

    #[test]
    fn address_taken_variables_are_untracked() {
        let (p, facts) = facts_for(
            r#"
            void f(void) {
                int x; int* p;
                x = 0;
                p = &x;
                *p = 5;
                if (x > 0) { x = 1; } else { x = 2; }
            }
        "#,
        );
        let (id, cond) = branch_ids(&p, "f").remove(0);
        assert_eq!(facts.cond_at("f", id, &cond), Tri::Unknown);
    }
}
