//! Static analyses for the SLAM toolkit.
//!
//! This crate hosts the toolkit's dataflow layer, kept deliberately
//! independent of the abstraction engine so every client — signature
//! computation, predicate pruning, the boolean-program verifier —
//! consumes the same solver and the same summaries:
//!
//! * [`dataflow`] — a generic monotone framework: bit-vector facts, a
//!   successor-list CFG, and a forward/backward worklist solver whose
//!   contract is pinned by a brute-force fixpoint oracle in the tests.
//! * [`callgraph`] — direct-call graph with Tarjan SCCs in bottom-up
//!   (callee-first) order.
//! * [`modref`] — interprocedural MOD/REF summaries, resolved against
//!   the Steensgaard points-to graph at query time. Replaces the old
//!   syntactic "assigned or address-taken" mod-set walk in signature
//!   computation.
//! * [`bplint`] — a static well-formedness verifier for generated
//!   boolean programs, plus the liveness-based normal form used to
//!   compare pruned and unpruned abstractions byte-for-byte.
//! * [`intervals`] — forward interval + constant-propagation abstract
//!   interpretation, and the numeric implication oracle the cube
//!   search consults before paying for a prover query.
//! * [`slice`] — the property-directed interprocedural slicer: the
//!   backward relevant-statement closure seeded from spec observers
//!   and predicate cones, applied before abstraction.

#![warn(missing_docs)]

pub mod bplint;
pub mod callgraph;
pub mod dataflow;
pub mod intervals;
pub mod modref;
pub mod slice;

pub use bplint::{lint_infeasible_edges, lint_program, normalized_text, Lint, LintKind};
pub use callgraph::CallGraph;
pub use dataflow::{reachable, solve, solve_gen_kill, BitSet, Cfg, Direction, Solution};
pub use intervals::{decide_implication, IntervalFacts, NumericAnswer};
pub use modref::{FnEffects, ModRef, Place};
pub use slice::{slice_program, SliceStats};
