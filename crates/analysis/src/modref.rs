//! Interprocedural MOD/REF summaries.
//!
//! For every procedure we compute which *places* (globals and named
//! locals) it may write or read, directly or through pointers, including
//! the transitive effects of its callees. Summaries are propagated
//! bottom-up over the call graph's strongly-connected components, with a
//! fixpoint inside each component so recursion converges.
//!
//! Deref writes are kept symbolic — "writes through pointer `p` of
//! function `f`" — and resolved against a [`pointsto::AliasOracle`] at query
//! time, so the summary itself stays flow- and alias-insensitive while
//! queries get the full benefit of the points-to graph.

use crate::callgraph::CallGraph;
use cparse::ast::{Expr, Program, Stmt, Type};
use pointsto::AliasOracle;
use std::collections::{BTreeMap, BTreeSet};

/// A named storage location, resolved to its owning scope.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Place {
    /// A global variable.
    Global(String),
    /// A local or formal of a specific function.
    Local(String, String),
}

impl Place {
    fn resolve(program: &Program, func: &str, name: &str) -> Place {
        if let Some(f) = program.function(func) {
            if f.var_type(name).is_some() {
                return Place::Local(func.to_string(), name.to_string());
            }
        }
        // Unknown names resolve to globals: `may_point_to` applies the
        // same fallback, so queries stay consistent.
        Place::Global(name.to_string())
    }

    /// The variable name of this place.
    pub fn name(&self) -> &str {
        match self {
            Place::Global(n) | Place::Local(_, n) => n,
        }
    }
}

/// The transitive effect summary of one procedure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnEffects {
    /// Places written directly by name (`x = e`, `x.f = e`, `a[i] = e`
    /// for array-typed `a`).
    pub mod_direct: BTreeSet<Place>,
    /// Pointers written *through* (`*p = e`, `p->f = e`, `p[i] = e`),
    /// as (owning function, pointer variable) pairs. The places actually
    /// modified are whatever these pointers may point to.
    pub mod_deref: BTreeSet<(String, String)>,
    /// Places read by name.
    pub ref_direct: BTreeSet<Place>,
    /// Pointers read through, as (owning function, pointer variable).
    pub ref_deref: BTreeSet<(String, String)>,
    /// True if the procedure (transitively) calls a function with no
    /// definition in the program; every query then answers "maybe".
    pub clobbers_unknown: bool,
}

impl FnEffects {
    fn union_with(&mut self, other: &FnEffects) -> bool {
        let before = (
            self.mod_direct.len(),
            self.mod_deref.len(),
            self.ref_direct.len(),
            self.ref_deref.len(),
            self.clobbers_unknown,
        );
        self.mod_direct.extend(other.mod_direct.iter().cloned());
        self.mod_deref.extend(other.mod_deref.iter().cloned());
        self.ref_direct.extend(other.ref_direct.iter().cloned());
        self.ref_deref.extend(other.ref_deref.iter().cloned());
        self.clobbers_unknown |= other.clobbers_unknown;
        before
            != (
                self.mod_direct.len(),
                self.mod_deref.len(),
                self.ref_direct.len(),
                self.ref_deref.len(),
                self.clobbers_unknown,
            )
    }
}

/// Interprocedural MOD/REF results for a whole program.
#[derive(Debug, Clone)]
pub struct ModRef {
    effects: BTreeMap<String, FnEffects>,
}

impl ModRef {
    /// Computes transitive per-procedure effect summaries.
    pub fn analyze(program: &Program) -> ModRef {
        let cg = CallGraph::build(program);
        let mut effects: BTreeMap<String, FnEffects> = BTreeMap::new();
        // Local (intraprocedural) effects first.
        for f in &program.functions {
            effects.insert(f.name.clone(), local_effects(program, f));
        }
        // Bottom-up over SCCs; fixpoint within each component handles
        // recursion. Unknown callees were already flagged by
        // `local_effects`.
        for scc in &cg.sccs {
            loop {
                let mut changed = false;
                for &node in scc {
                    let name = &cg.names[node];
                    for &callee in &cg.callees[node] {
                        let callee_fx = effects[&cg.names[callee]].clone();
                        changed |= effects
                            .get_mut(name)
                            .expect("every function has effects")
                            .union_with(&callee_fx);
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        ModRef { effects }
    }

    /// The transitive effect summary of `func` (empty if unknown).
    pub fn effects(&self, func: &str) -> FnEffects {
        self.effects.get(func).cloned().unwrap_or(FnEffects {
            clobbers_unknown: true,
            ..FnEffects::default()
        })
    }

    /// May executing `func` modify the variable `var` visible in scope
    /// `var_func`? `false` is definitive; `true` means "maybe". Sound
    /// for globals and for `var_func`'s locals/formals whose address may
    /// escape into `func`.
    pub fn may_modify(&self, pts: &dyn AliasOracle, func: &str, var_func: &str, var: &str) -> bool {
        let Some(fx) = self.effects.get(func) else {
            return true;
        };
        if fx.clobbers_unknown {
            return true;
        }
        let queried_local = Place::Local(var_func.to_string(), var.to_string());
        let queried_global = Place::Global(var.to_string());
        if fx.mod_direct.contains(&queried_local) || fx.mod_direct.contains(&queried_global) {
            return true;
        }
        fx.mod_deref
            .iter()
            .any(|(pf, p)| pts.may_point_to(pf, p, var_func, var))
    }

    /// May executing `func` read the variable `var` visible in scope
    /// `var_func`? `false` is definitive.
    pub fn may_ref(&self, pts: &dyn AliasOracle, func: &str, var_func: &str, var: &str) -> bool {
        let Some(fx) = self.effects.get(func) else {
            return true;
        };
        if fx.clobbers_unknown {
            return true;
        }
        let queried_local = Place::Local(var_func.to_string(), var.to_string());
        let queried_global = Place::Global(var.to_string());
        if fx.ref_direct.contains(&queried_local) || fx.ref_direct.contains(&queried_global) {
            return true;
        }
        fx.ref_deref
            .iter()
            .any(|(pf, p)| pts.may_point_to(pf, p, var_func, var))
    }

    /// The formals of `func` that the procedure may modify — the MOD set
    /// restricted to parameters, which is what signature computation
    /// (footnote 4 of the paper) needs.
    pub fn modified_formals(
        &self,
        pts: &dyn AliasOracle,
        program: &Program,
        func: &str,
    ) -> Vec<String> {
        let Some(f) = program.function(func) else {
            return Vec::new();
        };
        f.params
            .iter()
            .filter(|p| self.may_modify(pts, func, func, &p.name))
            .map(|p| p.name.clone())
            .collect()
    }

    /// The globals that `func` may modify, in sorted order.
    pub fn modified_globals(
        &self,
        pts: &dyn AliasOracle,
        program: &Program,
        func: &str,
    ) -> Vec<String> {
        program
            .globals
            .iter()
            .filter(|(g, _)| self.may_modify(pts, func, func, g))
            .map(|(g, _)| g.clone())
            .collect()
    }
}

/// True if the root of this lvalue path is written *directly* (no
/// pointer hop): returns the root name, plus whether the path crossed an
/// `Index` (which is a direct write only for array-typed roots).
fn lvalue_root(e: &Expr) -> Option<(&str, bool)> {
    match e {
        Expr::Var(x) => Some((x, false)),
        Expr::Field(b, _) => lvalue_root(b),
        Expr::Index(b, _) => lvalue_root(b).map(|(x, _)| (x, true)),
        _ => None,
    }
}

fn is_array(program: &Program, func: &cparse::ast::Function, name: &str) -> bool {
    let ty = func.var_type(name).or_else(|| program.global_type(name));
    matches!(ty, Some(Type::Array(_, _)))
}

fn local_effects(program: &Program, f: &cparse::ast::Function) -> FnEffects {
    let mut fx = FnEffects::default();
    let fname = f.name.as_str();
    let record_write = |fx: &mut FnEffects, lhs: &Expr| {
        if let Some((root, crossed_index)) = lvalue_root(lhs) {
            if !crossed_index || is_array(program, f, root) {
                fx.mod_direct.insert(Place::resolve(program, fname, root));
            }
        }
        // Every dereferenced/indexed base is a write through a pointer;
        // array roots land here too, which only adds conservatism.
        for p in lhs.derefd_vars() {
            fx.mod_deref.insert((fname.to_string(), p));
        }
    };
    f.body.walk(&mut |stmt| match stmt {
        Stmt::Assign { lhs, rhs, .. } => {
            record_write(&mut fx, lhs);
            for v in rhs.vars() {
                fx.ref_direct.insert(Place::resolve(program, fname, &v));
            }
            for p in rhs.derefd_vars() {
                fx.ref_deref.insert((fname.to_string(), p));
            }
            // Reads feeding the lvalue itself (index exprs, pointer bases).
            for v in lhs.vars() {
                fx.ref_direct.insert(Place::resolve(program, fname, &v));
            }
        }
        Stmt::Call {
            dst, func, args, ..
        } => {
            if program.function(func).is_none() {
                fx.clobbers_unknown = true;
            }
            if let Some(d) = dst {
                record_write(&mut fx, d);
            }
            for a in args {
                for v in a.vars() {
                    fx.ref_direct.insert(Place::resolve(program, fname, &v));
                }
                for p in a.derefd_vars() {
                    fx.ref_deref.insert((fname.to_string(), p));
                }
                // `f(&x)` lets the callee write `x`; the callee's own
                // `*p = ..` shows up as a deref through its formal, which
                // points-to connects back to `x`. Nothing extra needed
                // here — points-to already models the binding.
            }
        }
        Stmt::If { cond, .. }
        | Stmt::While { cond, .. }
        | Stmt::Assert { cond, .. }
        | Stmt::Assume { cond, .. } => {
            for v in cond.vars() {
                fx.ref_direct.insert(Place::resolve(program, fname, &v));
            }
            for p in cond.derefd_vars() {
                fx.ref_deref.insert((fname.to_string(), p));
            }
        }
        Stmt::Return { value: Some(e), .. } => {
            for v in e.vars() {
                fx.ref_direct.insert(Place::resolve(program, fname, &v));
            }
            for p in e.derefd_vars() {
                fx.ref_deref.insert((fname.to_string(), p));
            }
        }
        _ => {}
    });
    fx
}

#[cfg(test)]
mod tests {
    use super::*;
    use pointsto::PointsTo;

    fn setup(src: &str) -> (Program, ModRef, PointsTo) {
        let program = cparse::parse_and_simplify(src).expect("parse");
        let mr = ModRef::analyze(&program);
        let pts = PointsTo::analyze(&program);
        (program, mr, pts)
    }

    #[test]
    fn direct_assignment_modifies_formal() {
        let (program, mr, pts) =
            setup("void f(int x, int y) { x = y + 1; } void main() { f(1, 2); }");
        assert_eq!(mr.modified_formals(&pts, &program, "f"), vec!["x"]);
    }

    #[test]
    fn write_through_pointer_modifies_pointed_to_formal() {
        let (program, mr, pts) = setup(
            "void set(int* p) { *p = 0; }\n\
             void f(int x, int y) { set(&x); }\n\
             void main() { f(1, 2); }",
        );
        // `f` modifies `x` only through `set`'s pointer write.
        assert!(mr.may_modify(&pts, "f", "f", "x"));
        assert_eq!(mr.modified_formals(&pts, &program, "f"), vec!["x"]);
        // `y`'s address never escapes: definitively unmodified.
        assert!(!mr.may_modify(&pts, "f", "f", "y"));
    }

    #[test]
    fn address_taken_but_never_written_is_not_modified() {
        let (program, mr, pts) = setup(
            "int g;\n\
             void observe(int* p) { g = *p; }\n\
             void f(int x) { observe(&x); }\n\
             void main() { f(1); }",
        );
        // The old syntactic walk treated `&x` as a modification; the
        // MOD/REF summary sees only a read through the pointer.
        assert!(mr.modified_formals(&pts, &program, "f").is_empty());
        assert!(mr.may_ref(&pts, "f", "f", "x"));
        assert!(mr.may_modify(&pts, "f", "f", "g"));
        let _ = program;
    }

    #[test]
    fn global_effects_propagate_bottom_up() {
        let (program, mr, pts) = setup(
            "int g; int h;\n\
             void leaf() { g = 1; }\n\
             void mid() { leaf(); }\n\
             void main() { mid(); }",
        );
        assert_eq!(mr.modified_globals(&pts, &program, "main"), vec!["g"]);
        assert!(!mr.may_modify(&pts, "main", "main", "h"));
    }

    #[test]
    fn recursion_reaches_fixpoint() {
        let (_, mr, pts) = setup(
            "int g; int h;\n\
             void even(int n) { if (n) { h = 1; odd(n - 1); } }\n\
             void odd(int n) { if (n) { g = 1; even(n - 1); } }\n\
             void main() { even(4); }",
        );
        assert!(mr.may_modify(&pts, "even", "even", "g"));
        assert!(mr.may_modify(&pts, "odd", "odd", "h"));
    }

    #[test]
    fn unknown_callee_clobbers_everything() {
        // The frontend rejects calls to undefined functions, so build the
        // situation by renaming a callee after parsing: this models
        // externally-linked code the analysis must stay sound for.
        let mut program = cparse::parse_and_simplify(
            "int g; void known() { g = g; } void f(int x) { known(); } void main() { f(0); }",
        )
        .expect("parse");
        fn rename_calls(s: &mut Stmt) {
            match s {
                Stmt::Call { func, .. } if func == "known" => *func = "mystery".to_string(),
                Stmt::Seq(ss) => ss.iter_mut().for_each(rename_calls),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    rename_calls(then_branch);
                    rename_calls(else_branch);
                }
                Stmt::While { body, .. } => rename_calls(body),
                _ => {}
            }
        }
        rename_calls(&mut program.function_mut("f").unwrap().body);
        let mr = ModRef::analyze(&program);
        let pts = PointsTo::analyze(&program);
        assert!(mr.effects("f").clobbers_unknown);
        assert!(mr.may_modify(&pts, "f", "f", "x"));
        assert!(mr.may_modify(&pts, "main", "main", "g"));
        // `main` transitively calls the unknown function too.
        assert!(mr.effects("main").clobbers_unknown);
        // A function that never touches the unknown callee keeps precise
        // answers.
        assert!(!mr.effects("known").clobbers_unknown);
    }

    #[test]
    fn ref_tracks_reads() {
        let (_, mr, pts) = setup(
            "int g;\n\
             void f(int x, int y) { x = g; }\n\
             void main() { f(1, 2); }",
        );
        assert!(mr.may_ref(&pts, "f", "f", "g"));
        assert!(!mr.may_ref(&pts, "f", "f", "y"));
    }
}
