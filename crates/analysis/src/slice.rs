//! Property-directed interprocedural program slicing.
//!
//! The slicer runs between spec instrumentation and predicate
//! abstraction: starting from the instrumented property's observation
//! points (`assert`/`assume` statements), every branch condition, and
//! the seed predicates' cone of influence, it computes the set of
//! *relevant places* — variables whose values can reach an observation
//! — and drops the assignments and calls that provably cannot touch
//! them, then drops whole functions no longer reachable from the entry
//! point through the kept calls.
//!
//! The design is deliberately verdict-preserving rather than maximally
//! aggressive:
//!
//! * **All control flow is kept.** `if`/`while`/`goto`/labels,
//!   `assert`, `assume`, and `return` statements always survive, and
//!   every branch condition's variables seed the relevant set. The
//!   sliced program therefore has the same path structure the
//!   counterexample-driven refinement loop will enumerate, so Newton
//!   sees identical path constraints and discovers identical
//!   predicates.
//! * **Pointers fall back to "keep".** Every address-taken variable is
//!   relevant up front, stores through pointers are never dropped, and
//!   calls are kept whenever the MOD/REF summary (resolved against the
//!   [`pointsto::AliasOracle`]) cannot bound their effects away from
//!   the relevant set. On pointer-heavy code the slice degenerates to
//!   the identity — documented honestly in EXPERIMENTS.md.
//! * **Observers pin calls.** A call is kept if its callee transitively
//!   contains an `assert` (a property observation that must stay
//!   reachable) or an `assume` (dropping one would *add* executions and
//!   could flip a verdict).
//!
//! Only `Assign` and `Call` statements are ever dropped (replaced by
//! `Skip` via [`cparse::slice::apply_slice`]), plus unreachable
//! functions in their entirety — the latter is where the prover-call
//! savings concentrate, since each dropped function saves its whole
//! per-statement abstraction and `enforce` cube searches.

use crate::callgraph::CallGraph;
use crate::modref::{ModRef, Place};
use cparse::ast::{Expr, Program, Stmt, StmtId};
use cparse::slice::apply_slice;
use pointsto::{analyze_shared, AliasMode};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing one slicing run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Identified statements in the instrumented program.
    pub stmts_total: usize,
    /// Assignments and calls dropped from kept functions.
    pub stmts_dropped: usize,
    /// Functions in the instrumented program.
    pub funcs_total: usize,
    /// Functions dropped as unreachable through kept calls.
    pub funcs_dropped: usize,
    /// Size of the relevant-place set at the fixpoint.
    pub relevant_places: usize,
}

/// The outcome of the relevant-statement computation, before it is
/// applied to the IR.
#[derive(Debug, Clone)]
pub struct ProgramSlice {
    /// Per-function statement ids to replace with `skip`.
    pub drop_stmts: BTreeMap<String, BTreeSet<StmtId>>,
    /// Functions to remove entirely.
    pub drop_funcs: BTreeSet<String>,
    /// Counters for `--slice-stats` and the A/B harness.
    pub stats: SliceStats,
}

/// A seed for the relevant set: an expression whose variables matter,
/// resolved in the scope of `func` (`None` = global scope only).
pub type SliceSeed<'a> = (Option<&'a str>, &'a Expr);

fn resolve(program: &Program, func: Option<&str>, name: &str) -> Place {
    if let Some(f) = func.and_then(|f| program.function(f)) {
        if f.var_type(name).is_some() {
            return Place::Local(f.name.clone(), name.to_string());
        }
    }
    Place::Global(name.to_string())
}

/// The root place written by an lvalue, when the write is direct (no
/// pointer hop anywhere on the path). `None` means the target is only
/// known through aliasing — the caller must keep the write.
fn direct_store_root(lhs: &Expr) -> Option<&str> {
    match lhs {
        Expr::Var(x) => Some(x),
        Expr::Field(b, _) | Expr::Index(b, _) => direct_store_root(b),
        _ => None,
    }
}

/// True when the statement tree contains a property observation.
fn has_direct_observer(body: &Stmt) -> bool {
    let mut found = false;
    body.walk(&mut |s| {
        if matches!(s, Stmt::Assert { .. } | Stmt::Assume { .. }) {
            found = true;
        }
    });
    found
}

/// Computes the relevant-statement slice of an instrumented, simplified
/// program, seeded from its own observers plus `seeds`.
pub fn compute_slice(program: &Program, entry: &str, seeds: &[SliceSeed<'_>]) -> ProgramSlice {
    let pts = analyze_shared(program, AliasMode::Inclusion);
    let modref = ModRef::analyze(program);
    let cg = CallGraph::build(program);

    // Which functions transitively contain an assert/assume?
    let mut observer: BTreeMap<&str, bool> = program
        .functions
        .iter()
        .map(|f| (f.name.as_str(), has_direct_observer(&f.body)))
        .collect();
    loop {
        let mut changed = false;
        for (i, f) in program.functions.iter().enumerate() {
            if observer[f.name.as_str()] {
                continue;
            }
            if cg.callees[i]
                .iter()
                .any(|&j| observer[cg.names[j].as_str()])
            {
                observer.insert(f.name.as_str(), true);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Seed the relevant set: every condition's variables (branch
    // structure is kept, so everything feeding it must be too), every
    // address-taken variable (the coarse pointer fallback), and the
    // caller's seed predicates.
    let mut relevant: BTreeSet<Place> = BTreeSet::new();
    for f in &program.functions {
        let fname = f.name.as_str();
        f.body.walk(&mut |s| {
            if let Stmt::If { cond, .. }
            | Stmt::While { cond, .. }
            | Stmt::Assert { cond, .. }
            | Stmt::Assume { cond, .. } = s
            {
                for v in cond.vars() {
                    relevant.insert(resolve(program, Some(fname), &v));
                }
            }
        });
        for (name, _) in f
            .params
            .iter()
            .map(|p| (p.name.clone(), ()))
            .chain(f.locals.iter().map(|(n, _)| (n.clone(), ())))
        {
            if pts.address_taken(fname, &name) {
                relevant.insert(Place::Local(fname.to_string(), name));
            }
        }
    }
    for (g, _) in &program.globals {
        // a global whose address is taken anywhere is pinned; the oracle
        // resolves unknown names to globals, so any scope works
        if program
            .functions
            .iter()
            .any(|f| f.var_type(g).is_none() && pts.address_taken(&f.name, g))
        {
            relevant.insert(Place::Global(g.clone()));
        }
    }
    for (func, expr) in seeds {
        for v in expr.vars() {
            relevant.insert(resolve(program, *func, &v));
        }
    }

    let may_modify_relevant = |relevant: &BTreeSet<Place>, callee: &str| -> bool {
        relevant.iter().any(|place| match place {
            Place::Global(g) => modref.may_modify(pts.as_ref(), callee, "", g),
            Place::Local(pf, v) => modref.may_modify(pts.as_ref(), callee, pf, v),
        })
    };

    // Fixpoint: grow the relevant set through kept assignments and
    // calls until nothing new becomes relevant.
    loop {
        let before = relevant.len();
        for f in &program.functions {
            let fname = f.name.as_str();
            f.body.walk(&mut |s| match s {
                Stmt::Assign { lhs, rhs, .. } => {
                    let kept = match direct_store_root(lhs) {
                        Some(root) => relevant.contains(&resolve(program, Some(fname), root)),
                        None => true, // store through a pointer: keep
                    };
                    if kept {
                        for v in rhs.vars().into_iter().chain(lhs.vars()) {
                            relevant.insert(resolve(program, Some(fname), &v));
                        }
                    }
                }
                Stmt::Call {
                    dst, func, args, ..
                } => {
                    let dst_relevant = dst.as_ref().is_some_and(|d| match direct_store_root(d) {
                        Some(root) => relevant.contains(&resolve(program, Some(fname), root)),
                        None => true,
                    });
                    let kept = program.function(func).is_none()
                        || observer.get(func.as_str()).copied().unwrap_or(true)
                        || dst_relevant
                        || may_modify_relevant(&relevant, func);
                    if kept {
                        for a in args {
                            for v in a.vars() {
                                relevant.insert(resolve(program, Some(fname), &v));
                            }
                        }
                        if let Some(callee) = program.function(func) {
                            for p in &callee.params {
                                relevant.insert(Place::Local(callee.name.clone(), p.name.clone()));
                            }
                            if dst.is_some() {
                                if let Some(d) = dst {
                                    for v in d.vars() {
                                        relevant.insert(resolve(program, Some(fname), &v));
                                    }
                                }
                                callee.body.walk(&mut |s| {
                                    if let Stmt::Return { value: Some(e), .. } = s {
                                        for v in e.vars() {
                                            relevant.insert(resolve(
                                                program,
                                                Some(callee.name.as_str()),
                                                &v,
                                            ));
                                        }
                                    }
                                });
                            }
                        }
                    }
                }
                _ => {}
            });
        }
        if relevant.len() == before {
            break;
        }
    }

    // Final pass: record the drops implied by the fixpoint.
    let mut drop_stmts: BTreeMap<String, BTreeSet<StmtId>> = BTreeMap::new();
    let mut kept_callees: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut stmts_total = 0usize;
    for f in &program.functions {
        let fname = f.name.as_str();
        let drops = drop_stmts.entry(f.name.clone()).or_default();
        let callees = kept_callees.entry(fname).or_default();
        f.body.walk(&mut |s| {
            if s.id().is_some() {
                stmts_total += 1;
            }
            match s {
                Stmt::Assign { id, lhs, .. } => {
                    let kept = match direct_store_root(lhs) {
                        Some(root) => relevant.contains(&resolve(program, Some(fname), root)),
                        None => true,
                    };
                    if !kept && *id != StmtId::UNASSIGNED {
                        drops.insert(*id);
                    }
                }
                Stmt::Call { id, dst, func, .. } => {
                    let dst_relevant = dst.as_ref().is_some_and(|d| match direct_store_root(d) {
                        Some(root) => relevant.contains(&resolve(program, Some(fname), root)),
                        None => true,
                    });
                    let kept = program.function(func).is_none()
                        || observer.get(func.as_str()).copied().unwrap_or(true)
                        || dst_relevant
                        || may_modify_relevant(&relevant, func);
                    if kept {
                        callees.insert(func.as_str());
                    } else if *id != StmtId::UNASSIGNED {
                        drops.insert(*id);
                    }
                }
                _ => {}
            }
        });
    }

    // Functions unreachable from the entry through kept calls are
    // dropped whole. An unknown entry keeps everything.
    let mut drop_funcs: BTreeSet<String> = BTreeSet::new();
    if program.function(entry).is_some() {
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        let mut work = vec![entry];
        while let Some(f) = work.pop() {
            if !visited.insert(f) {
                continue;
            }
            if let Some(callees) = kept_callees.get(f) {
                for &c in callees {
                    if program.function(c).is_some() && !visited.contains(c) {
                        work.push(c);
                    }
                }
            }
        }
        for f in &program.functions {
            if !visited.contains(f.name.as_str()) {
                drop_funcs.insert(f.name.clone());
            }
        }
    }
    drop_stmts.retain(|f, ids| !ids.is_empty() && !drop_funcs.contains(f));

    let stmts_dropped = drop_stmts.values().map(BTreeSet::len).sum();
    let stats = SliceStats {
        stmts_total,
        stmts_dropped,
        funcs_total: program.functions.len(),
        funcs_dropped: drop_funcs.len(),
        relevant_places: relevant.len(),
    };
    ProgramSlice {
        drop_stmts,
        drop_funcs,
        stats,
    }
}

/// Computes and applies the property-directed slice in one step,
/// returning the sliced program and the run's counters.
pub fn slice_program(
    program: &Program,
    entry: &str,
    seeds: &[SliceSeed<'_>],
) -> (Program, SliceStats) {
    let slice = compute_slice(program, entry, seeds);
    let sliced = apply_slice(program, &slice.drop_stmts, &slice.drop_funcs);
    (sliced, slice.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sliced(src: &str, entry: &str) -> (Program, SliceStats) {
        let program = cparse::parse_and_simplify(src).expect("parse");
        slice_program(&program, entry, &[])
    }

    fn assigns_to(program: &Program, func: &str, var: &str) -> usize {
        let mut n = 0;
        program.function(func).unwrap().body.walk(&mut |s| {
            if let Stmt::Assign {
                lhs: Expr::Var(v), ..
            } = s
            {
                if v == var {
                    n += 1;
                }
            }
        });
        n
    }

    #[test]
    fn padding_assignments_are_dropped() {
        let (p, stats) = sliced(
            r#"
            int state;
            int pad;
            void main(void) {
                state = 0;
                pad = 0;
                pad = pad + 1;
                if (state > 0) { state = 1; } else { state = 2; }
                assert(state > 0);
            }
        "#,
            "main",
        );
        assert_eq!(assigns_to(&p, "main", "pad"), 0, "padding var sliced away");
        assert!(assigns_to(&p, "main", "state") >= 3, "observed var kept");
        assert_eq!(stats.stmts_dropped, 2);
        assert_eq!(stats.funcs_dropped, 0);
    }

    #[test]
    fn observer_free_unreachable_functions_are_dropped() {
        let (p, stats) = sliced(
            r#"
            int g;
            int noise;
            void scratch(void) { noise = noise + 1; }
            void main(void) {
                g = 1;
                scratch();
                assert(g > 0);
            }
        "#,
            "main",
        );
        assert!(p.function("scratch").is_none(), "irrelevant callee dropped");
        assert_eq!(stats.funcs_dropped, 1);
    }

    #[test]
    fn observer_callees_are_pinned() {
        let (p, _) = sliced(
            r#"
            int g;
            void check(void) { assert(g > 0); }
            void main(void) {
                g = 1;
                check();
            }
        "#,
            "main",
        );
        assert!(p.function("check").is_some(), "assert keeps the callee");
    }

    #[test]
    fn callee_modifying_relevant_global_is_kept() {
        let (p, _) = sliced(
            r#"
            int g;
            void bump(void) { g = g + 1; }
            void main(void) {
                g = 0;
                bump();
                assert(g > 0);
            }
        "#,
            "main",
        );
        assert!(p.function("bump").is_some(), "writer of observed var kept");
        assert_eq!(assigns_to(&p, "bump", "g"), 1);
    }

    #[test]
    fn pointer_stores_fall_back_to_keep() {
        let (p, stats) = sliced(
            r#"
            void main(void) {
                int x; int* q;
                x = 0;
                q = &x;
                *q = 5;
                assert(x >= 0);
            }
        "#,
            "main",
        );
        assert_eq!(stats.stmts_dropped, 0, "address-taken var pins everything");
        let mut deref_stores = 0;
        p.function("main").unwrap().body.walk(&mut |s| {
            if let Stmt::Assign { lhs, .. } = s {
                if direct_store_root(lhs).is_none() {
                    deref_stores += 1;
                }
            }
        });
        assert_eq!(deref_stores, 1);
    }

    #[test]
    fn seed_predicates_pin_their_cone() {
        let program = cparse::parse_and_simplify(
            r#"
            int tracked;
            void main(void) {
                int dead;
                tracked = 1;
                dead = 2;
            }
        "#,
        )
        .expect("parse");
        let seed = cparse::parse_expr("tracked > 0").unwrap();
        let (p, _) = slice_program(&program, "main", &[(None, &seed)]);
        assert_eq!(assigns_to(&p, "main", "tracked"), 1, "seeded cone kept");
        assert_eq!(assigns_to(&p, "main", "dead"), 0, "unseeded assign dropped");
    }

    #[test]
    fn relevant_return_values_keep_their_feeders() {
        let (p, _) = sliced(
            r#"
            int make(void) {
                int t;
                t = 7;
                return t;
            }
            void main(void) {
                int v;
                v = make();
                assert(v == 7);
            }
        "#,
            "main",
        );
        assert_eq!(assigns_to(&p, "make", "t"), 1, "return feeder kept");
    }
}
