//! Pins the worklist solver's contract against a brute-force oracle: a
//! round-robin fixpoint that re-applies every transfer until nothing
//! changes. For monotone transfers both must reach the same (unique
//! least) fixpoint, on random CFGs, in both directions.

use analysis::dataflow::{solve_gen_kill, BitSet, Cfg, Direction, Solution};
use testutil::{run_cases, Rng};

#[derive(Debug)]
struct Case {
    cfg: Cfg,
    bits: usize,
    boundary: BitSet,
    gen: Vec<BitSet>,
    kill: Vec<BitSet>,
}

fn random_case(rng: &mut Rng) -> Case {
    let n = rng.gen_range(1, 12) as usize;
    let bits = rng.gen_range(1, 9) as usize;
    let mut succs = vec![Vec::new(); n];
    for (i, ss) in succs.iter_mut().enumerate() {
        // Mostly fallthrough-shaped with random extra edges (loops,
        // skips, back edges) and occasional exits.
        if i + 1 < n && !rng.ratio(1, 5) {
            ss.push(i + 1);
        }
        if rng.ratio(1, 2) {
            let t = rng.index(n);
            if !ss.contains(&t) {
                ss.push(t);
            }
        }
    }
    let mut boundary = BitSet::empty(bits);
    for b in 0..bits {
        if rng.ratio(1, 4) {
            boundary.insert(b);
        }
    }
    let mut randset = |rng: &mut Rng| {
        let mut s = BitSet::empty(bits);
        for b in 0..bits {
            if rng.ratio(1, 3) {
                s.insert(b);
            }
        }
        s
    };
    let gen = (0..n).map(|_| randset(rng)).collect();
    let kill = (0..n).map(|_| randset(rng)).collect();
    Case {
        cfg: Cfg::new(succs),
        bits,
        boundary,
        gen,
        kill,
    }
}

/// The oracle: apply every node's equation in a fixed round-robin order
/// until a full sweep changes nothing. No worklist, no cleverness.
fn brute_force(case: &Case, direction: Direction) -> Solution {
    let n = case.cfg.len();
    let preds = case.cfg.preds();
    let mut entry = vec![BitSet::empty(case.bits); n];
    let mut exit = vec![BitSet::empty(case.bits); n];
    match direction {
        Direction::Forward => entry[0] = case.boundary.clone(),
        Direction::Backward => {
            for (i, ss) in case.cfg.succs.iter().enumerate() {
                if ss.is_empty() {
                    exit[i] = case.boundary.clone();
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for node in 0..n {
            let feeders: &Vec<usize> = match direction {
                Direction::Forward => &preds[node],
                Direction::Backward => &case.cfg.succs[node],
            };
            for &f in feeders {
                let fact = match direction {
                    Direction::Forward => exit[f].clone(),
                    Direction::Backward => entry[f].clone(),
                };
                let input = match direction {
                    Direction::Forward => &mut entry[node],
                    Direction::Backward => &mut exit[node],
                };
                changed |= input.union_with(&fact);
            }
            let input = match direction {
                Direction::Forward => entry[node].clone(),
                Direction::Backward => exit[node].clone(),
            };
            let mut output = input;
            output.subtract(&case.kill[node]);
            output.union_with(&case.gen[node]);
            let slot = match direction {
                Direction::Forward => &mut exit[node],
                Direction::Backward => &mut entry[node],
            };
            if *slot != output {
                *slot = output;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Solution { entry, exit }
}

fn check(case: &Case, direction: Direction) {
    let fast = solve_gen_kill(&case.cfg, direction, &case.boundary, &case.gen, &case.kill);
    let slow = brute_force(case, direction);
    for i in 0..case.cfg.len() {
        assert_eq!(
            fast.entry[i], slow.entry[i],
            "entry facts diverge at node {i} ({direction:?})"
        );
        assert_eq!(
            fast.exit[i], slow.exit[i],
            "exit facts diverge at node {i} ({direction:?})"
        );
    }
}

#[test]
fn worklist_matches_brute_force_forward() {
    run_cases("solver-vs-bruteforce-forward", 300, random_case, |case| {
        check(case, Direction::Forward);
    });
}

#[test]
fn worklist_matches_brute_force_backward() {
    run_cases("solver-vs-bruteforce-backward", 300, random_case, |case| {
        check(case, Direction::Backward);
    });
}

#[test]
fn worklist_is_deterministic() {
    run_cases("solver-deterministic", 50, random_case, |case| {
        let a = solve_gen_kill(
            &case.cfg,
            Direction::Forward,
            &case.boundary,
            &case.gen,
            &case.kill,
        );
        let b = solve_gen_kill(
            &case.cfg,
            Direction::Forward,
            &case.boundary,
            &case.gen,
            &case.kill,
        );
        assert_eq!(a.entry, b.entry);
        assert_eq!(a.exit, b.exit);
    });
}
