//! Reduced ordered binary decision diagrams.
//!
//! The Bebop model checker represents sets of boolean-program states and
//! statement transfer relations as BDDs (the paper cites Bryant \[9\]). This
//! is a compact, arena-based implementation: nodes are interned in a
//! unique table, all boolean operations are derived from a memoized
//! ternary `ite`, and quantification/renaming are provided for the
//! relational composition Bebop performs.
//!
//! Variables are `u32` indices; the variable order is the numeric order.
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y);
//! assert_eq!(m.sat_count(f, 2), 1);
//! let g = m.or(x, y);
//! assert_eq!(m.sat_count(g, 2), 3);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;

/// A BDD function handle (index into the manager's node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub u32);

/// The constant `false`.
pub const FALSE: Bdd = Bdd(0);
/// The constant `true`.
pub const TRUE: Bdd = Bdd(1);

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

/// The BDD manager: owns the node arena and operation caches.
#[derive(Debug, Default)]
pub struct Manager {
    nodes: Vec<Node>,
    unique: HashMap<Node, Bdd>,
    ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
    rename_cache: HashMap<(Bdd, u64), Bdd>,
    exists_cache: HashMap<(Bdd, u64), Bdd>,
    /// Monotonically increasing stamp distinguishing rename/exists maps.
    op_stamp: u64,
}

impl Manager {
    /// Creates a manager containing only the terminals.
    pub fn new() -> Manager {
        let mut m = Manager::default();
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: FALSE,
            hi: FALSE,
        }); // FALSE
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: TRUE,
            hi: TRUE,
        }); // TRUE
        m
    }

    /// Number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Entries across the operation memo caches (`ite`, `rename`,
    /// `exists`). Unlike the node arena these are pure accelerators.
    pub fn cache_entry_count(&self) -> usize {
        self.ite_cache.len() + self.rename_cache.len() + self.exists_cache.len()
    }

    /// Drops the operation memo caches while keeping the node arena and
    /// unique table intact. Every existing [`Bdd`] handle stays valid and
    /// every future operation still returns the same canonical node; only
    /// memoized sub-results are recomputed on demand. Callers that hold a
    /// manager across many analysis runs (the CEGAR loop reuses one
    /// manager per [`check`](../slam) call) invoke this between runs to
    /// bound memory without discarding the interned node structure.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
        self.rename_cache.clear();
        self.exists_cache.clear();
    }

    fn node(&self, f: Bdd) -> Node {
        self.nodes[f.0 as usize]
    }

    /// The top variable of `f`, or `None` for terminals.
    pub fn top_var(&self, f: Bdd) -> Option<u32> {
        let v = self.node(f).var;
        (v != TERMINAL_VAR).then_some(v)
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        let n = Node { var, lo, hi };
        if let Some(b) = self.unique.get(&n) {
            return *b;
        }
        let b = Bdd(self.nodes.len() as u32);
        self.nodes.push(n);
        self.unique.insert(n, b);
        b
    }

    /// The function of a single variable.
    pub fn var(&mut self, v: u32) -> Bdd {
        self.mk(v, FALSE, TRUE)
    }

    /// The negation of a single variable.
    pub fn nvar(&mut self, v: u32) -> Bdd {
        self.mk(v, TRUE, FALSE)
    }

    /// If-then-else: `f ? g : h`, the universal connective.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f == TRUE {
            return g;
        }
        if f == FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == TRUE && h == FALSE {
            return f;
        }
        if let Some(r) = self.ite_cache.get(&(f, g, h)) {
            return *r;
        }
        let vf = self.node(f).var;
        let vg = self.node(g).var;
        let vh = self.node(h).var;
        let v = vf.min(vg).min(vh);
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((f, g, h), r);
        r
    }

    fn cofactors(&self, f: Bdd, v: u32) -> (Bdd, Bdd) {
        let n = self.node(f);
        if n.var == v {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// `!f`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, FALSE, TRUE)
    }

    /// `f && g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, FALSE)
    }

    /// `f || g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, TRUE, g)
    }

    /// `f ^ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// `f <-> g`.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// `f -> g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, TRUE)
    }

    /// Conjunction of many functions.
    pub fn and_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        let mut acc = TRUE;
        for f in fs {
            acc = self.and(acc, f);
            if acc == FALSE {
                break;
            }
        }
        acc
    }

    /// Disjunction of many functions.
    pub fn or_all(&mut self, fs: impl IntoIterator<Item = Bdd>) -> Bdd {
        let mut acc = FALSE;
        for f in fs {
            acc = self.or(acc, f);
            if acc == TRUE {
                break;
            }
        }
        acc
    }

    /// Restricts variable `v` to the constant `val`.
    pub fn restrict(&mut self, f: Bdd, v: u32, val: bool) -> Bdd {
        let n = self.node(f);
        if n.var == TERMINAL_VAR || n.var > v {
            return f;
        }
        if n.var == v {
            return if val { n.hi } else { n.lo };
        }
        let lo = self.restrict(n.lo, v, val);
        let hi = self.restrict(n.hi, v, val);
        self.mk(n.var, lo, hi)
    }

    /// Existentially quantifies the variables in `vars` (a set).
    pub fn exists(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        if vars.is_empty() {
            return f;
        }
        let mut sorted: Vec<u32> = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.op_stamp += 1;
        let stamp = self.op_stamp;
        self.exists_rec(f, &sorted, stamp)
    }

    fn exists_rec(&mut self, f: Bdd, vars: &[u32], stamp: u64) -> Bdd {
        let n = self.node(f);
        if n.var == TERMINAL_VAR {
            return f;
        }
        let rest: &[u32] = {
            let mut i = 0;
            while i < vars.len() && vars[i] < n.var {
                i += 1;
            }
            &vars[i..]
        };
        if rest.is_empty() {
            return f;
        }
        if let Some(r) = self.exists_cache.get(&(f, stamp)) {
            return *r;
        }
        let r = if rest[0] == n.var {
            let lo = self.exists_rec(n.lo, &rest[1..], stamp);
            let hi = self.exists_rec(n.hi, &rest[1..], stamp);
            self.or(lo, hi)
        } else {
            let lo = self.exists_rec(n.lo, rest, stamp);
            let hi = self.exists_rec(n.hi, rest, stamp);
            self.mk(n.var, lo, hi)
        };
        self.exists_cache.insert((f, stamp), r);
        r
    }

    /// Universally quantifies the variables in `vars`.
    pub fn forall(&mut self, f: Bdd, vars: &[u32]) -> Bdd {
        let nf = self.not(f);
        let e = self.exists(nf, vars);
        self.not(e)
    }

    /// Renames variables according to `map` (old → new).
    ///
    /// # Panics
    ///
    /// Panics if the map is not order-preserving (renaming would then
    /// require a full reordering).
    pub fn rename(&mut self, f: Bdd, map: &HashMap<u32, u32>) -> Bdd {
        if map.is_empty() {
            return f;
        }
        let mut pairs: Vec<(u32, u32)> = map.iter().map(|(a, b)| (*a, *b)).collect();
        pairs.sort_unstable();
        for w in pairs.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "rename map must be order-preserving: {pairs:?}"
            );
        }
        self.op_stamp += 1;
        let stamp = self.op_stamp;
        self.rename_rec(f, map, stamp)
    }

    fn rename_rec(&mut self, f: Bdd, map: &HashMap<u32, u32>, stamp: u64) -> Bdd {
        let n = self.node(f);
        if n.var == TERMINAL_VAR {
            return f;
        }
        if let Some(r) = self.rename_cache.get(&(f, stamp)) {
            return *r;
        }
        let lo = self.rename_rec(n.lo, map, stamp);
        let hi = self.rename_rec(n.hi, map, stamp);
        let v = map.get(&n.var).copied().unwrap_or(n.var);
        let r = self.mk(v, lo, hi);
        self.rename_cache.insert((f, stamp), r);
        r
    }

    /// Substitutes the function `g` for variable `v` in `f`.
    pub fn compose(&mut self, f: Bdd, v: u32, g: Bdd) -> Bdd {
        let hi = self.restrict(f, v, true);
        let lo = self.restrict(f, v, false);
        self.ite(g, hi, lo)
    }

    /// Number of satisfying assignments over the variables `0..n_vars`.
    pub fn sat_count(&self, f: Bdd, n_vars: u32) -> u128 {
        let mut memo = HashMap::new();
        self.sat_count_rec(f, 0, n_vars, &mut memo)
    }

    fn sat_count_rec(
        &self,
        f: Bdd,
        from_var: u32,
        n_vars: u32,
        memo: &mut HashMap<(Bdd, u32), u128>,
    ) -> u128 {
        if f == FALSE {
            return 0;
        }
        let n = self.node(f);
        let top = if n.var == TERMINAL_VAR { n_vars } else { n.var };
        debug_assert!(top >= from_var, "variable out of declared range");
        let scale = 1u128 << (top - from_var);
        if f == TRUE {
            return scale;
        }
        if let Some(c) = memo.get(&(f, from_var)) {
            return *c;
        }
        let lo = self.sat_count_rec(n.lo, n.var + 1, n_vars, memo);
        let hi = self.sat_count_rec(n.hi, n.var + 1, n_vars, memo);
        let count = scale * (lo + hi);
        memo.insert((f, from_var), count);
        count
    }

    /// One satisfying assignment as `(var, value)` pairs for the variables
    /// on the chosen path, or `None` if `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<(u32, bool)>> {
        if f == FALSE {
            return None;
        }
        let mut out = Vec::new();
        let mut cur = f;
        while cur != TRUE {
            let n = self.node(cur);
            if n.lo != FALSE {
                out.push((n.var, false));
                cur = n.lo;
            } else {
                out.push((n.var, true));
                cur = n.hi;
            }
        }
        Some(out)
    }

    /// All paths to `TRUE` as partial assignments (a DNF cover of `f`).
    pub fn cubes(&self, f: Bdd) -> Vec<Vec<(u32, bool)>> {
        let mut out = Vec::new();
        let mut path = Vec::new();
        self.cubes_rec(f, &mut path, &mut out);
        out
    }

    fn cubes_rec(&self, f: Bdd, path: &mut Vec<(u32, bool)>, out: &mut Vec<Vec<(u32, bool)>>) {
        if f == FALSE {
            return;
        }
        if f == TRUE {
            out.push(path.clone());
            return;
        }
        let n = self.node(f);
        path.push((n.var, false));
        self.cubes_rec(n.lo, path, out);
        path.pop();
        path.push((n.var, true));
        self.cubes_rec(n.hi, path, out);
        path.pop();
    }

    /// Evaluates `f` under a total assignment given as a lookup.
    pub fn eval(&self, f: Bdd, assignment: &dyn Fn(u32) -> bool) -> bool {
        let mut cur = f;
        loop {
            if cur == TRUE {
                return true;
            }
            if cur == FALSE {
                return false;
            }
            let n = self.node(cur);
            cur = if assignment(n.var) { n.hi } else { n.lo };
        }
    }

    /// Builds the BDD of a cube (conjunction of literals).
    pub fn cube(&mut self, lits: &[(u32, bool)]) -> Bdd {
        let mut sorted = lits.to_vec();
        sorted.sort_unstable_by_key(|(v, _)| *v);
        let mut acc = TRUE;
        for &(v, val) in sorted.iter().rev() {
            acc = if val {
                self.mk(v, FALSE, acc)
            } else {
                self.mk(v, acc, FALSE)
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_caches_keeps_the_arena_and_the_answers() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let xy = m.and(x, y);
        let f = m.or(xy, z);
        let quantified = m.exists(f, &[1]);
        assert!(m.cache_entry_count() > 0);
        let nodes_before = m.node_count();
        m.clear_caches();
        assert_eq!(m.cache_entry_count(), 0);
        // the arena and unique table survive: handles stay valid and
        // rebuilding the same functions yields the same nodes
        assert_eq!(m.node_count(), nodes_before);
        let xy2 = m.and(x, y);
        let f2 = m.or(xy2, z);
        assert_eq!(f2, f);
        assert_eq!(m.exists(f2, &[1]), quantified);
        assert_eq!(m.node_count(), nodes_before);
        assert_eq!(m.sat_count(f, 3), 5);
    }

    #[test]
    fn terminals_and_vars() {
        let mut m = Manager::new();
        let x = m.var(0);
        assert_ne!(x, TRUE);
        assert_ne!(x, FALSE);
        let nx = m.not(x);
        assert_eq!(m.not(nx), x);
        assert_eq!(m.nvar(0), nx);
    }

    #[test]
    fn boolean_algebra_laws() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        // distributivity
        let a = m.or(y, z);
        let lhs = m.and(x, a);
        let xy = m.and(x, y);
        let xz = m.and(x, z);
        let rhs = m.or(xy, xz);
        assert_eq!(lhs, rhs);
        // de morgan
        let nand = {
            let a = m.and(x, y);
            m.not(a)
        };
        let nor = {
            let nx = m.not(x);
            let ny = m.not(y);
            m.or(nx, ny)
        };
        assert_eq!(nand, nor);
        // absorption
        let a = m.or(x, xy);
        assert_eq!(a, x);
    }

    #[test]
    fn canonical_equality() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f1 = {
            let a = m.and(x, y);
            let nx = m.not(x);
            let ny = m.not(y);
            let b = m.and(nx, ny);
            m.or(a, b)
        };
        let f2 = m.iff(x, y);
        assert_eq!(f1, f2);
    }

    #[test]
    fn sat_count_counts() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        assert_eq!(m.sat_count(TRUE, 2), 4);
        assert_eq!(m.sat_count(FALSE, 2), 0);
        assert_eq!(m.sat_count(x, 2), 2);
        let f = m.and(x, y);
        assert_eq!(m.sat_count(f, 2), 1);
        let g = m.xor(x, y);
        assert_eq!(m.sat_count(g, 2), 2);
        assert_eq!(m.sat_count(x, 4), 8);
        // a function over a later variable only
        let z = m.var(2);
        assert_eq!(m.sat_count(z, 3), 4);
    }

    #[test]
    fn restrict_and_compose() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let z = m.var(2);
        let f = m.and(x, y);
        assert_eq!(m.restrict(f, 0, true), y);
        assert_eq!(m.restrict(f, 0, false), FALSE);
        let g = m.compose(f, 1, z);
        let expect = m.and(x, z);
        assert_eq!(g, expect);
    }

    #[test]
    fn quantification() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        assert_eq!(m.exists(f, &[0]), y);
        assert_eq!(m.exists(f, &[0, 1]), TRUE);
        assert_eq!(m.forall(f, &[0]), FALSE);
        let g = m.or(x, y);
        assert_eq!(m.forall(g, &[0]), y);
    }

    #[test]
    fn rename_shifts_variables() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(2);
        let f = m.and(x, y);
        let map: HashMap<u32, u32> = [(0, 1), (2, 3)].into_iter().collect();
        let g = m.rename(f, &map);
        let x1 = m.var(1);
        let y3 = m.var(3);
        let expect = m.and(x1, y3);
        assert_eq!(g, expect);
    }

    #[test]
    #[should_panic(expected = "order-preserving")]
    fn rename_rejects_swaps() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.and(x, y);
        let map: HashMap<u32, u32> = [(0, 1), (1, 0)].into_iter().collect();
        let _ = m.rename(f, &map);
    }

    #[test]
    fn any_sat_and_cubes() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.xor(x, y);
        let sat = m.any_sat(f).unwrap();
        let assign: HashMap<u32, bool> = sat.into_iter().collect();
        assert!(m.eval(f, &|v| *assign.get(&v).unwrap_or(&false)));
        let cubes = m.cubes(f);
        assert_eq!(cubes.len(), 2);
        assert!(m.any_sat(FALSE).is_none());
    }

    #[test]
    fn cube_builder() {
        let mut m = Manager::new();
        let c = m.cube(&[(0, true), (2, false)]);
        assert!(m.eval(c, &|v| v == 0));
        assert!(!m.eval(c, &|_| true));
        assert_eq!(m.sat_count(c, 3), 2);
    }

    #[test]
    fn eval_walks_paths() {
        let mut m = Manager::new();
        let x = m.var(0);
        let y = m.var(1);
        let f = m.implies(x, y);
        assert!(m.eval(f, &|_| false));
        assert!(!m.eval(f, &|v| v == 0));
        assert!(m.eval(f, &|_| true));
    }
}
