//! Property tests: the BDD engine against a brute-force truth-table
//! oracle over a small variable universe.

use bdd::{Manager, FALSE, TRUE};
use testutil::{run_cases, Rng};

/// A random boolean expression over variables 0..N.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

const N: u32 = 5;

fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.ratio(1, 4) {
        return Expr::Var(rng.next_u64() as u32 % N);
    }
    match rng.index(4) {
        0 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
        1 => Expr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Xor(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

fn build(m: &mut Manager, e: &Expr) -> bdd::Bdd {
    match e {
        Expr::Var(v) => m.var(*v),
        Expr::Not(a) => {
            let x = build(m, a);
            m.not(x)
        }
        Expr::And(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (build(m, a), build(m, b));
            m.xor(x, y)
        }
    }
}

fn truth(e: &Expr, assignment: u32) -> bool {
    match e {
        Expr::Var(v) => assignment & (1 << v) != 0,
        Expr::Not(a) => !truth(a, assignment),
        Expr::And(a, b) => truth(a, assignment) && truth(b, assignment),
        Expr::Or(a, b) => truth(a, assignment) || truth(b, assignment),
        Expr::Xor(a, b) => truth(a, assignment) ^ truth(b, assignment),
    }
}

#[test]
fn bdd_matches_truth_table() {
    run_cases(
        "bdd_matches_truth_table",
        256,
        |rng| gen_expr(rng, 4),
        |e| {
            let mut m = Manager::new();
            let f = build(&mut m, e);
            for assignment in 0..(1u32 << N) {
                let expected = truth(e, assignment);
                let got = m.eval(f, &|v| assignment & (1 << v) != 0);
                assert_eq!(got, expected, "assignment {assignment:#b}");
            }
            // sat_count agrees with the table
            let count = (0..(1u32 << N)).filter(|a| truth(e, *a)).count() as u128;
            assert_eq!(m.sat_count(f, N), count);
        },
    );
}

#[test]
fn canonicity_equal_functions_share_nodes() {
    run_cases(
        "canonicity_equal_functions_share_nodes",
        256,
        |rng| gen_expr(rng, 4),
        |e| {
            // f XOR f == FALSE, f OR f == f, double negation
            let mut m = Manager::new();
            let f = build(&mut m, e);
            let x = m.xor(f, f);
            assert_eq!(x, FALSE);
            let o = m.or(f, f);
            assert_eq!(o, f);
            let nn = {
                let n = m.not(f);
                m.not(n)
            };
            assert_eq!(nn, f);
        },
    );
}

#[test]
fn quantification_matches_semantics() {
    run_cases(
        "quantification_matches_semantics",
        256,
        |rng| (gen_expr(rng, 4), rng.next_u64() as u32 % N),
        |(e, v)| {
            let mut m = Manager::new();
            let f = build(&mut m, e);
            let ex = m.exists(f, &[*v]);
            let fa = m.forall(f, &[*v]);
            for assignment in 0..(1u32 << N) {
                let with_true = assignment | (1 << v);
                let with_false = assignment & !(1 << v);
                let t = truth(e, with_true);
                let fv = truth(e, with_false);
                assert_eq!(m.eval(ex, &|x| assignment & (1 << x) != 0), t || fv);
                assert_eq!(m.eval(fa, &|x| assignment & (1 << x) != 0), t && fv);
            }
        },
    );
}

#[test]
fn cubes_cover_exactly() {
    run_cases(
        "cubes_cover_exactly",
        256,
        |rng| gen_expr(rng, 4),
        |e| {
            let mut m = Manager::new();
            let f = build(&mut m, e);
            let cubes = m.cubes(f);
            for assignment in 0..(1u32 << N) {
                let expected = truth(e, assignment);
                let covered = cubes.iter().any(|cube| {
                    cube.iter()
                        .all(|(v, val)| (assignment & (1 << v) != 0) == *val)
                });
                assert_eq!(covered, expected);
            }
        },
    );
}

#[test]
fn restrict_is_substitution() {
    run_cases(
        "restrict_is_substitution",
        256,
        |rng| (gen_expr(rng, 4), rng.next_u64() as u32 % N, rng.gen_bool()),
        |(e, v, val)| {
            let mut m = Manager::new();
            let f = build(&mut m, e);
            let r = m.restrict(f, *v, *val);
            for assignment in 0..(1u32 << N) {
                let forced = if *val {
                    assignment | (1 << v)
                } else {
                    assignment & !(1 << v)
                };
                assert_eq!(m.eval(r, &|x| assignment & (1 << x) != 0), truth(e, forced));
            }
        },
    );
}

#[test]
fn trivial_constants() {
    let m = Manager::new();
    assert_eq!(m.sat_count(TRUE, 3), 8);
    assert_eq!(m.sat_count(FALSE, 3), 0);
}
