//! The interprocedural reachability engine (RHS tabulation over BDDs).
//!
//! Variable banks: a procedure whose scope (globals, then formals, then
//! locals) puts variable `v` at position `p` uses BDD variables
//! `4p` (entry copy), `4p+1` (current copy), `4p+2` (next copy / callee
//! entry during call processing), and `4p+3` (callee exit during call
//! processing). Globals occupy the same positions in every procedure, so
//! the banks line up across procedures. Return values of `bool<k>`
//! procedures live above all banks.

use bdd::{Bdd, Manager, FALSE, TRUE};
use bp::ast::{BExpr, BProgram};
use bp::flow::{flatten_proc, BInstr, FlatProc};
use cparse::ast::StmtId;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;

/// Errors raised while setting up or running the analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BebopError {
    /// Description.
    pub message: String,
}

impl fmt::Display for BebopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bebop error: {}", self.message)
    }
}

impl std::error::Error for BebopError {}

/// A reachable `assert(false)`-style failure.
#[derive(Debug, Clone)]
pub struct ErrorSite {
    /// Procedure containing the failing assert.
    pub proc: String,
    /// Instruction index of the assert.
    pub pc: usize,
    /// Originating C statement, if any.
    pub id: Option<StmtId>,
}

/// The model checker.
pub struct Bebop {
    program: BProgram,
    flats: HashMap<String, FlatProc>,
    mgr: Manager,
    /// Per-procedure scope: variable names in position order.
    scopes: HashMap<String, Vec<String>>,
    /// Per-procedure: name -> position.
    positions: HashMap<String, HashMap<String, usize>>,
    n_globals: usize,
    /// First BDD variable index reserved for return values.
    ret_base: u32,
}

/// Results of one [`Bebop::analyze`] run.
pub struct Analysis {
    /// Path edges: `(proc, node)` -> BDD over (entry bank, current bank).
    pub(crate) path_edges: HashMap<(String, usize), Bdd>,
    /// Reachable assertion failures.
    pub errors: Vec<ErrorSite>,
    /// The procedure the analysis started from.
    pub main: String,
    /// Number of worklist iterations (a proxy for analysis effort).
    pub iterations: u64,
}

impl Analysis {
    /// True if any assertion failure is reachable.
    pub fn error_reachable(&self) -> bool {
        !self.errors.is_empty()
    }
}

impl Bebop {
    /// Prepares the checker (flattens all procedures).
    ///
    /// # Errors
    ///
    /// Returns [`BebopError`] on unresolved labels or duplicate variables.
    pub fn new(program: &BProgram) -> Result<Bebop, BebopError> {
        Bebop::with_manager(program, Manager::new())
    }

    /// Like [`Bebop::new`], but analyzing inside an existing BDD manager.
    ///
    /// BDD handles are canonical functions of variable *indices*, so a
    /// manager may be carried across programs: nodes interned by an
    /// earlier run are simply reused when the same functions reappear.
    /// The CEGAR loop passes one manager through every iteration (taking
    /// it back with [`Bebop::into_manager`] and trimming it with
    /// [`Manager::clear_caches`]) so the interned transfer-relation
    /// structure shared between consecutive abstractions is built once.
    pub fn with_manager(program: &BProgram, mgr: Manager) -> Result<Bebop, BebopError> {
        let mut flats = HashMap::new();
        let mut scopes = HashMap::new();
        let mut positions = HashMap::new();
        let mut max_scope = program.globals.len();
        for p in &program.procs {
            let flat = flatten_proc(p).map_err(|e| BebopError { message: e.message })?;
            flats.insert(p.name.clone(), flat);
            let scope = program.scope_of(p);
            let mut pos = HashMap::new();
            for (i, v) in scope.iter().enumerate() {
                if pos.insert(v.clone(), i).is_some() {
                    return Err(BebopError {
                        message: format!("duplicate variable `{v}` in `{}`", p.name),
                    });
                }
            }
            max_scope = max_scope.max(scope.len());
            scopes.insert(p.name.clone(), scope);
            positions.insert(p.name.clone(), pos);
        }
        Ok(Bebop {
            program: program.clone(),
            flats,
            mgr,
            scopes,
            positions,
            n_globals: program.globals.len(),
            ret_base: 4 * max_scope as u32,
        })
    }

    /// `(node arena size, memo-cache entries)` of the BDD manager — the
    /// peak for a finished run, since both only grow during an analysis.
    pub fn bdd_stats(&self) -> (usize, usize) {
        (self.mgr.node_count(), self.mgr.cache_entry_count())
    }

    /// Consumes the checker and returns its BDD manager, so a caller can
    /// thread it into the next run (see [`Bebop::with_manager`]).
    pub fn into_manager(self) -> Manager {
        self.mgr
    }

    // -- bank helpers --------------------------------------------------------

    fn entry_var(pos: usize) -> u32 {
        4 * pos as u32
    }
    fn cur_var(pos: usize) -> u32 {
        4 * pos as u32 + 1
    }
    fn nxt_var(pos: usize) -> u32 {
        4 * pos as u32 + 2
    }
    fn aux_var(pos: usize) -> u32 {
        4 * pos as u32 + 3
    }
    fn ret_var(&self, j: usize) -> u32 {
        self.ret_base + j as u32
    }

    fn scope_len(&self, proc: &str) -> usize {
        self.scopes[proc].len()
    }

    fn position(&self, proc: &str, var: &str) -> Result<usize, BebopError> {
        self.positions[proc]
            .get(var)
            .copied()
            .ok_or_else(|| BebopError {
                message: format!("unknown variable `{var}` in `{proc}`"),
            })
    }

    /// Nondeterministic evaluation of `e` over the given bank:
    /// (may-be-true set, may-be-false set).
    fn eval(
        &mut self,
        proc: &str,
        e: &BExpr,
        var_of: &dyn Fn(usize) -> u32,
    ) -> Result<(Bdd, Bdd), BebopError> {
        Ok(match e {
            BExpr::Const(true) => (TRUE, FALSE),
            BExpr::Const(false) => (FALSE, TRUE),
            BExpr::Nondet => (TRUE, TRUE),
            BExpr::Var(v) => {
                let p = self.position(proc, v)?;
                let b = self.mgr.var(var_of(p));
                (b, self.mgr.not(b))
            }
            BExpr::Not(inner) => {
                let (t, f) = self.eval(proc, inner, var_of)?;
                (f, t)
            }
            BExpr::And(es) => {
                let mut t = TRUE;
                let mut f = FALSE;
                for x in es {
                    let (xt, xf) = self.eval(proc, x, var_of)?;
                    t = self.mgr.and(t, xt);
                    f = self.mgr.or(f, xf);
                }
                (t, f)
            }
            BExpr::Or(es) => {
                let mut t = FALSE;
                let mut f = TRUE;
                for x in es {
                    let (xt, xf) = self.eval(proc, x, var_of)?;
                    t = self.mgr.or(t, xt);
                    f = self.mgr.and(f, xf);
                }
                (t, f)
            }
            BExpr::Choose(p, n) => {
                // true if p; false if !p && n; nondet if !p && !n
                let (pt, pf) = self.eval(proc, p, var_of)?;
                let (nt, nf) = self.eval(proc, n, var_of)?;
                let may_true = {
                    let both_f = self.mgr.and(pf, nf);
                    self.mgr.or(pt, both_f)
                };
                let may_false = {
                    let _ = nt;
                    pf
                };
                (may_true, may_false)
            }
        })
    }

    /// The relation `next_target ↔ value` for one parallel-assignment slot.
    fn assign_slot(
        &mut self,
        proc: &str,
        target_pos: usize,
        value: &BExpr,
    ) -> Result<Bdd, BebopError> {
        let (vt, vf) = self.eval(proc, value, &Self::cur_var)?;
        let nxt = self.mgr.var(Self::nxt_var(target_pos));
        let pos_case = self.mgr.and(vt, nxt);
        let nnxt = self.mgr.not(nxt);
        let neg_case = self.mgr.and(vf, nnxt);
        Ok(self.mgr.or(pos_case, neg_case))
    }

    /// Forward image of a path-edge set through a parallel assignment.
    fn apply_assign(
        &mut self,
        proc: &str,
        pe: Bdd,
        targets: &[String],
        values: &[BExpr],
    ) -> Result<Bdd, BebopError> {
        let scope_len = self.scope_len(proc);
        let mut rel = TRUE;
        let mut assigned = vec![false; scope_len];
        for (t, v) in targets.iter().zip(values) {
            let p = self.position(proc, t)?;
            assigned[p] = true;
            let slot = self.assign_slot(proc, p, v)?;
            rel = self.mgr.and(rel, slot);
        }
        for (p, was) in assigned.iter().enumerate() {
            if !was {
                let c = self.mgr.var(Self::cur_var(p));
                let n = self.mgr.var(Self::nxt_var(p));
                let eq = self.mgr.iff(c, n);
                rel = self.mgr.and(rel, eq);
            }
        }
        let conj = self.mgr.and(pe, rel);
        let cur_vars: Vec<u32> = (0..scope_len).map(Self::cur_var).collect();
        let projected = self.mgr.exists(conj, &cur_vars);
        let map: HashMap<u32, u32> = (0..scope_len)
            .map(|p| (Self::nxt_var(p), Self::cur_var(p)))
            .collect();
        Ok(self.mgr.rename(projected, &map))
    }

    /// The enforce invariant of `proc` over the current bank (TRUE if none).
    fn enforce_bdd(&mut self, proc: &str) -> Result<Bdd, BebopError> {
        let Some(inv) = self.program.proc(proc).and_then(|p| p.enforce.clone()) else {
            return Ok(TRUE);
        };
        let (t, _) = self.eval(proc, &inv, &Self::cur_var)?;
        Ok(t)
    }

    /// The identity `entry ↔ current` over globals and formals of `proc`.
    fn entry_diag(&mut self, proc: &str) -> Bdd {
        let p = self.program.proc(proc).expect("proc exists");
        let n = self.n_globals + p.formals.len();
        let mut d = TRUE;
        for pos in 0..n {
            let e = self.mgr.var(Self::entry_var(pos));
            let c = self.mgr.var(Self::cur_var(pos));
            let eq = self.mgr.iff(e, c);
            d = self.mgr.and(d, eq);
        }
        d
    }

    /// Runs the reachability analysis from `main`.
    ///
    /// # Errors
    ///
    /// Returns [`BebopError`] for malformed programs (unknown variables or
    /// procedures, arity mismatches).
    pub fn analyze(&mut self, main: &str) -> Result<Analysis, BebopError> {
        if self.program.proc(main).is_none() {
            return Err(BebopError {
                message: format!("unknown entry procedure `{main}`"),
            });
        }
        let mut path_edges: HashMap<(String, usize), Bdd> = HashMap::new();
        // summaries: proc -> BDD over (entry bank, current-bank globals,
        // return-value vars)
        let mut summaries: HashMap<String, Bdd> = HashMap::new();
        let mut call_sites: HashMap<String, HashSet<(String, usize)>> = HashMap::new();
        let mut errors: Vec<ErrorSite> = Vec::new();
        let mut error_seen: HashSet<(String, usize)> = HashSet::new();
        let mut worklist: VecDeque<(String, usize)> = VecDeque::new();
        let mut queued: HashSet<(String, usize)> = HashSet::new();
        let mut iterations = 0u64;

        let seed = {
            let diag = self.entry_diag(main);
            let inv = self.enforce_bdd(main)?;
            self.mgr.and(diag, inv)
        };
        path_edges.insert((main.to_string(), 0), seed);
        worklist.push_back((main.to_string(), 0));
        queued.insert((main.to_string(), 0));

        macro_rules! add_edge {
            ($proc:expr, $node:expr, $states:expr) => {{
                let proc: String = $proc;
                let node: usize = $node;
                let inv = self.enforce_bdd(&proc)?;
                let states = self.mgr.and($states, inv);
                if states != FALSE {
                    let key = (proc.clone(), node);
                    let old = path_edges.get(&key).copied().unwrap_or(FALSE);
                    let new = self.mgr.or(old, states);
                    if new != old {
                        path_edges.insert(key.clone(), new);
                        if queued.insert(key.clone()) {
                            worklist.push_back(key);
                        }
                    }
                }
            }};
        }

        while let Some((proc, node)) = worklist.pop_front() {
            queued.remove(&(proc.clone(), node));
            iterations += 1;
            if iterations > 2_000_000 {
                return Err(BebopError {
                    message: "worklist budget exhausted".into(),
                });
            }
            let pe = path_edges
                .get(&(proc.clone(), node))
                .copied()
                .unwrap_or(FALSE);
            if pe == FALSE {
                continue;
            }
            let instr = self.flats[&proc].instrs[node].clone();
            match instr {
                BInstr::Nop => add_edge!(proc.clone(), node + 1, pe),
                BInstr::Jump(t) => add_edge!(proc.clone(), t, pe),
                BInstr::Assign {
                    targets, values, ..
                } => {
                    let post = self.apply_assign(&proc, pe, &targets, &values)?;
                    add_edge!(proc.clone(), node + 1, post);
                }
                BInstr::Assume { cond, .. } => {
                    let (vt, _) = self.eval(&proc, &cond, &Self::cur_var)?;
                    let post = self.mgr.and(pe, vt);
                    add_edge!(proc.clone(), node + 1, post);
                }
                BInstr::Assert { id, cond } => {
                    let (vt, vf) = self.eval(&proc, &cond, &Self::cur_var)?;
                    let fail = self.mgr.and(pe, vf);
                    if fail != FALSE && error_seen.insert((proc.clone(), node)) {
                        errors.push(ErrorSite {
                            proc: proc.clone(),
                            pc: node,
                            id,
                        });
                    }
                    let post = self.mgr.and(pe, vt);
                    add_edge!(proc.clone(), node + 1, post);
                }
                BInstr::Branch {
                    cond,
                    target_true,
                    target_false,
                    ..
                } => {
                    let (vt, vf) = self.eval(&proc, &cond, &Self::cur_var)?;
                    let t_states = self.mgr.and(pe, vt);
                    let f_states = self.mgr.and(pe, vf);
                    add_edge!(proc.clone(), target_true, t_states);
                    add_edge!(proc.clone(), target_false, f_states);
                }
                BInstr::Call {
                    dsts,
                    proc: callee,
                    args,
                    ..
                } => {
                    if self.program.proc(&callee).is_none() {
                        return Err(BebopError {
                            message: format!("call to unknown procedure `{callee}`"),
                        });
                    }
                    call_sites
                        .entry(callee.clone())
                        .or_default()
                        .insert((proc.clone(), node));
                    let link = self.call_link(&proc, &callee, &args)?;
                    let k1 = self.mgr.and(pe, link);
                    // seed callee entry
                    let seed = self.callee_entry_seed(&proc, &callee, k1)?;
                    add_edge!(callee.clone(), 0, seed);
                    // apply existing summary
                    if let Some(&sum) = summaries.get(&callee) {
                        let post = self.apply_summary(&proc, &callee, k1, sum, &dsts)?;
                        add_edge!(proc.clone(), node + 1, post);
                    }
                }
                BInstr::Return { values, .. } => {
                    let new_sum = self.summarize(&proc, pe, &values)?;
                    let old = summaries.get(&proc).copied().unwrap_or(FALSE);
                    let merged = self.mgr.or(old, new_sum);
                    if merged != old {
                        summaries.insert(proc.clone(), merged);
                        if let Some(sites) = call_sites.get(&proc) {
                            for site in sites.clone() {
                                if queued.insert(site.clone()) {
                                    worklist.push_back(site);
                                }
                            }
                        }
                    }
                }
            }
        }

        Ok(Analysis {
            path_edges,
            errors,
            main: main.to_string(),
            iterations,
        })
    }

    /// `Link(caller current bank, callee next bank)`: formals bound to
    /// actuals, globals copied.
    fn call_link(&mut self, caller: &str, callee: &str, args: &[BExpr]) -> Result<Bdd, BebopError> {
        let callee_proc = self.program.proc(callee).expect("checked").clone();
        if args.len() != callee_proc.formals.len() {
            return Err(BebopError {
                message: format!(
                    "call to `{callee}` with {} args, expected {}",
                    args.len(),
                    callee_proc.formals.len()
                ),
            });
        }
        let mut link = TRUE;
        for g in 0..self.n_globals {
            let c = self.mgr.var(Self::cur_var(g));
            let n = self.mgr.var(Self::nxt_var(g));
            let eq = self.mgr.iff(c, n);
            link = self.mgr.and(link, eq);
        }
        for (k, arg) in args.iter().enumerate() {
            let fpos = self.n_globals + k;
            let (vt, vf) = self.eval(caller, arg, &Self::cur_var)?;
            let fv = self.mgr.var(Self::nxt_var(fpos));
            let pos_case = self.mgr.and(vt, fv);
            let nfv = self.mgr.not(fv);
            let neg_case = self.mgr.and(vf, nfv);
            let rel = self.mgr.or(pos_case, neg_case);
            link = self.mgr.and(link, rel);
        }
        Ok(link)
    }

    /// Projects `k1 = PE ∧ Link` onto the callee's entry valuation and
    /// turns it into a fresh ⟨d, d⟩ path edge for the callee entry.
    fn callee_entry_seed(
        &mut self,
        caller: &str,
        callee: &str,
        k1: Bdd,
    ) -> Result<Bdd, BebopError> {
        let caller_len = self.scope_len(caller);
        let mut quantify: Vec<u32> = Vec::new();
        for p in 0..caller_len {
            quantify.push(Self::entry_var(p));
            quantify.push(Self::cur_var(p));
        }
        let entry2 = self.mgr.exists(k1, &quantify);
        // entry2 is over nxt-bank positions of the callee's globals+formals
        let callee_proc = self.program.proc(callee).expect("checked").clone();
        let n_entry = self.n_globals + callee_proc.formals.len();
        let map: HashMap<u32, u32> = (0..n_entry)
            .map(|p| (Self::nxt_var(p), Self::entry_var(p)))
            .collect();
        let entry0 = self.mgr.rename(entry2, &map);
        let diag = self.entry_diag(callee);
        Ok(self.mgr.and(entry0, diag))
    }

    /// Builds the summary contribution of a `return` with `values`, from
    /// the exit path edges `pe`: keeps (entry bank, current-bank globals,
    /// return-value vars).
    fn summarize(&mut self, proc: &str, pe: Bdd, values: &[BExpr]) -> Result<Bdd, BebopError> {
        let mut s = pe;
        for (j, v) in values.iter().enumerate() {
            let (vt, vf) = self.eval(proc, v, &Self::cur_var)?;
            let rv = self.mgr.var(self.ret_var(j));
            let pos_case = self.mgr.and(vt, rv);
            let nrv = self.mgr.not(rv);
            let neg_case = self.mgr.and(vf, nrv);
            let rel = self.mgr.or(pos_case, neg_case);
            s = self.mgr.and(s, rel);
        }
        // quantify out formal and local current values (globals stay)
        let scope_len = self.scope_len(proc);
        let vars: Vec<u32> = (self.n_globals..scope_len).map(Self::cur_var).collect();
        Ok(self.mgr.exists(s, &vars))
    }

    /// Applies a callee summary at a call site: from `k1 = PE ∧ Link`
    /// produce the caller's post-call path edges.
    fn apply_summary(
        &mut self,
        caller: &str,
        callee: &str,
        k1: Bdd,
        summary: Bdd,
        dsts: &[String],
    ) -> Result<Bdd, BebopError> {
        let callee_len = self.scope_len(callee);
        // rename summary: entry bank -> nxt bank, current-globals -> aux
        let mut map: HashMap<u32, u32> = HashMap::new();
        for p in 0..callee_len {
            map.insert(Self::entry_var(p), Self::nxt_var(p));
        }
        for g in 0..self.n_globals {
            map.insert(Self::cur_var(g), Self::aux_var(g));
        }
        let sum = self.mgr.rename(summary, &map);
        let mut k = self.mgr.and(k1, sum);
        // drop the callee entry valuation
        let nxt_vars: Vec<u32> = (0..callee_len).map(Self::nxt_var).collect();
        k = self.mgr.exists(k, &nxt_vars);
        // move exit globals (aux bank) into the caller's current bank
        for g in 0..self.n_globals {
            let cur = Self::cur_var(g);
            let aux = Self::aux_var(g);
            k = self.mgr.exists(k, &[cur]);
            let c = self.mgr.var(cur);
            let a = self.mgr.var(aux);
            let eq = self.mgr.iff(c, a);
            k = self.mgr.and(k, eq);
            k = self.mgr.exists(k, &[aux]);
        }
        // move return values into destination variables
        let callee_rets = self.program.proc(callee).map(|p| p.n_returns).unwrap_or(0);
        for (j, d) in dsts.iter().enumerate() {
            let pd = self.position(caller, d)?;
            let cur = Self::cur_var(pd);
            let rv = self.ret_var(j);
            k = self.mgr.exists(k, &[cur]);
            let c = self.mgr.var(cur);
            let r = self.mgr.var(rv);
            let eq = self.mgr.iff(c, r);
            k = self.mgr.and(k, eq);
            k = self.mgr.exists(k, &[rv]);
        }
        // discard unconsumed return values
        if callee_rets > dsts.len() {
            let leftover: Vec<u32> = (dsts.len()..callee_rets).map(|j| self.ret_var(j)).collect();
            k = self.mgr.exists(k, &leftover);
        }
        Ok(k)
    }

    // -- result inspection ---------------------------------------------------

    /// The reachable states at `(proc, pc)` as cubes over variable names.
    ///
    /// Each cube is a partial assignment; variables absent from a cube may
    /// take either value.
    pub fn invariant_at(
        &mut self,
        analysis: &Analysis,
        proc: &str,
        pc: usize,
    ) -> Vec<Vec<(String, bool)>> {
        let Some(&pe) = analysis.path_edges.get(&(proc.to_string(), pc)) else {
            return Vec::new();
        };
        let scope_len = self.scope_len(proc);
        let entry_vars: Vec<u32> = (0..scope_len).map(Self::entry_var).collect();
        let states = self.mgr.exists(pe, &entry_vars);
        let scope = self.scopes[proc].clone();
        self.mgr
            .cubes(states)
            .into_iter()
            .map(|cube| {
                cube.into_iter()
                    .filter_map(|(v, val)| {
                        // current bank only
                        if v % 4 == 1 {
                            let pos = (v / 4) as usize;
                            scope.get(pos).map(|name| (name.clone(), val))
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// The reachable states at a label.
    pub fn invariant_at_label(
        &mut self,
        analysis: &Analysis,
        proc: &str,
        label: &str,
    ) -> Vec<Vec<(String, bool)>> {
        let Some(&pc) = self.flats[proc].labels.get(label) else {
            return Vec::new();
        };
        self.invariant_at(analysis, proc, pc)
    }

    /// True if `(proc, pc)` is reachable at all.
    pub fn reachable(&self, analysis: &Analysis, proc: &str, pc: usize) -> bool {
        analysis
            .path_edges
            .get(&(proc.to_string(), pc))
            .map(|&b| b != FALSE)
            .unwrap_or(false)
    }

    /// The flattened body of a procedure (for trace mapping).
    pub fn flat(&self, proc: &str) -> Option<&FlatProc> {
        self.flats.get(proc)
    }

    /// The underlying boolean program.
    pub fn program(&self) -> &BProgram {
        &self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp::parse_bp;

    fn analyze(src: &str) -> (Bebop, Analysis) {
        let p = parse_bp(src).unwrap();
        let mut b = Bebop::new(&p).unwrap();
        let a = b.analyze("main").unwrap();
        (b, a)
    }

    #[test]
    fn straight_line_safe() {
        let (_, a) = analyze("bool g; void main() { g = true; assert(g); }");
        assert!(!a.error_reachable());
    }

    #[test]
    fn unknown_value_can_fail() {
        let (_, a) = analyze("bool g; void main() { g = unknown(); assert(g); }");
        assert!(a.error_reachable());
    }

    #[test]
    fn assume_blocks_failure() {
        let (_, a) = analyze("bool g; void main() { g = unknown(); assume(g); assert(g); }");
        assert!(!a.error_reachable());
    }

    #[test]
    fn correlation_is_tracked() {
        // b = a; assert(a == b) — requires sets of vectors, not per-bit
        // independent analysis
        let src = r#"
            bool a, b;
            void main() {
                a = unknown();
                b = a;
                assert(!a || b);
                assert(!b || a);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn branch_conditions_filter() {
        let src = r#"
            bool g;
            void main() {
                g = unknown();
                if (g) { assert(g); } else { assert(!g); }
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn loops_reach_fixpoint() {
        let src = r#"
            bool g;
            void main() {
                g = false;
                while (*) { g = !g; }
                assert(g || !g);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn invariant_at_label_reports_states() {
        let src = r#"
            bool a, b;
            void main() {
                a = true;
                b = !a;
                L: skip;
            }
        "#;
        let (mut b, a) = analyze(src);
        let inv = b.invariant_at_label(&a, "main", "L");
        assert_eq!(inv.len(), 1);
        let cube = &inv[0];
        assert!(cube.contains(&("a".to_string(), true)));
        assert!(cube.contains(&("b".to_string(), false)));
    }

    #[test]
    fn calls_and_summaries() {
        let src = r#"
            bool g;
            bool id(x) { return x; }
            void main() {
                bool r;
                r = id(true);
                assert(r);
                r = id(false);
                assert(!r);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn summary_is_input_sensitive() {
        // f(x) = x: calling with both values must not conflate contexts
        let src = r#"
            bool neg(x) { return !x; }
            void main() {
                bool r;
                r = neg(true);
                assert(!r);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn globals_flow_through_calls() {
        let src = r#"
            bool g;
            void set() { g = true; }
            void main() {
                g = false;
                set();
                assert(g);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn recursion_terminates() {
        let src = r#"
            bool g;
            void rec(x) {
                if (*) { rec(!x); }
                g = x || !x;
            }
            void main() {
                rec(true);
                assert(g);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn multi_return_values() {
        let src = r#"
            bool<2> pair(x) { return x, !x; }
            void main() {
                bool a, b;
                a, b = pair(true);
                assert(a);
                assert(!b);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn enforce_prunes_states() {
        let src = r#"
            bool a, b;
            void main() {
                enforce !(a && b);
                a = unknown();
                b = unknown();
                assert(!a || !b);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn error_site_carries_location() {
        let (_, a) = analyze("bool g; void main() { g = unknown(); assert(g); }");
        assert_eq!(a.errors.len(), 1);
        assert_eq!(a.errors[0].proc, "main");
    }

    #[test]
    fn unreachable_code_stays_unreachable() {
        let src = r#"
            bool g;
            void main() {
                g = true;
                if (g) { skip; } else { assert(false); }
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }

    #[test]
    fn formals_do_not_leak_back() {
        // callee modifies its formal; caller's variable is unaffected
        let src = r#"
            bool g;
            void clobber(x) { x = !x; g = x; }
            void main() {
                bool mine;
                mine = true;
                clobber(mine);
                assert(mine);
                assert(!g);
            }
        "#;
        let (_, a) = analyze(src);
        assert!(!a.error_reachable());
    }
}
