//! Bebop: a symbolic model checker for boolean programs.
//!
//! Bebop computes, for every statement of a boolean program, the set of
//! reachable states — a set of bit vectors over the variables in scope —
//! using the interprocedural dataflow algorithm of Reps–Horwitz–Sagiv in
//! the style described by the paper ([5, 31, 28]): *path edges*
//! `⟨entry valuation, current valuation⟩` per node, *summary edges* per
//! procedure, and binary decision diagrams for all state sets and
//! transfer functions, over an explicit control-flow graph.
//!
//! The analysis answers:
//! * per-label invariants (§2.2's `(curr != NULL) && ...` at `L`);
//! * reachability of `assert` failures, with a hierarchical
//!   counterexample trace mapped back to originating C statements.
//!
//! # Example
//!
//! ```
//! use bp::parse_bp;
//! use bebop::Bebop;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_bp(
//!     "bool g; void main() { g = true; assert(g); }",
//! )?;
//! let mut bebop = Bebop::new(&program)?;
//! let analysis = bebop.analyze("main")?;
//! assert!(!analysis.error_reachable());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
pub mod trace;

pub use bdd::Manager;
pub use engine::{Analysis, Bebop, BebopError, ErrorSite};
pub use trace::{find_error_trace, BTrace, BTraceStep};
