//! Counterexample extraction.
//!
//! Once the symbolic analysis reports a reachable assertion failure, a
//! concrete failing execution of the boolean program is found by a
//! systematic depth-first search over the program's nondeterministic
//! choices, executed with the reference interpreter. The resulting trace
//! carries the originating C statement ids and branch directions, which
//! is exactly what Newton needs to test path feasibility in the C
//! program.

use bp::ast::BProgram;
use bp::interp::{BInterp, BOutcome, ChooseCtx, Chooser};
use cparse::ast::StmtId;

/// One step of a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BTraceStep {
    /// Procedure executing.
    pub proc: String,
    /// Instruction index within the flattened procedure.
    pub pc: usize,
    /// Originating C statement, if any.
    pub id: Option<StmtId>,
    /// For branches: direction taken.
    pub branch: Option<bool>,
    /// Boolean-variable valuation before the step (predicate names to
    /// values) — lets users read the abstract state along the trace.
    pub state: std::collections::HashMap<String, bool>,
}

/// A counterexample: a failing execution of the boolean program.
#[derive(Debug, Clone, Default)]
pub struct BTrace {
    /// The executed steps, in order.
    pub steps: Vec<BTraceStep>,
}

impl BTrace {
    /// The (C statement id, branch direction) decisions along the trace,
    /// in order — the input Newton replays against the C semantics.
    pub fn decisions(&self) -> Vec<(StmtId, bool)> {
        self.steps
            .iter()
            .filter_map(|s| match (s.id, s.branch) {
                (Some(id), Some(b)) => Some((id, b)),
                _ => None,
            })
            .collect()
    }

    /// The C statement ids touched by the trace, in order.
    pub fn statement_ids(&self) -> Vec<StmtId> {
        self.steps.iter().filter_map(|s| s.id).collect()
    }
}

/// A chooser that replays a scripted prefix of choices, then answers
/// `false` while recording how many choices were consumed.
struct ScriptedChooser {
    script: Vec<bool>,
    consumed: usize,
}

impl Chooser for ScriptedChooser {
    fn choose(&mut self, _ctx: &ChooseCtx) -> bool {
        let v = self.script.get(self.consumed).copied().unwrap_or(false);
        self.consumed += 1;
        v
    }
}

/// The result of one search execution.
enum SearchRun {
    /// An assertion failed: the counterexample.
    Failed(BTrace),
    /// No failure; carries how many choices the run consumed.
    Passed(usize),
}

/// Runs `program` from `main` resolving nondeterminism through
/// `chooser` and classifies the outcome. Returns the number of choices
/// consumed alongside pass/fail; `None` only on interpreter setup
/// errors.
fn run_once(
    program: &BProgram,
    main: &str,
    fuel: u64,
    chooser: &mut dyn Chooser,
) -> Option<SearchRun> {
    let mut interp = BInterp::new(program).ok()?;
    interp.fuel = fuel;
    let mut consumed = 0usize;
    let mut counting = CountingChooser {
        inner: chooser,
        consumed: &mut consumed,
    };
    // formals of the entry procedure are unconstrained: their values
    // are part of the searched choice string
    let n_formals = program.proc(main).map(|p| p.formals.len()).unwrap_or(0);
    let ctx = ChooseCtx {
        proc: main.to_string(),
        id: None,
        target: None,
        purpose: bp::interp::ChoosePurpose::InitialValue,
    };
    let args: Vec<bool> = (0..n_formals).map(|_| counting.choose(&ctx)).collect();
    let outcome = interp.run(main, args, &mut counting);
    match outcome {
        Ok(BOutcome::AssertViolated { .. }) => {
            // branch directions: C2bp encodes each C branch decision as
            // an `assume` carrying the arm (`branch` tag); those are the
            // authoritative C-semantic decisions. The raw boolean
            // `if (*)` direction is dropped (it is inverted for the
            // assert encoding).
            let mut flats = std::collections::HashMap::new();
            for p in &program.procs {
                if let Ok(f) = bp::flow::flatten_proc(p) {
                    flats.insert(p.name.clone(), f);
                }
            }
            let steps = interp
                .trace
                .iter()
                .map(|s| {
                    let branch = flats.get(&s.proc).and_then(|f| match f.instrs.get(s.pc) {
                        Some(bp::flow::BInstr::Assume { branch, .. }) => *branch,
                        _ => None,
                    });
                    BTraceStep {
                        proc: s.proc.clone(),
                        pc: s.pc,
                        id: s.id,
                        branch,
                        state: s.state.clone(),
                    }
                })
                .collect();
            Some(SearchRun::Failed(BTrace { steps }))
        }
        Ok(_) | Err(_) => Some(SearchRun::Passed(consumed)),
    }
}

/// Wraps a chooser to count how many choices a run consumed.
struct CountingChooser<'a> {
    inner: &'a mut dyn Chooser,
    consumed: &'a mut usize,
}

impl Chooser for CountingChooser<'_> {
    fn choose(&mut self, ctx: &ChooseCtx) -> bool {
        *self.consumed += 1;
        self.inner.choose(ctx)
    }
}

/// [`find_error_trace_with`] with the same budget for both strategies —
/// the drop-in form used by the CEGAR loop's defaults.
pub fn find_error_trace(
    program: &BProgram,
    main: &str,
    max_runs: u64,
    fuel: u64,
) -> Option<BTrace> {
    find_error_trace_with(program, main, max_runs, max_runs, fuel)
}

/// Returns `None` if no failure was found within the budgets — for
/// traces produced after Bebop has proved reachability this only
/// happens when the budgets are too small.
///
/// Two complementary deterministic strategies run in sequence. The
/// primary (`dfs_runs` executions) is a depth-first search over choice
/// strings, backtracking by flipping the last consumed `false` to
/// `true` — cheap and exact on programs whose error sits behind late
/// choices. When the error guard is an *early* choice followed by
/// nondeterministic loops, that DFS sinks its whole budget unrolling
/// the trailing loops first; for those programs a second pass
/// (`restart_runs` executions) draws every choice from a seeded
/// counter-derived stream, which hits an error path with probability
/// `2^-k` per run where `k` is the number of constrained choices
/// *before* the failing assertion — exactly the early-error case the
/// DFS is worst at. The fallback only executes once the primary budget
/// is spent, so programs the primary handles keep their exact traces.
pub fn find_error_trace_with(
    program: &BProgram,
    main: &str,
    dfs_runs: u64,
    restart_runs: u64,
    fuel: u64,
) -> Option<BTrace> {
    // primary: last-false-flipped DFS; `script` holds the fixed prefix,
    // runs extend it implicitly with `false`s
    let mut script: Vec<bool> = Vec::new();
    let mut exhausted_tree = false;
    for _ in 0..dfs_runs {
        let mut chooser = ScriptedChooser {
            script: script.clone(),
            consumed: 0,
        };
        match run_once(program, main, fuel, &mut chooser)? {
            SearchRun::Failed(trace) => return Some(trace),
            SearchRun::Passed(consumed) => {
                script.resize(consumed.min(256), false);
                while script.last() == Some(&true) {
                    script.pop();
                }
                let Some(last) = script.last_mut() else {
                    // the whole (truncated) tree is explored; if no run
                    // was cut off at 256 choices this is exhaustive
                    exhausted_tree = true;
                    break;
                };
                *last = true;
            }
        }
    }
    if exhausted_tree {
        return None;
    }
    // fallback: seeded random restarts (deterministic: the seed is the
    // run index)
    for run in 0..restart_runs {
        let mut chooser = bp::interp::SeededChooser::new(0x5eed_0000 + run);
        match run_once(program, main, fuel, &mut chooser)? {
            SearchRun::Failed(trace) => return Some(trace),
            SearchRun::Passed(_) => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp::parse_bp;

    #[test]
    fn finds_direct_failure() {
        let p = parse_bp("bool g; void main() { g = false; assert(g); }").unwrap();
        let t = find_error_trace(&p, "main", 100, 10_000).unwrap();
        assert!(!t.steps.is_empty());
    }

    #[test]
    fn finds_failure_behind_choices() {
        // failure requires choosing g = true then h = true
        let src = r#"
            bool g, h;
            void main() {
                g = unknown();
                h = unknown();
                if (g) {
                    if (h) { assert(false); }
                }
            }
        "#;
        let p = parse_bp(src).unwrap();
        let t = find_error_trace(&p, "main", 1000, 10_000).unwrap();
        // the failing run passes both branch instructions and the assert
        assert!(t.steps.len() >= 4);
    }

    #[test]
    fn random_fallback_beats_trailing_choice_blowup() {
        // the error guard is the FIRST choice, followed by ten unrelated
        // choices: the primary DFS flips from the end and needs > 2^10
        // runs to reach it, but a random restart hits `e = true` with
        // probability 1/2 per run
        let src = r#"
            bool e, a0, a1, a2, a3, a4, a5, a6, a7, a8, a9;
            void main() {
                e = unknown();
                a0 = unknown(); a1 = unknown(); a2 = unknown();
                a3 = unknown(); a4 = unknown(); a5 = unknown();
                a6 = unknown(); a7 = unknown(); a8 = unknown();
                a9 = unknown();
                assert(!e);
            }
        "#;
        let p = parse_bp(src).unwrap();
        // budget of 100 runs per strategy: far below the 1024 the
        // primary needs, plenty for the fallback
        let t = find_error_trace(&p, "main", 100, 10_000).unwrap();
        assert!(!t.steps.is_empty());
    }

    #[test]
    fn exhausted_choice_tree_skips_the_fallback() {
        // a safe program with a tiny choice tree: the DFS proves
        // exhaustion quickly and must not burn restart budget
        let src = r#"
            bool g;
            void main() {
                g = unknown();
                if (g) { } else { }
                assert(true);
            }
        "#;
        let p = parse_bp(src).unwrap();
        assert!(find_error_trace_with(&p, "main", 100, u64::MAX, 10_000).is_none());
    }

    #[test]
    fn respects_assumes() {
        // the only failing path is blocked by an assume
        let src = r#"
            bool g;
            void main() {
                g = unknown();
                assume(!g);
                if (g) { assert(false); }
            }
        "#;
        let p = parse_bp(src).unwrap();
        assert!(find_error_trace(&p, "main", 1000, 10_000).is_none());
    }

    #[test]
    fn reports_no_failure_for_safe_programs() {
        let p = parse_bp("bool g; void main() { g = true; assert(g); }").unwrap();
        assert!(find_error_trace(&p, "main", 1000, 10_000).is_none());
    }

    #[test]
    fn failure_through_calls() {
        let src = r#"
            bool g;
            bool flip(x) { return !x; }
            void main() {
                bool r;
                r = flip(false);
                if (r) { assert(false); }
            }
        "#;
        let p = parse_bp(src).unwrap();
        let t = find_error_trace(&p, "main", 1000, 10_000).unwrap();
        assert!(t.steps.iter().any(|s| s.proc == "flip"));
    }
}
