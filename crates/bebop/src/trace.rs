//! Counterexample extraction.
//!
//! Once the symbolic analysis reports a reachable assertion failure, a
//! concrete failing execution of the boolean program is found by a
//! systematic depth-first search over the program's nondeterministic
//! choices, executed with the reference interpreter. The resulting trace
//! carries the originating C statement ids and branch directions, which
//! is exactly what Newton needs to test path feasibility in the C
//! program.

use bp::ast::BProgram;
use bp::interp::{BInterp, BOutcome, ChooseCtx, Chooser};
use cparse::ast::StmtId;

/// One step of a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BTraceStep {
    /// Procedure executing.
    pub proc: String,
    /// Instruction index within the flattened procedure.
    pub pc: usize,
    /// Originating C statement, if any.
    pub id: Option<StmtId>,
    /// For branches: direction taken.
    pub branch: Option<bool>,
    /// Boolean-variable valuation before the step (predicate names to
    /// values) — lets users read the abstract state along the trace.
    pub state: std::collections::HashMap<String, bool>,
}

/// A counterexample: a failing execution of the boolean program.
#[derive(Debug, Clone, Default)]
pub struct BTrace {
    /// The executed steps, in order.
    pub steps: Vec<BTraceStep>,
}

impl BTrace {
    /// The (C statement id, branch direction) decisions along the trace,
    /// in order — the input Newton replays against the C semantics.
    pub fn decisions(&self) -> Vec<(StmtId, bool)> {
        self.steps
            .iter()
            .filter_map(|s| match (s.id, s.branch) {
                (Some(id), Some(b)) => Some((id, b)),
                _ => None,
            })
            .collect()
    }

    /// The C statement ids touched by the trace, in order.
    pub fn statement_ids(&self) -> Vec<StmtId> {
        self.steps.iter().filter_map(|s| s.id).collect()
    }
}

/// A chooser that replays a scripted prefix of choices, then answers
/// `false` while recording how many choices were consumed.
struct ScriptedChooser {
    script: Vec<bool>,
    consumed: usize,
}

impl Chooser for ScriptedChooser {
    fn choose(&mut self, _ctx: &ChooseCtx) -> bool {
        let v = self.script.get(self.consumed).copied().unwrap_or(false);
        self.consumed += 1;
        v
    }
}

/// Searches for a concrete failing execution of `program` starting at
/// `main`, exploring nondeterministic choices depth-first (at most
/// `max_runs` executions, each bounded by `fuel` steps).
///
/// Returns `None` if no failure was found within the budget — for traces
/// produced after Bebop has proved reachability this only happens when the
/// budget is too small.
pub fn find_error_trace(
    program: &BProgram,
    main: &str,
    max_runs: u64,
    fuel: u64,
) -> Option<BTrace> {
    // Depth-first search over binary choice strings. `script` holds the
    // fixed prefix; each run extends it implicitly with `false`s. On
    // completion without failure, backtrack: flip the last `false` that
    // was actually consumed to `true`.
    let mut script: Vec<bool> = Vec::new();
    for _ in 0..max_runs {
        let mut interp = BInterp::new(program).ok()?;
        interp.fuel = fuel;
        let mut chooser = ScriptedChooser {
            script: script.clone(),
            consumed: 0,
        };
        // formals of the entry procedure are unconstrained: their values
        // are part of the searched choice string
        let n_formals = program.proc(main).map(|p| p.formals.len()).unwrap_or(0);
        let ctx = ChooseCtx {
            proc: main.to_string(),
            id: None,
            target: None,
            purpose: bp::interp::ChoosePurpose::InitialValue,
        };
        let args: Vec<bool> = (0..n_formals).map(|_| chooser.choose(&ctx)).collect();
        let outcome = interp.run(main, args, &mut chooser);
        match outcome {
            Ok(BOutcome::AssertViolated { .. }) => {
                // branch directions: C2bp encodes each C branch decision as
                // an `assume` carrying the arm (`branch` tag); those are the
                // authoritative C-semantic decisions. The raw boolean
                // `if (*)` direction is dropped (it is inverted for the
                // assert encoding).
                let mut flats = std::collections::HashMap::new();
                for p in &program.procs {
                    if let Ok(f) = bp::flow::flatten_proc(p) {
                        flats.insert(p.name.clone(), f);
                    }
                }
                let steps = interp
                    .trace
                    .iter()
                    .map(|s| {
                        let branch = flats.get(&s.proc).and_then(|f| match f.instrs.get(s.pc) {
                            Some(bp::flow::BInstr::Assume { branch, .. }) => *branch,
                            _ => None,
                        });
                        BTraceStep {
                            proc: s.proc.clone(),
                            pc: s.pc,
                            id: s.id,
                            branch,
                            state: s.state.clone(),
                        }
                    })
                    .collect();
                return Some(BTrace { steps });
            }
            Ok(_) | Err(_) => {
                // backtrack: extend script to what was consumed (filled
                // with false), then flip trailing trues off and the last
                // false to true
                let consumed = chooser.consumed.min(256);
                script.resize(consumed, false);
                while script.last() == Some(&true) {
                    script.pop();
                }
                let Some(last) = script.last_mut() else {
                    return None; // whole tree explored
                };
                *last = true;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bp::parse_bp;

    #[test]
    fn finds_direct_failure() {
        let p = parse_bp("bool g; void main() { g = false; assert(g); }").unwrap();
        let t = find_error_trace(&p, "main", 100, 10_000).unwrap();
        assert!(!t.steps.is_empty());
    }

    #[test]
    fn finds_failure_behind_choices() {
        // failure requires choosing g = true then h = true
        let src = r#"
            bool g, h;
            void main() {
                g = unknown();
                h = unknown();
                if (g) {
                    if (h) { assert(false); }
                }
            }
        "#;
        let p = parse_bp(src).unwrap();
        let t = find_error_trace(&p, "main", 1000, 10_000).unwrap();
        // the failing run passes both branch instructions and the assert
        assert!(t.steps.len() >= 4);
    }

    #[test]
    fn respects_assumes() {
        // the only failing path is blocked by an assume
        let src = r#"
            bool g;
            void main() {
                g = unknown();
                assume(!g);
                if (g) { assert(false); }
            }
        "#;
        let p = parse_bp(src).unwrap();
        assert!(find_error_trace(&p, "main", 1000, 10_000).is_none());
    }

    #[test]
    fn reports_no_failure_for_safe_programs() {
        let p = parse_bp("bool g; void main() { g = true; assert(g); }").unwrap();
        assert!(find_error_trace(&p, "main", 1000, 10_000).is_none());
    }

    #[test]
    fn failure_through_calls() {
        let src = r#"
            bool g;
            bool flip(x) { return !x; }
            void main() {
                bool r;
                r = flip(false);
                if (r) { assert(false); }
            }
        "#;
        let p = parse_bp(src).unwrap();
        let t = find_error_trace(&p, "main", 1000, 10_000).unwrap();
        assert!(t.steps.iter().any(|s| s.proc == "flip"));
    }
}
