//! Differential property test: the symbolic model checker against the
//! nondeterministic reference interpreter.
//!
//! For random boolean programs, every location and state the interpreter
//! visits (under many random choice resolutions) must be covered by
//! Bebop's path edges, and any assertion violation the interpreter
//! observes must be reported reachable by Bebop.

use bebop::Bebop;
use bp::ast::{BExpr, BProc, BProgram, BStmt};
use bp::interp::{BInterp, BOutcome, SeededChooser};
use testutil::{run_cases, Rng};

/// Statement recipe (rendered into a [`BStmt`]).
#[derive(Debug, Clone)]
enum S {
    AssignVar(usize, E),
    AssignUnknown(usize),
    Assume(E),
    Assert(E),
    If(E, Vec<S>, Vec<S>),
    While(Vec<S>),
    CallHelper(usize, E),
}

#[derive(Debug, Clone)]
enum E {
    Const(bool),
    Var(usize),
    Not(Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
}

const VARS: [&str; 3] = ["g0", "g1", "g2"];

fn bexpr(e: &E) -> BExpr {
    match e {
        E::Const(b) => BExpr::Const(*b),
        E::Var(i) => BExpr::var(VARS[*i % 3]),
        E::Not(x) => bexpr(x).negate(),
        E::And(a, b) => BExpr::and([bexpr(a), bexpr(b)]),
        E::Or(a, b) => BExpr::or([bexpr(a), bexpr(b)]),
    }
}

fn bstmt(s: &S) -> BStmt {
    match s {
        S::AssignVar(i, e) => BStmt::Assign {
            id: None,
            targets: vec![VARS[*i % 3].into()],
            values: vec![bexpr(e)],
        },
        S::AssignUnknown(i) => BStmt::Assign {
            id: None,
            targets: vec![VARS[*i % 3].into()],
            values: vec![BExpr::unknown()],
        },
        S::Assume(e) => BStmt::Assume {
            id: None,
            branch: None,
            cond: bexpr(e),
        },
        S::Assert(e) => BStmt::Assert {
            id: None,
            cond: bexpr(e),
        },
        S::If(c, t, f) => BStmt::If {
            id: None,
            cond: bexpr(c),
            then_branch: Box::new(BStmt::Seq(t.iter().map(bstmt).collect())),
            else_branch: Box::new(BStmt::Seq(f.iter().map(bstmt).collect())),
        },
        S::While(body) => BStmt::While {
            id: None,
            cond: BExpr::Nondet,
            body: Box::new(BStmt::Seq(body.iter().map(bstmt).collect())),
        },
        S::CallHelper(i, arg) => BStmt::Call {
            id: None,
            dsts: vec![VARS[*i % 3].into()],
            proc: "helper".into(),
            args: vec![bexpr(arg)],
        },
    }
}

fn gen_expr(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.ratio(1, 3) {
        return if rng.gen_bool() {
            E::Const(rng.gen_bool())
        } else {
            E::Var(rng.index(3))
        };
    }
    match rng.index(3) {
        0 => E::Not(Box::new(gen_expr(rng, depth - 1))),
        1 => E::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => E::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

fn gen_leaf(rng: &mut Rng) -> S {
    match rng.index(5) {
        0 => S::AssignVar(rng.index(3), gen_expr(rng, 2)),
        1 => S::AssignUnknown(rng.index(3)),
        2 => S::Assume(gen_expr(rng, 2)),
        3 => S::Assert(gen_expr(rng, 2)),
        _ => S::CallHelper(rng.index(3), gen_expr(rng, 2)),
    }
}

fn gen_stmts(rng: &mut Rng, depth: u32) -> Vec<S> {
    let n = rng.index(3) + 1;
    (0..n)
        .map(|_| {
            if depth == 0 {
                gen_leaf(rng)
            } else {
                match rng.index(7) {
                    0..=4 => gen_leaf(rng),
                    5 => S::If(
                        gen_expr(rng, 2),
                        gen_stmts(rng, depth - 1),
                        gen_stmts(rng, depth - 1),
                    ),
                    _ => S::While(gen_stmts(rng, depth - 1)),
                }
            }
        })
        .collect()
}

fn build_program(stmts: &[S]) -> BProgram {
    BProgram {
        globals: VARS.iter().map(|v| v.to_string()).collect(),
        procs: vec![
            BProc {
                name: "main".into(),
                formals: vec![],
                n_returns: 0,
                locals: vec![],
                enforce: None,
                body: BStmt::Seq(stmts.iter().map(bstmt).collect()),
            },
            BProc {
                name: "helper".into(),
                formals: vec!["x".into()],
                n_returns: 1,
                locals: vec![],
                enforce: None,
                body: BStmt::Seq(vec![
                    BStmt::If {
                        id: None,
                        cond: BExpr::var("x"),
                        then_branch: Box::new(BStmt::Assign {
                            id: None,
                            targets: vec!["g2".into()],
                            values: vec![BExpr::var("x")],
                        }),
                        else_branch: Box::new(BStmt::Skip),
                    },
                    BStmt::Return {
                        id: None,
                        values: vec![BExpr::var("x").negate()],
                    },
                ]),
            },
        ],
    }
}

#[test]
fn interpreter_behaviors_are_covered_by_bebop() {
    run_cases(
        "interpreter_behaviors_are_covered_by_bebop",
        48,
        |rng| gen_stmts(rng, 2),
        |stmts| {
            let program = build_program(stmts);
            let mut checker = Bebop::new(&program).expect("bebop setup");
            let analysis = checker.analyze("main").expect("analysis");
            let mut interp_error = false;
            for seed in 0..24u64 {
                let mut interp = BInterp::new(&program).expect("interp");
                interp.fuel = 20_000;
                let mut chooser = SeededChooser::new(seed);
                let outcome = match interp.run("main", vec![], &mut chooser) {
                    Ok(o) => o,
                    Err(_) => continue, // out of fuel: ignore this resolution
                };
                match outcome {
                    BOutcome::AssertViolated { .. } => interp_error = true,
                    BOutcome::Completed | BOutcome::AssumeViolated { .. } => {}
                }
                // every visited location is symbolically reachable, and the
                // visited state satisfies the invariant there
                for step in &interp.trace {
                    assert!(
                        checker.reachable(&analysis, &step.proc, step.pc),
                        "interpreter visited unreachable {}:{}",
                        step.proc,
                        step.pc
                    );
                    let cubes = checker.invariant_at(&analysis, &step.proc, step.pc);
                    let satisfied = cubes.iter().any(|cube| {
                        cube.iter().all(|(name, val)| {
                            step.state.get(name).map(|v| v == val).unwrap_or(false)
                        })
                    });
                    assert!(
                        satisfied,
                        "state {:?} at {}:{} not in invariant {:?}",
                        step.state, step.proc, step.pc, cubes
                    );
                }
            }
            if interp_error {
                assert!(
                    analysis.error_reachable(),
                    "interpreter failed an assert Bebop calls unreachable"
                );
            }
        },
    );
}
