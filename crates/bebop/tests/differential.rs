//! Differential property test: the symbolic model checker against the
//! nondeterministic reference interpreter.
//!
//! For random boolean programs, every location and state the interpreter
//! visits (under many random choice resolutions) must be covered by
//! Bebop's path edges, and any assertion violation the interpreter
//! observes must be reported reachable by Bebop.

use bebop::Bebop;
use bp::ast::{BExpr, BProc, BProgram, BStmt};
use bp::interp::{BInterp, BOutcome, SeededChooser};
use proptest::prelude::*;

/// Statement recipe (rendered into a [`BStmt`]).
#[derive(Debug, Clone)]
enum S {
    AssignVar(usize, E),
    AssignUnknown(usize),
    Assume(E),
    Assert(E),
    If(E, Vec<S>, Vec<S>),
    While(Vec<S>),
    CallHelper(usize, E),
}

#[derive(Debug, Clone)]
enum E {
    Const(bool),
    Var(usize),
    Not(Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
}

const VARS: [&str; 3] = ["g0", "g1", "g2"];

fn bexpr(e: &E) -> BExpr {
    match e {
        E::Const(b) => BExpr::Const(*b),
        E::Var(i) => BExpr::var(VARS[*i % 3]),
        E::Not(x) => bexpr(x).negate(),
        E::And(a, b) => BExpr::and([bexpr(a), bexpr(b)]),
        E::Or(a, b) => BExpr::or([bexpr(a), bexpr(b)]),
    }
}

fn bstmt(s: &S) -> BStmt {
    match s {
        S::AssignVar(i, e) => BStmt::Assign {
            id: None,
            targets: vec![VARS[*i % 3].into()],
            values: vec![bexpr(e)],
        },
        S::AssignUnknown(i) => BStmt::Assign {
            id: None,
            targets: vec![VARS[*i % 3].into()],
            values: vec![BExpr::unknown()],
        },
        S::Assume(e) => BStmt::Assume {
            id: None,
            branch: None,
            cond: bexpr(e),
        },
        S::Assert(e) => BStmt::Assert {
            id: None,
            cond: bexpr(e),
        },
        S::If(c, t, f) => BStmt::If {
            id: None,
            cond: bexpr(c),
            then_branch: Box::new(BStmt::Seq(t.iter().map(bstmt).collect())),
            else_branch: Box::new(BStmt::Seq(f.iter().map(bstmt).collect())),
        },
        S::While(body) => BStmt::While {
            id: None,
            cond: BExpr::Nondet,
            body: Box::new(BStmt::Seq(body.iter().map(bstmt).collect())),
        },
        S::CallHelper(i, arg) => BStmt::Call {
            id: None,
            dsts: vec![VARS[*i % 3].into()],
            proc: "helper".into(),
            args: vec![bexpr(arg)],
        },
    }
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(E::Const),
        (0usize..3).prop_map(E::Var),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| E::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn stmt_strategy(depth: u32) -> BoxedStrategy<Vec<S>> {
    let leaf = prop_oneof![
        ((0usize..3), expr_strategy()).prop_map(|(i, e)| S::AssignVar(i, e)),
        (0usize..3).prop_map(S::AssignUnknown),
        expr_strategy().prop_map(S::Assume),
        expr_strategy().prop_map(S::Assert),
        ((0usize..3), expr_strategy()).prop_map(|(i, e)| S::CallHelper(i, e)),
    ];
    if depth == 0 {
        prop::collection::vec(leaf, 1..4).boxed()
    } else {
        let inner = stmt_strategy(depth - 1);
        let node = prop_oneof![
            ((0usize..3), expr_strategy()).prop_map(|(i, e)| S::AssignVar(i, e)),
            (0usize..3).prop_map(S::AssignUnknown),
            expr_strategy().prop_map(S::Assume),
            expr_strategy().prop_map(S::Assert),
            ((0usize..3), expr_strategy()).prop_map(|(i, e)| S::CallHelper(i, e)),
            (expr_strategy(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| S::If(c, t, f)),
            inner.prop_map(S::While),
        ];
        prop::collection::vec(node, 1..4).boxed()
    }
}

fn build_program(stmts: &[S]) -> BProgram {
    BProgram {
        globals: VARS.iter().map(|v| v.to_string()).collect(),
        procs: vec![
            BProc {
                name: "main".into(),
                formals: vec![],
                n_returns: 0,
                locals: vec![],
                enforce: None,
                body: BStmt::Seq(stmts.iter().map(bstmt).collect()),
            },
            BProc {
                name: "helper".into(),
                formals: vec!["x".into()],
                n_returns: 1,
                locals: vec![],
                enforce: None,
                body: BStmt::Seq(vec![
                    BStmt::If {
                        id: None,
                        cond: BExpr::var("x"),
                        then_branch: Box::new(BStmt::Assign {
                            id: None,
                            targets: vec!["g2".into()],
                            values: vec![BExpr::var("x")],
                        }),
                        else_branch: Box::new(BStmt::Skip),
                    },
                    BStmt::Return {
                        id: None,
                        values: vec![BExpr::var("x").negate()],
                    },
                ]),
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn interpreter_behaviors_are_covered_by_bebop(stmts in stmt_strategy(2)) {
        let program = build_program(&stmts);
        let mut checker = Bebop::new(&program).expect("bebop setup");
        let analysis = checker.analyze("main").expect("analysis");
        let mut interp_error = false;
        for seed in 0..24u64 {
            let mut interp = BInterp::new(&program).expect("interp");
            interp.fuel = 20_000;
            let mut chooser = SeededChooser::new(seed);
            let outcome = match interp.run("main", vec![], &mut chooser) {
                Ok(o) => o,
                Err(_) => continue, // out of fuel: ignore this resolution
            };
            match outcome {
                BOutcome::AssertViolated { .. } => interp_error = true,
                BOutcome::Completed | BOutcome::AssumeViolated { .. } => {}
            }
            // every visited location is symbolically reachable, and the
            // visited state satisfies the invariant there
            for step in &interp.trace {
                prop_assert!(
                    checker.reachable(&analysis, &step.proc, step.pc),
                    "interpreter visited unreachable {}:{}",
                    step.proc,
                    step.pc
                );
                let cubes = checker.invariant_at(&analysis, &step.proc, step.pc);
                let satisfied = cubes.iter().any(|cube| {
                    cube.iter().all(|(name, val)| {
                        step.state.get(name).map(|v| v == val).unwrap_or(false)
                    })
                });
                prop_assert!(
                    satisfied,
                    "state {:?} at {}:{} not in invariant {:?}",
                    step.state, step.proc, step.pc, cubes
                );
            }
        }
        if interp_error {
            prop_assert!(
                analysis.error_reachable(),
                "interpreter failed an assert Bebop calls unreachable"
            );
        }
    }
}
