//! Criterion benchmark for the §5.2 optimization ablations on
//! `partition` (each configuration timed separately).

use bench::run_toy;
use c2bp::{C2bpOptions, CubeOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-partition");
    group.sample_size(10);
    let configs: Vec<(&str, C2bpOptions)> = vec![
        ("paper", C2bpOptions::paper_defaults()),
        (
            "no-coi",
            C2bpOptions {
                cubes: CubeOptions {
                    cone_of_influence: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "no-syntax",
            C2bpOptions {
                cubes: CubeOptions {
                    syntactic_fast_paths: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "k-unbounded",
            C2bpOptions {
                cubes: CubeOptions {
                    max_cube_len: None,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
    ];
    for (name, options) in configs {
        group.bench_function(name, |b| {
            b.iter(|| run_toy("partition", "partition", &options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
