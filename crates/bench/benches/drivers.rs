//! Criterion benchmark for Table 1 (the full SLAM loop per driver).

use bench::{run_driver, DRIVERS};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_drivers(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for (stem, entry, prop) in DRIVERS {
        group.bench_function(stem, |b| b.iter(|| run_driver(stem, entry, prop)));
    }
    group.bench_function("flopnew-bug", |b| {
        b.iter(|| run_driver("flopnew", "FlopnewReadWrite", "irp"))
    });
    group.finish();
}

criterion_group!(benches, bench_drivers);
criterion_main!(benches);
