//! Criterion benchmark for Table 2 (C2bp on the array/heap programs).
//!
//! `reverse` is excluded from the timed loop (it takes ~10s per
//! abstraction; run `--bin table2` for its row) so the suite completes in
//! reasonable time.

use bench::run_toy;
use c2bp::C2bpOptions;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_toys(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for (stem, entry) in [("partition", "partition"), ("listfind", "listfind")] {
        group.bench_function(stem, |b| {
            b.iter(|| run_toy(stem, entry, &C2bpOptions::paper_defaults()))
        });
    }
    group.finish();

    let mut slow = c.benchmark_group("table2-slow");
    slow.sample_size(10);
    for (stem, entry) in [("kmp", "kmp"), ("qsort", "qsort_range")] {
        slow.bench_function(stem, |b| {
            b.iter(|| run_toy(stem, entry, &C2bpOptions::paper_defaults()))
        });
    }
    slow.finish();
}

criterion_group!(benches, bench_toys);
criterion_main!(benches);
