//! The §5.2 optimization study: prover calls with each C2bp optimization
//! toggled, on `partition` (precision-preserving ones must not change the
//! outcome) and `qsort` (where the cube-length cap k matters).
//!
//! ```sh
//! cargo run --release -p bench --bin ablation [-- --jobs N] [--json <path>]
//! ```
fn main() {
    let jobs = bench::jobs_from_args();
    let mut all_rows = Vec::new();
    for (stem, entry) in [("partition", "partition"), ("qsort", "qsort_range")] {
        let rows = bench::ablation_rows(stem, entry, jobs);
        print!(
            "{}",
            bench::render(&rows, &format!("§5.2 ablations on `{stem}`"))
        );
        println!();
        all_rows.extend(rows);
    }
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::rows(&all_rows));
    }
}
