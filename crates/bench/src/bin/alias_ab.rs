//! Alias-precision A/B: every corpus driver run through the full CEGAR
//! loop under both points-to analyses — the coarse Steensgaard-style
//! unification (`--alias=unify` in the CLIs) and the field-sensitive
//! inclusion analysis (`--alias=inclusion`, the default) — reporting
//! per-driver May-pair counts, Morris-axiom alias-disjunct counts,
//! prover-call deltas, and wall-clock times. Each mode additionally runs
//! at two worker counts. Exits nonzero if the modes diverge on verdict
//! or final predicates, if either mode is scheduling-dependent, or if
//! any inclusion points-to set is not a subset of the corresponding
//! unification set (a soundness violation, not a statistic).
//!
//! ```sh
//! cargo run --release -p bench --bin alias_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--smoke` restricts to one fast driver for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let jobs = match bench::jobs_from_args() {
        // the harness pairs each run with an alternate worker count, so
        // it needs an explicit baseline rather than deferring to C2BP_JOBS
        0 => 1,
        j => j,
    };
    let smoke = bench::flag_in_args("--smoke");
    let rows = bench::alias_rows(jobs, smoke);
    print!(
        "{}",
        bench::render_alias(
            &rows,
            "Alias precision A/B — unification vs field-sensitive inclusion (full loop)"
        )
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::alias_rows(&rows));
    }
    if rows.iter().all(|r| r.identical && r.subset_ok) {
        ExitCode::SUCCESS
    } else {
        eprintln!("alias_ab: FAIL — alias modes diverged or a subset violation was found");
        ExitCode::FAILURE
    }
}
