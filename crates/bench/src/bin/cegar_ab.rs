//! Cross-iteration reuse A/B: every multi-iteration corpus driver run
//! through the full CEGAR loop twice — with the reuse session (the
//! default: persistent prover cache, memoized transfer functions,
//! retained BDD arena) and from scratch (`--no-reuse` in the `slam`
//! CLI) — reporting per-iteration prover calls, reused units, cache hit
//! rates, and wall-clock times, and verifying the two modes produce
//! byte-identical boolean programs at every iteration, the same verdict,
//! and the same final predicate set. Each mode additionally runs at two
//! worker counts to check the deterministic counters are
//! scheduling-independent. Exits nonzero if any run pair diverges.
//!
//! ```sh
//! cargo run --release -p bench --bin cegar_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--smoke` restricts to one fast driver for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let jobs = match bench::jobs_from_args() {
        // the harness pairs each run with an alternate worker count, so
        // it needs an explicit baseline rather than deferring to C2BP_JOBS
        0 => 1,
        j => j,
    };
    let smoke = bench::flag_in_args("--smoke");
    let rows = bench::cegar_rows(jobs, smoke);
    print!(
        "{}",
        bench::render_cegar(
            &rows,
            "CEGAR reuse A/B — Table 1 drivers plus `flopnew` and `retry` (full loop)"
        )
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::cegar_rows(&rows));
    }
    if rows.iter().all(|r| r.identical) {
        ExitCode::SUCCESS
    } else {
        eprintln!("cegar_ab: FAIL — reuse diverged from the from-scratch baseline");
        ExitCode::FAILURE
    }
}
