//! Cube-engine A/B: every Table 1 driver (plus the buggy driver and the
//! seeded `retry` run) and a sweep of generated counter-shape drivers
//! run through the full CEGAR loop under both cube engines — the
//! paper's superset-pruned search and the AllSAT model-enumeration
//! engine — reporting prover calls, session solves, core-minimization
//! solves, and wall-clock per arm, followed by the predicate-count
//! scaling sweep (one chain-predicate `F_V` goal at k = 4..16).
//!
//! Exit status encodes the acceptance gates:
//! * both arms of every program must agree exactly — byte-identical
//!   per-iteration boolean programs, same verdict (which must also
//!   match ground truth), same final predicates — and every sweep
//!   point must agree where the search arm ran;
//! * enumeration must strictly lower the prover-call count on `floppy`
//!   and on the counter family in aggregate;
//! * the enumerate arm must not regress Table 1 wall-clock by more
//!   than 5% in aggregate (full runs only — single smoke timings are
//!   too noisy to gate on).
//!
//! ```sh
//! cargo run --release -p bench --bin enum_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--smoke` restricts to one driver, one counter pair, and k <= 6 for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let jobs = match bench::jobs_from_args() {
        0 => 1,
        j => j,
    };
    let smoke = bench::flag_in_args("--smoke");
    let rows = bench::enum_rows(jobs, smoke);
    print!(
        "{}",
        bench::render_enum(
            &rows,
            "Cube-engine A/B — search vs AllSAT enumeration (full loop)"
        )
    );
    let (max_k, search_cap) = if smoke { (6, 6) } else { (16, 10) };
    let sweep = bench::sweep_rows(max_k, search_cap);
    println!();
    print!(
        "{}",
        bench::render_sweep(
            &sweep,
            search_cap,
            "Predicate-count scaling — one F_V goal over chain predicates x < 1..k"
        )
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::enum_report(&rows, &sweep));
    }
    let mut ok = true;
    for r in &rows {
        if !r.identical || !r.truth_ok {
            eprintln!(
                "enum_ab: FAIL — {} diverged across engines or missed ground truth",
                r.program
            );
            ok = false;
        }
    }
    for s in &sweep {
        if !s.identical {
            eprintln!("enum_ab: FAIL — sweep k={} diverged across engines", s.k);
            ok = false;
        }
    }
    // enumeration must win where the issue promises: the cone-heavy
    // floppy driver and the counter family in aggregate
    if let Some(floppy) = rows.iter().find(|r| r.program == "floppy") {
        if floppy.enum_prover >= floppy.search_prover {
            eprintln!(
                "enum_ab: FAIL — floppy prover calls did not drop: {} -> {}",
                floppy.search_prover, floppy.enum_prover
            );
            ok = false;
        }
    }
    let counter: Vec<&bench::EnumRow> = rows.iter().filter(|r| r.group == "counter").collect();
    let counter_search: u64 = counter.iter().map(|r| r.search_prover).sum();
    let counter_enum: u64 = counter.iter().map(|r| r.enum_prover).sum();
    if !counter.is_empty() {
        println!(
            "counter family: {counter_search} -> {counter_enum} prover calls ({:.1}% reduction)",
            (1.0 - counter_enum as f64 / counter_search.max(1) as f64) * 100.0
        );
        if counter_enum >= counter_search {
            eprintln!("enum_ab: FAIL — counter-family prover calls did not drop");
            ok = false;
        }
    }
    if !smoke {
        let table1: Vec<&bench::EnumRow> = rows.iter().filter(|r| r.group == "table1").collect();
        let search_secs: f64 = table1.iter().map(|r| r.search_secs).sum();
        let enum_secs: f64 = table1.iter().map(|r| r.enum_secs).sum();
        println!("table 1 wall-clock: {search_secs:.2}s search vs {enum_secs:.2}s enumerate");
        if enum_secs > search_secs * 1.05 {
            eprintln!(
                "enum_ab: FAIL — Table 1 wall-clock regressed more than 5%: \
                 {search_secs:.2}s -> {enum_secs:.2}s"
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
