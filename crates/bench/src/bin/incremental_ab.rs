//! Incremental-session A/B: every corpus program abstracted twice — with
//! the persistent prover sessions (the default) and solving every cube
//! from scratch (`--no-incremental` in the CLIs) — reporting wall-clock
//! times and verifying the outputs and deterministic counters agree
//! exactly. Exits nonzero if any run pair diverges.
//!
//! ```sh
//! cargo run --release -p bench --bin incremental_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--smoke` restricts to two fast toys for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let jobs = bench::jobs_from_args();
    let smoke = bench::flag_in_args("--smoke");
    let mut rows = bench::incremental_toy_rows(jobs, smoke);
    print!(
        "{}",
        bench::render_incremental(
            &rows,
            "Incremental A/B — Table 2 programs plus `backoff` (single abstraction)"
        )
    );
    if !smoke {
        println!();
        let drivers = bench::incremental_driver_rows(jobs);
        print!(
            "{}",
            bench::render_incremental(
                &drivers,
                "Incremental A/B — Table 1 drivers plus `retry` (full CEGAR loop)"
            )
        );
        rows.extend(drivers);
    }
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::inc_rows(&rows));
    }
    if rows.iter().all(|r| r.identical) {
        ExitCode::SUCCESS
    } else {
        eprintln!("incremental: FAIL — some runs diverged from the from-scratch baseline");
        ExitCode::FAILURE
    }
}
