//! The matrix regression wall: (spec family × generated driver ×
//! {reuse on/off} × {1,4 workers}) through `slam::verify`, every verdict
//! checked against the generator's ground truth.
//!
//! ```sh
//! # ci smoke subset: fixed seeds, two configs, exits nonzero on any
//! # verdict mismatch
//! cargo run --release -p bench --bin matrix -- --smoke --json BENCH_matrix.json
//!
//! # the full wall: 504 (spec, driver) pairs × 4 configs = 2016 runs
//! cargo run --release -p bench --bin matrix -- --full \
//!     --json BENCH_matrix_full.json --md MATRIX.md
//! ```
//!
//! Defaults to `--smoke`. `--md <path>` writes the markdown report next
//! to the JSON; without it the report goes to stdout.

use bench::matrix::{
    full_seeds, render_json, render_markdown, run_matrix, smoke_seeds, FULL_CONFIGS, SMOKE_CONFIGS,
};
use std::path::PathBuf;

fn path_after_flag(flag: &str) -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == flag {
            match iter.next() {
                Some(p) => return Some(PathBuf::from(p)),
                None => {
                    eprintln!("usage: {flag} <path>");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

fn main() {
    let full = bench::flag_in_args("--full");
    let (seeds, configs, title) = if full {
        (full_seeds(), &FULL_CONFIGS[..], "Matrix wall (full)")
    } else {
        (smoke_seeds(), &SMOKE_CONFIGS[..], "Matrix wall (smoke)")
    };
    let report = run_matrix(&seeds, configs, false);
    let md = render_markdown(&report, title);
    match path_after_flag("--md") {
        Some(path) => bench::write_json(&path, &md),
        None => print!("{md}"),
    }
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &render_json(&report));
    }
    if report.mismatches > 0 {
        eprintln!(
            "matrix: {} cell(s) disagree with ground truth",
            report.mismatches
        );
        std::process::exit(1);
    }
    eprintln!(
        "matrix: {} cells over {} (spec, driver) pairs, all verdicts agree",
        report.cells.len(),
        report.drivers
    );
}
