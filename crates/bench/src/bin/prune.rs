//! Predicate-liveness pruning A/B: every Table 1 and Table 2 program
//! abstracted with the paper's every-update engine and with pruning on,
//! reporting the prover-call reduction. The differential test suite
//! separately proves the two abstractions are semantically identical.
//!
//! ```sh
//! cargo run --release -p bench --bin prune [-- --jobs N] [--json <path>]
//! ```
fn main() {
    let jobs = bench::jobs_from_args();
    let toys = bench::table2_prune_rows(jobs);
    print!(
        "{}",
        bench::render_prune(&toys, "Pruning A/B — Table 2 programs (single abstraction)")
    );
    println!();
    let drivers = bench::table1_prune_rows(jobs);
    print!(
        "{}",
        bench::render_prune(
            &drivers,
            "Pruning A/B — Table 1 drivers (prover calls summed over CEGAR iterations)"
        )
    );
    if let Some(path) = bench::json_path_from_args() {
        let all: Vec<bench::PruneRow> = toys.into_iter().chain(drivers).collect();
        bench::write_json(&path, &bench::json::prune_rows(&all));
    }
}
