//! Serve A/B: the whole corpus — Table 1 drivers, the buggy driver,
//! and the generated counter families — run twice through the
//! verification-service scheduler against one on-disk store: once cold
//! (empty store) and once warm (store reopened by a fresh scheduler,
//! exactly what a second `slam-serve` process sees). Reports per-job
//! prover calls, hydrated/replayed memo counts, and batch throughput
//! plus cache hit rates per temperature.
//!
//! Exit status encodes the acceptance gates:
//! * cold and warm must agree exactly on every job — byte-identical
//!   per-iteration boolean programs, same verdict (which must also
//!   match ground truth), same final predicates;
//! * no job's warm run may issue more prover calls than its cold run;
//! * on the reuse-heavy generated counter families the warm batch must
//!   issue at least 50% fewer prover calls in aggregate, and the whole
//!   batch must hit the same bar (the ISSUE 9 acceptance threshold).
//!
//! ```sh
//! cargo run --release -p bench --bin serve_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--jobs` sets the scheduler's worker count (default 2);
//! `--smoke` restricts to one driver and one counter pair for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let workers = match bench::jobs_from_args() {
        0 => 2,
        j => j,
    };
    let smoke = bench::flag_in_args("--smoke");
    let (rows, totals) = bench::serve_ab(workers, smoke);
    print!(
        "{}",
        bench::render_serve(
            &rows,
            &totals,
            "Serve A/B — cold vs warm store through the scheduler"
        )
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::serve_report(&rows, &totals));
    }
    let mut ok = true;
    for r in &rows {
        if !r.identical || !r.truth_ok {
            eprintln!(
                "serve_ab: FAIL — {} diverged across temperatures or missed ground truth",
                r.name
            );
            ok = false;
        }
        if r.warm_prover > r.cold_prover {
            eprintln!(
                "serve_ab: FAIL — {} warm prover calls rose: {} -> {}",
                r.name, r.cold_prover, r.warm_prover
            );
            ok = false;
        }
    }
    let gate = |label: &str, cold: u64, warm: u64, ok: &mut bool| {
        println!(
            "{label}: {cold} -> {warm} prover calls ({:.1}% reduction)",
            (1.0 - warm as f64 / cold.max(1) as f64) * 100.0
        );
        if warm * 2 > cold {
            eprintln!("serve_ab: FAIL — {label} warm prover calls did not drop by >= 50%");
            *ok = false;
        }
    };
    let counter: Vec<&bench::ServeRow> = rows.iter().filter(|r| r.group == "counter").collect();
    gate(
        "counter family",
        counter.iter().map(|r| r.cold_prover).sum(),
        counter.iter().map(|r| r.warm_prover).sum(),
        &mut ok,
    );
    gate(
        "whole batch",
        totals.cold_prover,
        totals.warm_prover,
        &mut ok,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
