//! Slicing + interval-oracle A/B: every Table 1 driver and a sweep of
//! generated counter-shape drivers run through the full CEGAR loop
//! under all four {slice, intervals} × {on, off} configurations,
//! reporting prover calls per cell, wall-clock for the corner cells,
//! slicer drop counts, and numeric-oracle hits.
//!
//! Exit status encodes the acceptance gates:
//! * every cell of every program must agree on verdict and final
//!   predicates, with the oracle leaving boolean programs byte-identical
//!   for a fixed slicing arm;
//! * every verdict must match its known ground truth (the generator's
//!   constructive truth for counter drivers, the documented expected
//!   verdict for Table 1);
//! * the two passes together must remove at least 20% of the counter
//!   family's prover calls;
//! * no Table 1 driver may regress by more than 5% prover calls.
//!
//! ```sh
//! cargo run --release -p bench --bin slice_ab [-- --jobs N] [--smoke]
//!     [--json <path>]
//! ```
//!
//! `--smoke` restricts to one driver and one counter pair for CI.
use std::process::ExitCode;

fn main() -> ExitCode {
    let jobs = match bench::jobs_from_args() {
        0 => 1,
        j => j,
    };
    let smoke = bench::flag_in_args("--smoke");
    let rows = bench::slice_rows(jobs, smoke);
    print!(
        "{}",
        bench::render_slice(
            &rows,
            "Slicing + interval oracle A/B — {slice, intervals} x {on, off} (full loop)"
        )
    );
    let counter: Vec<&bench::SliceRow> = rows.iter().filter(|r| r.group == "counter").collect();
    let counter_base: u64 = counter.iter().map(|r| r.base_prover).sum();
    let counter_opt: u64 = counter.iter().map(|r| r.opt_prover).sum();
    let counter_reduction = if counter_base > 0 {
        1.0 - counter_opt as f64 / counter_base as f64
    } else {
        0.0
    };
    println!(
        "counter family: {counter_base} -> {counter_opt} prover calls ({:.1}% reduction)",
        counter_reduction * 100.0
    );
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::slice_rows(&rows));
    }
    let mut ok = true;
    for r in &rows {
        if !r.identical || !r.truth_ok {
            eprintln!(
                "slice_ab: FAIL — {} diverged across configs or missed ground truth",
                r.program
            );
            ok = false;
        }
        // the passes must never make a Table 1 driver more than 5% worse
        if r.group == "table1" && r.opt_prover as f64 > r.base_prover as f64 * 1.05 {
            eprintln!(
                "slice_ab: FAIL — {} regressed: {} -> {} prover calls",
                r.program, r.base_prover, r.opt_prover
            );
            ok = false;
        }
    }
    if counter_reduction < 0.20 {
        eprintln!(
            "slice_ab: FAIL — counter-family prover-call reduction {:.1}% is below the 20% gate",
            counter_reduction * 100.0
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
