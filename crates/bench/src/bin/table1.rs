//! Regenerates Table 1: the SLAM toolkit on the device-driver corpus.
//!
//! ```sh
//! cargo run --release -p bench --bin table1 [-- --jobs N]
//! ```
fn main() {
    let rows = bench::table1_rows(bench::jobs_from_args());
    print!(
        "{}",
        bench::render(
            &rows,
            "Table 1 — device drivers through the SLAM toolkit \
             (locking / IRP-completion properties)"
        )
    );
    println!(
        "\npaper shape check: all DDK-style drivers validated, the \
         in-development floppy driver's IRP bug found; convergence in a \
         few iterations each."
    );
}
