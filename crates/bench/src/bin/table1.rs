//! Regenerates Table 1: the SLAM toolkit on the device-driver corpus.
//!
//! ```sh
//! cargo run --release -p bench --bin table1 [-- --jobs N] [--json <path>]
//! ```
fn main() {
    let rows = bench::table1_rows(bench::jobs_from_args());
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::rows(&rows));
    }
    print!(
        "{}",
        bench::render(
            &rows,
            "Table 1 — device drivers through the SLAM toolkit \
             (locking / IRP-completion properties)"
        )
    );
    println!(
        "\npaper shape check: all DDK-style drivers validated, the \
         in-development floppy driver's IRP bug found; convergence in a \
         few iterations each."
    );
}
