//! Regenerates Table 2: the array- and heap-intensive programs.
//!
//! ```sh
//! cargo run --release -p bench --bin table2 [-- --jobs N] [--json <path>]
//! ```
fn main() {
    let rows = bench::table2_rows(bench::jobs_from_args());
    if let Some(path) = bench::json_path_from_args() {
        bench::write_json(&path, &bench::json::rows(&rows));
    }
    print!(
        "{}",
        bench::render(
            &rows,
            "Table 2 — array and heap intensive programs through C2bp"
        )
    );
    println!(
        "\npaper shape check: `reverse` dominates prover calls (every pair \
         of pointers may alias, defeating the cone of influence); the \
         pure-array programs sit in the middle; the small list programs \
         are cheap. Bebop runs in well under 10 seconds on every boolean \
         program."
    );
}
