//! Benchmark harnesses regenerating the paper's evaluation (§6).
//!
//! * [`table1_rows`] — the device-driver experiments (Table 1): the SLAM
//!   toolkit checking the locking and IRP properties, reporting lines,
//!   predicates, theorem-prover calls, and C2bp runtime.
//! * [`table2_rows`] — the array/heap programs (Table 2): `kmp`, `qsort`,
//!   `partition`, `listfind`, `reverse` with their predicate input files.
//! * [`ablation_rows`] — the §5.2 optimization study: prover calls with
//!   each optimization toggled.
//!
//! Absolute numbers differ from the paper (different machine, different
//! prover, synthetic drivers); the *shape* — who costs more, by roughly
//! what factor, where the blowup is — is the reproduction target. See
//! `EXPERIMENTS.md` at the workspace root.

#![warn(missing_docs)]

use c2bp::{abstract_program, parse_pred_file, C2bpOptions, CubeOptions};
use slam::spec::{irp_spec, locking_spec, Spec};
use slam::{SlamOptions, SlamVerdict};
use std::path::PathBuf;
use std::time::Instant;

/// One row of a reproduced table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Checked property / configuration, where applicable.
    pub config: String,
    /// Non-blank source lines.
    pub lines: usize,
    /// Predicates used (final count, for CEGAR runs).
    pub predicates: usize,
    /// Theorem-prover calls.
    pub prover_calls: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Human-readable outcome.
    pub outcome: String,
}

/// Renders rows as an aligned text table.
pub fn render(rows: &[Row], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22} {:<10} {:>6} {:>6} {:>10} {:>9}  outcome\n",
        "program", "config", "lines", "preds", "thm calls", "time (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<10} {:>6} {:>6} {:>10} {:>9.2}  {}\n",
            r.program, r.config, r.lines, r.predicates, r.prover_calls, r.seconds, r.outcome
        ));
    }
    out
}

/// Path to the corpus directory, robust to the working directory.
pub fn corpus_dir() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.join("../../corpus")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("corpus"))
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The Table 2 benchmark set: (file stem, entry procedure).
pub const TOYS: [(&str, &str); 5] = [
    ("kmp", "kmp"),
    ("qsort", "qsort_range"),
    ("partition", "partition"),
    ("listfind", "listfind"),
    ("reverse", "mark"),
];

/// The Table 1 benchmark set: (file stem, entry, property).
pub const DRIVERS: [(&str, &str, &str); 5] = [
    ("floppy", "FloppyReadWrite", "lock"),
    ("ioctl", "DeviceIoControl", "lock"),
    ("openclos", "DispatchOpenClose", "lock"),
    ("srdriver", "DispatchStartReset", "lock"),
    ("log", "LogAppend", "lock"),
];

/// The bug-finding run reported alongside Table 1: the in-development
/// floppy driver and its IRP property.
pub const BUGGY_DRIVER: (&str, &str, &str) = ("flopnew", "FlopnewReadWrite", "irp");

fn spec_for(prop: &str) -> Spec {
    match prop {
        "lock" => locking_spec(),
        "irp" => irp_spec(),
        other => panic!("unknown property `{other}`"),
    }
}

/// Runs one Table 2 entry (pure C2bp + Bebop with a fixed predicate file)
/// and returns its row.
pub fn run_toy(stem: &str, entry: &str, options: &C2bpOptions) -> Row {
    let dir = corpus_dir().join("toys");
    let source = read(dir.join(format!("{stem}.c")));
    let preds_src = read(dir.join(format!("{stem}.preds")));
    let program = cparse::parse_and_simplify(&source).expect("corpus parses");
    let preds = parse_pred_file(&preds_src).expect("corpus predicates parse");
    let t0 = Instant::now();
    let abs = abstract_program(&program, &preds, options).expect("abstraction succeeds");
    let c2bp_secs = t0.elapsed().as_secs_f64();
    let mut bebop = bebop::Bebop::new(&abs.bprogram).expect("bebop setup");
    let analysis = bebop.analyze(entry).expect("bebop analysis");
    Row {
        program: stem.to_string(),
        config: "-".into(),
        lines: abs.stats.lines,
        predicates: abs.stats.predicates,
        prover_calls: abs.stats.prover_calls,
        seconds: c2bp_secs,
        outcome: if analysis.error_reachable() {
            "assert reachable".into()
        } else {
            "invariants proved".into()
        },
    }
}

/// Runs one Table 1 entry (the full SLAM loop on a driver) and returns
/// its row.
pub fn run_driver(stem: &str, entry: &str, prop: &str) -> Row {
    let dir = corpus_dir().join("drivers");
    let source = read(dir.join(format!("{stem}.c")));
    let spec = spec_for(prop);
    let t0 = Instant::now();
    let run = slam::verify(&source, &spec, entry, &SlamOptions::default())
        .expect("slam run completes");
    let secs = t0.elapsed().as_secs_f64();
    let prover_calls: u64 = run.per_iteration.iter().map(|s| s.prover_calls).sum();
    let lines = cparse::parse_and_simplify(&source)
        .map(|p| p.line_count())
        .unwrap_or(0);
    Row {
        program: stem.to_string(),
        config: prop.to_string(),
        lines,
        predicates: run.final_preds.len(),
        prover_calls,
        seconds: secs,
        outcome: match run.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", run.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", run.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
    }
}

/// All Table 1 rows (plus the buggy-driver row appended last).
pub fn table1_rows() -> Vec<Row> {
    let mut rows: Vec<Row> = DRIVERS
        .iter()
        .map(|(stem, entry, prop)| run_driver(stem, entry, prop))
        .collect();
    let (stem, entry, prop) = BUGGY_DRIVER;
    rows.push(run_driver(stem, entry, prop));
    rows
}

/// All Table 2 rows.
pub fn table2_rows() -> Vec<Row> {
    TOYS.iter()
        .map(|(stem, entry)| run_toy(stem, entry, &C2bpOptions::paper_defaults()))
        .collect()
}

/// The §5.2 ablation grid on one toy program: each optimization toggled
/// off in turn (the paper: "the above optimizations dramatically reduce
/// the number of calls made to the theorem prover").
pub fn ablation_rows(stem: &str, entry: &str) -> Vec<Row> {
    let configs: Vec<(&str, C2bpOptions)> = vec![
        ("paper", C2bpOptions::paper_defaults()),
        (
            "no-coi",
            C2bpOptions {
                cubes: CubeOptions {
                    cone_of_influence: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "no-syntax",
            C2bpOptions {
                cubes: CubeOptions {
                    syntactic_fast_paths: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "no-skip",
            C2bpOptions {
                skip_unaffected: false,
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "k=2",
            C2bpOptions {
                cubes: CubeOptions {
                    max_cube_len: Some(2),
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "k=unbnd",
            C2bpOptions {
                cubes: CubeOptions {
                    max_cube_len: None,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "atomic-F",
            C2bpOptions {
                cubes: CubeOptions {
                    atomic_decomposition: true,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(name, options)| {
            let mut row = run_toy(stem, entry, &options);
            row.config = name.to_string();
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_present() {
        let dir = corpus_dir();
        assert!(dir.join("toys/partition.c").exists(), "{dir:?}");
        assert!(dir.join("drivers/floppy.c").exists());
    }

    #[test]
    fn partition_row_matches_paper_shape() {
        let row = run_toy("partition", "partition", &C2bpOptions::paper_defaults());
        assert_eq!(row.predicates, 4);
        assert!(row.prover_calls > 0);
        assert_eq!(row.outcome, "invariants proved");
    }

    #[test]
    fn render_produces_a_table() {
        let rows = vec![Row {
            program: "p".into(),
            config: "-".into(),
            lines: 1,
            predicates: 2,
            prover_calls: 3,
            seconds: 0.5,
            outcome: "ok".into(),
        }];
        let text = render(&rows, "T");
        assert!(text.contains("thm calls"));
        assert!(text.contains("p "));
    }
}
