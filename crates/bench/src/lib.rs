//! Benchmark harnesses regenerating the paper's evaluation (§6).
//!
//! * [`table1_rows`] — the device-driver experiments (Table 1): the SLAM
//!   toolkit checking the locking and IRP properties, reporting lines,
//!   predicates, theorem-prover calls, and C2bp runtime.
//! * [`table2_rows`] — the array/heap programs (Table 2): `kmp`, `qsort`,
//!   `partition`, `listfind`, `reverse` with their predicate input files.
//! * [`ablation_rows`] — the §5.2 optimization study: prover calls with
//!   each optimization toggled.
//!
//! Absolute numbers differ from the paper (different machine, different
//! prover, synthetic drivers); the *shape* — who costs more, by roughly
//! what factor, where the blowup is — is the reproduction target. See
//! `EXPERIMENTS.md` at the workspace root.

#![warn(missing_docs)]

pub mod matrix;

use c2bp::{abstract_program, parse_pred_file, C2bpOptions, CubeOptions};
use slam::spec::{locking_spec, Spec};
use slam::{SlamOptions, SlamVerdict};
use std::path::PathBuf;
use std::time::Instant;

/// One row of a reproduced table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Program name.
    pub program: String,
    /// Checked property / configuration, where applicable.
    pub config: String,
    /// Non-blank source lines.
    pub lines: usize,
    /// Predicates used (final count, for CEGAR runs).
    pub predicates: usize,
    /// Theorem-prover calls.
    pub prover_calls: u64,
    /// Predicate updates removed by liveness pruning (0 when off).
    pub pruned_updates: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Worker threads the abstraction ran with.
    pub jobs: usize,
    /// Shared prover-cache hits over the abstraction phase(s).
    pub cache_hits: u64,
    /// Shared prover-cache hit rate over the abstraction phase(s).
    pub cache_hit_rate: f64,
    /// Abstraction phase wall-times (summed over CEGAR iterations).
    pub phases: c2bp::PhaseSeconds,
    /// Human-readable outcome.
    pub outcome: String,
}

/// Renders rows as an aligned text table.
pub fn render(rows: &[Row], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22} {:<10} {:>6} {:>6} {:>10} {:>9} {:>4} {:>6} {:>9}  outcome\n",
        "program",
        "config",
        "lines",
        "preds",
        "thm calls",
        "time (s)",
        "jobs",
        "cache%",
        "solve (s)"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:<10} {:>6} {:>6} {:>10} {:>9.2} {:>4} {:>6.1} {:>9.2}  {}\n",
            r.program,
            r.config,
            r.lines,
            r.predicates,
            r.prover_calls,
            r.seconds,
            r.jobs,
            r.cache_hit_rate * 100.0,
            r.phases.solve,
            r.outcome
        ));
    }
    out
}

/// Path to the corpus directory, robust to the working directory.
pub fn corpus_dir() -> PathBuf {
    let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    here.join("../../corpus")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("corpus"))
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

/// The Table 2 benchmark set: (file stem, entry procedure).
pub const TOYS: [(&str, &str); 5] = [
    ("kmp", "kmp"),
    ("qsort", "qsort_range"),
    ("partition", "partition"),
    ("listfind", "listfind"),
    ("reverse", "mark"),
];

/// The Table 1 benchmark set: (file stem, entry, property).
pub const DRIVERS: [(&str, &str, &str); 5] = [
    ("floppy", "FloppyReadWrite", "lock"),
    ("ioctl", "DeviceIoControl", "lock"),
    ("openclos", "DispatchOpenClose", "lock"),
    ("srdriver", "DispatchStartReset", "lock"),
    ("log", "LogAppend", "lock"),
];

/// The bug-finding run reported alongside Table 1: the in-development
/// floppy driver and its IRP property.
pub const BUGGY_DRIVER: (&str, &str, &str) = ("flopnew", "FlopnewReadWrite", "irp");

fn spec_for(prop: &str) -> Spec {
    slam::SpecRegistry::builtin()
        .get(prop)
        .unwrap_or_else(|| panic!("unknown property `{prop}`"))
        .spec()
}

/// Runs one Table 2 entry (pure C2bp + Bebop with a fixed predicate file)
/// and returns its row.
pub fn run_toy(stem: &str, entry: &str, options: &C2bpOptions) -> Row {
    let dir = corpus_dir().join("toys");
    let source = read(dir.join(format!("{stem}.c")));
    let preds_src = read(dir.join(format!("{stem}.preds")));
    let program = cparse::parse_and_simplify(&source).expect("corpus parses");
    let preds = parse_pred_file(&preds_src).expect("corpus predicates parse");
    let t0 = Instant::now();
    let abs = abstract_program(&program, &preds, options).expect("abstraction succeeds");
    let c2bp_secs = t0.elapsed().as_secs_f64();
    let mut bebop = bebop::Bebop::new(&abs.bprogram).expect("bebop setup");
    let analysis = bebop.analyze(entry).expect("bebop analysis");
    Row {
        program: stem.to_string(),
        config: "-".into(),
        lines: abs.stats.lines,
        predicates: abs.stats.predicates,
        prover_calls: abs.stats.prover_calls,
        pruned_updates: abs.stats.pruned_updates,
        seconds: c2bp_secs,
        jobs: abs.stats.jobs,
        cache_hits: abs.stats.shared_cache.hits,
        cache_hit_rate: abs.stats.shared_cache.hit_rate(),
        phases: abs.stats.phases,
        outcome: if analysis.error_reachable() {
            "assert reachable".into()
        } else {
            "invariants proved".into()
        },
    }
}

/// Runs one Table 1 entry (the full SLAM loop on a driver) and returns
/// its row. `jobs = 0` defers to `C2BP_JOBS` (default sequential).
pub fn run_driver(stem: &str, entry: &str, prop: &str, jobs: usize) -> Row {
    run_driver_config(stem, entry, prop, jobs, false)
}

/// [`run_driver`] with predicate-liveness pruning selectable.
pub fn run_driver_config(stem: &str, entry: &str, prop: &str, jobs: usize, prune: bool) -> Row {
    let dir = corpus_dir().join("drivers");
    let source = read(dir.join(format!("{stem}.c")));
    let spec = spec_for(prop);
    let options = SlamOptions {
        c2bp: C2bpOptions {
            jobs,
            prune_dead_preds: prune,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    let t0 = Instant::now();
    let run = slam::verify(&source, &spec, entry, &options).expect("slam run completes");
    let secs = t0.elapsed().as_secs_f64();
    let prover_calls: u64 = run.per_iteration.iter().map(|s| s.prover_calls).sum();
    let lines = cparse::parse_and_simplify(&source)
        .map(|p| p.line_count())
        .unwrap_or(0);
    // aggregate the per-iteration abstraction stats into one row
    let (mut hits, mut lookups) = (0u64, 0u64);
    let mut phases = c2bp::PhaseSeconds::default();
    for it in &run.per_iteration {
        hits += it.shared_cache.hits;
        lookups += it.shared_cache.hits + it.shared_cache.misses;
        phases.plan += it.abs_phases.plan;
        phases.solve += it.abs_phases.solve;
        phases.merge += it.abs_phases.merge;
    }
    Row {
        program: stem.to_string(),
        config: prop.to_string(),
        lines,
        predicates: run.final_preds.len(),
        prover_calls,
        pruned_updates: run.per_iteration.iter().map(|s| s.pruned_updates).sum(),
        seconds: secs,
        jobs: run.per_iteration.first().map_or(1, |it| it.jobs),
        cache_hits: hits,
        cache_hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        phases,
        outcome: match run.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", run.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", run.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
    }
}

/// All Table 1 rows (plus the buggy-driver row appended last).
/// `jobs = 0` defers to `C2BP_JOBS` (default sequential).
pub fn table1_rows(jobs: usize) -> Vec<Row> {
    let mut rows: Vec<Row> = DRIVERS
        .iter()
        .map(|(stem, entry, prop)| run_driver(stem, entry, prop, jobs))
        .collect();
    let (stem, entry, prop) = BUGGY_DRIVER;
    rows.push(run_driver(stem, entry, prop, jobs));
    rows
}

/// All Table 2 rows. `jobs = 0` defers to `C2BP_JOBS`.
pub fn table2_rows(jobs: usize) -> Vec<Row> {
    let options = C2bpOptions {
        jobs,
        ..C2bpOptions::paper_defaults()
    };
    TOYS.iter()
        .map(|(stem, entry)| run_toy(stem, entry, &options))
        .collect()
}

/// The §5.2 ablation grid on one toy program: each optimization toggled
/// off in turn (the paper: "the above optimizations dramatically reduce
/// the number of calls made to the theorem prover").
/// `jobs = 0` defers to `C2BP_JOBS`.
pub fn ablation_rows(stem: &str, entry: &str, jobs: usize) -> Vec<Row> {
    let configs: Vec<(&str, C2bpOptions)> = vec![
        ("paper", C2bpOptions::paper_defaults()),
        (
            "no-coi",
            C2bpOptions {
                cubes: CubeOptions {
                    cone_of_influence: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "no-syntax",
            C2bpOptions {
                cubes: CubeOptions {
                    syntactic_fast_paths: false,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "no-skip",
            C2bpOptions {
                skip_unaffected: false,
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "k=2",
            C2bpOptions {
                cubes: CubeOptions {
                    max_cube_len: Some(2),
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "k=unbnd",
            C2bpOptions {
                cubes: CubeOptions {
                    max_cube_len: None,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "atomic-F",
            C2bpOptions {
                cubes: CubeOptions {
                    atomic_decomposition: true,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
        ),
        (
            "prune",
            C2bpOptions {
                prune_dead_preds: true,
                ..C2bpOptions::paper_defaults()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(name, mut options)| {
            options.jobs = jobs;
            let mut row = run_toy(stem, entry, &options);
            row.config = name.to_string();
            row
        })
        .collect()
}

/// One unpruned/pruned A/B measurement.
#[derive(Debug, Clone)]
pub struct PruneRow {
    /// Program name.
    pub program: String,
    /// Prover calls with every update computed (the paper's engine).
    pub unpruned: u64,
    /// Prover calls with dead-predicate updates skipped.
    pub pruned: u64,
    /// Updates the liveness analysis removed.
    pub pruned_updates: u64,
}

impl PruneRow {
    /// Fraction of prover calls the pruning removed.
    pub fn saving(&self) -> f64 {
        if self.unpruned == 0 {
            0.0
        } else {
            1.0 - self.pruned as f64 / self.unpruned as f64
        }
    }
}

/// Renders the pruning A/B rows, with an aggregate reduction line.
pub fn render_prune(rows: &[PruneRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}\n",
        "program", "unpruned", "pruned", "removed", "saving"
    ));
    let (mut total_u, mut total_p) = (0u64, 0u64);
    for r in rows {
        total_u += r.unpruned;
        total_p += r.pruned;
        out.push_str(&format!(
            "{:<22} {:>10} {:>10} {:>8} {:>7.1}%\n",
            r.program,
            r.unpruned,
            r.pruned,
            r.pruned_updates,
            r.saving() * 100.0
        ));
    }
    if total_u > 0 {
        out.push_str(&format!(
            "total prover-call reduction: {:.1}% ({total_u} -> {total_p})\n",
            (1.0 - total_p as f64 / total_u as f64) * 100.0
        ));
    }
    out
}

/// The liveness-stress toy: dead non-constant predicate updates by
/// construction, where the Table 2 set (whose `enforce` invariants keep
/// every predicate live) has none. Benchmarked alongside [`TOYS`] in
/// the pruning A/B runs but kept out of the Table 2 reproduction.
pub const PRUNE_TOY: (&str, &str) = ("backoff", "poll");

/// A/B rows for predicate-liveness pruning over the Table 2 programs
/// plus [`PRUNE_TOY`]: each toy abstracted with the paper engine and
/// with pruning on.
pub fn table2_prune_rows(jobs: usize) -> Vec<PruneRow> {
    let dir = corpus_dir().join("toys");
    TOYS.iter()
        .chain(std::iter::once(&PRUNE_TOY))
        .map(|(stem, _)| {
            let source = read(dir.join(format!("{stem}.c")));
            let preds_src = read(dir.join(format!("{stem}.preds")));
            let program = cparse::parse_and_simplify(&source).expect("corpus parses");
            let preds = parse_pred_file(&preds_src).expect("corpus predicates parse");
            let base = abstract_program(
                &program,
                &preds,
                &C2bpOptions {
                    jobs,
                    ..C2bpOptions::paper_defaults()
                },
            )
            .expect("abstraction succeeds");
            let pruned = abstract_program(
                &program,
                &preds,
                &C2bpOptions {
                    jobs,
                    prune_dead_preds: true,
                    ..C2bpOptions::paper_defaults()
                },
            )
            .expect("abstraction succeeds");
            PruneRow {
                program: stem.to_string(),
                unpruned: base.stats.prover_calls,
                pruned: pruned.stats.prover_calls,
                pruned_updates: pruned.stats.pruned_updates,
            }
        })
        .collect()
}

/// A/B rows for pruning over the Table 1 drivers: prover calls summed
/// across each driver's CEGAR iterations, with and without pruning.
pub fn table1_prune_rows(jobs: usize) -> Vec<PruneRow> {
    let mut set: Vec<(&str, &str, &str)> = DRIVERS.to_vec();
    set.push(BUGGY_DRIVER);
    let mut rows: Vec<PruneRow> = set
        .iter()
        .map(|(stem, entry, prop)| {
            let base = run_driver_config(stem, entry, prop, jobs, false);
            let pruned = run_driver_config(stem, entry, prop, jobs, true);
            PruneRow {
                program: stem.to_string(),
                unpruned: base.prover_calls,
                pruned: pruned.prover_calls,
                pruned_updates: pruned.pruned_updates,
            }
        })
        .collect();
    rows.push(retry_prune_row(jobs));
    rows
}

/// The liveness-stress driver row: `retry` verified with the
/// single-polarity seed predicate `attempts > 0` (see the comment in
/// `corpus/drivers/retry.c`), A/B measured like the rest of Table 1.
fn retry_prune_row(jobs: usize) -> PruneRow {
    let source = read(corpus_dir().join("drivers").join("retry.c"));
    let run_with = |prune: bool| {
        let options = SlamOptions {
            c2bp: C2bpOptions {
                jobs,
                prune_dead_preds: prune,
                ..C2bpOptions::paper_defaults()
            },
            ..SlamOptions::default()
        };
        let seeds = parse_pred_file("DispatchRetry attempts > 0").expect("seed parses");
        slam::verify_seeded(&source, &locking_spec(), "DispatchRetry", seeds, &options)
            .expect("slam run completes")
    };
    let base = run_with(false);
    let pruned = run_with(true);
    PruneRow {
        program: "retry".to_string(),
        unpruned: base.per_iteration.iter().map(|s| s.prover_calls).sum(),
        pruned: pruned.per_iteration.iter().map(|s| s.prover_calls).sum(),
        pruned_updates: pruned.per_iteration.iter().map(|s| s.pruned_updates).sum(),
    }
}

/// One incremental-vs-from-scratch A/B measurement. The two runs must
/// agree exactly — same boolean program (or SLAM verdict), same
/// deterministic prover counters — so `identical` is an acceptance
/// check, not a statistic.
#[derive(Debug, Clone)]
pub struct IncRow {
    /// Program name.
    pub program: String,
    /// Configuration ("-" for toys, the property for drivers).
    pub config: String,
    /// Theorem-prover calls (identical in both runs when `identical`).
    pub prover_calls: u64,
    /// Wall-clock seconds with incremental sessions on.
    pub incremental_secs: f64,
    /// Wall-clock seconds solving every cube from scratch.
    pub baseline_secs: f64,
    /// Incremental-session solver runs (scheduling-dependent).
    pub session_solves: u64,
    /// Queries answered by recorded unsat cores without solving.
    pub session_core_hits: u64,
    /// Whether the two runs produced byte-identical output and equal
    /// deterministic counters.
    pub identical: bool,
}

impl IncRow {
    /// Baseline time over incremental time (> 1 means sessions won).
    pub fn speedup(&self) -> f64 {
        if self.incremental_secs == 0.0 {
            1.0
        } else {
            self.baseline_secs / self.incremental_secs
        }
    }
}

/// Renders the incremental A/B rows with an aggregate speedup line.
pub fn render_incremental(rows: &[IncRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<22} {:<10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9}  identical\n",
        "program", "config", "thm calls", "inc (s)", "base (s)", "speedup", "solves", "core hits"
    ));
    let (mut inc_total, mut base_total) = (0.0f64, 0.0f64);
    for r in rows {
        inc_total += r.incremental_secs;
        base_total += r.baseline_secs;
        out.push_str(&format!(
            "{:<22} {:<10} {:>10} {:>9.2} {:>9.2} {:>7.2}x {:>8} {:>9}  {}\n",
            r.program,
            r.config,
            r.prover_calls,
            r.incremental_secs,
            r.baseline_secs,
            r.speedup(),
            r.session_solves,
            r.session_core_hits,
            if r.identical { "yes" } else { "NO" }
        ));
    }
    if inc_total > 0.0 {
        out.push_str(&format!(
            "total: {base_total:.2}s from scratch vs {inc_total:.2}s incremental ({:.2}x)\n",
            base_total / inc_total
        ));
    }
    out
}

fn toy_inc_row(stem: &str, jobs: usize) -> IncRow {
    let dir = corpus_dir().join("toys");
    let source = read(dir.join(format!("{stem}.c")));
    let preds_src = read(dir.join(format!("{stem}.preds")));
    let program = cparse::parse_and_simplify(&source).expect("corpus parses");
    let preds = parse_pred_file(&preds_src).expect("corpus predicates parse");
    let run_with = |incremental: bool| {
        let options = C2bpOptions {
            jobs,
            cubes: CubeOptions {
                incremental,
                ..CubeOptions::default()
            },
            ..C2bpOptions::paper_defaults()
        };
        let t0 = Instant::now();
        let abs = abstract_program(&program, &preds, &options).expect("abstraction succeeds");
        (abs, t0.elapsed().as_secs_f64())
    };
    let (inc, inc_secs) = run_with(true);
    let (base, base_secs) = run_with(false);
    IncRow {
        program: stem.to_string(),
        config: "-".into(),
        prover_calls: inc.stats.prover_calls,
        incremental_secs: inc_secs,
        baseline_secs: base_secs,
        session_solves: inc.stats.sessions.solves,
        session_core_hits: inc.stats.sessions.core_hits,
        identical: bp::program_to_string(&inc.bprogram) == bp::program_to_string(&base.bprogram)
            && inc.stats.prover_calls == base.stats.prover_calls
            && inc.stats.prover_cache_hits == base.stats.prover_cache_hits,
    }
}

fn driver_inc_row(stem: &str, entry: &str, prop: &str, seeds: Option<&str>, jobs: usize) -> IncRow {
    let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
    let spec = spec_for(prop);
    let run_with = |incremental: bool| {
        let options = SlamOptions {
            c2bp: C2bpOptions {
                jobs,
                cubes: CubeOptions {
                    incremental,
                    ..CubeOptions::default()
                },
                ..C2bpOptions::paper_defaults()
            },
            ..SlamOptions::default()
        };
        let t0 = Instant::now();
        let run = match seeds {
            Some(s) => {
                let seeds = parse_pred_file(s).expect("seed parses");
                slam::verify_seeded(&source, &spec, entry, seeds, &options)
            }
            None => slam::verify(&source, &spec, entry, &options),
        }
        .expect("slam run completes");
        (run, t0.elapsed().as_secs_f64())
    };
    let (inc, inc_secs) = run_with(true);
    let (base, base_secs) = run_with(false);
    let calls =
        |run: &slam::SlamRun| -> u64 { run.per_iteration.iter().map(|s| s.prover_calls).sum() };
    IncRow {
        program: stem.to_string(),
        config: prop.to_string(),
        prover_calls: calls(&inc),
        incremental_secs: inc_secs,
        baseline_secs: base_secs,
        // SLAM's IterationStats does not thread session counters through;
        // the per-abstraction numbers are visible via the c2bp CLI.
        session_solves: 0,
        session_core_hits: 0,
        identical: format!("{:?}", inc.verdict) == format!("{:?}", base.verdict)
            && inc.iterations == base.iterations
            && calls(&inc) == calls(&base),
    }
}

/// Incremental A/B rows over the Table 2 toys plus the liveness-stress
/// toy `backoff`. `smoke` restricts to two fast programs for CI.
pub fn incremental_toy_rows(jobs: usize, smoke: bool) -> Vec<IncRow> {
    let stems: Vec<&str> = if smoke {
        vec!["partition", "listfind"]
    } else {
        TOYS.iter()
            .map(|(stem, _)| *stem)
            .chain(std::iter::once(PRUNE_TOY.0))
            .collect()
    };
    stems
        .into_iter()
        .map(|stem| toy_inc_row(stem, jobs))
        .collect()
}

/// Incremental A/B rows over the Table 1 drivers, the buggy driver, and
/// the seeded `retry` run.
pub fn incremental_driver_rows(jobs: usize) -> Vec<IncRow> {
    let mut set: Vec<(&str, &str, &str)> = DRIVERS.to_vec();
    set.push(BUGGY_DRIVER);
    let mut rows: Vec<IncRow> = set
        .iter()
        .map(|(stem, entry, prop)| driver_inc_row(stem, entry, prop, None, jobs))
        .collect();
    rows.push(driver_inc_row(
        "retry",
        "DispatchRetry",
        "lock",
        Some("DispatchRetry attempts > 0"),
        jobs,
    ));
    rows
}

/// One per-iteration point of a reuse-vs-scratch CEGAR A/B: the same
/// CEGAR iteration measured once with the cross-iteration reuse session
/// and once abstracting from scratch.
#[derive(Debug, Clone)]
pub struct CegarIter {
    /// Predicates in use this iteration.
    pub predicates: usize,
    /// Theorem-prover calls with reuse off.
    pub scratch_prover_calls: u64,
    /// Theorem-prover calls with the reuse session on.
    pub reuse_prover_calls: u64,
    /// Abstraction units replayed from the reuse memo.
    pub reused_units: usize,
    /// Shared prover-cache hit rate of the reuse run's iteration delta.
    pub cache_hit_rate: f64,
    /// BDD nodes resident after the reuse run's model-checking pass.
    pub bdd_nodes: usize,
}

impl CegarIter {
    /// Fraction of prover calls the reuse session removed this iteration.
    pub fn saving(&self) -> f64 {
        if self.scratch_prover_calls == 0 {
            0.0
        } else {
            1.0 - self.reuse_prover_calls as f64 / self.scratch_prover_calls as f64
        }
    }
}

/// One program's reuse-vs-scratch CEGAR A/B. The two modes must agree
/// exactly — byte-identical boolean programs at every iteration, same
/// verdict, same final predicate set, and within each mode the
/// deterministic counters must not depend on the worker count — so
/// `identical` is an acceptance check, not a statistic.
#[derive(Debug, Clone)]
pub struct CegarRow {
    /// Program name.
    pub program: String,
    /// Checked property.
    pub config: String,
    /// Per-iteration comparison points.
    pub iterations: Vec<CegarIter>,
    /// Wall-clock seconds for the whole loop with reuse on.
    pub reuse_secs: f64,
    /// Wall-clock seconds for the whole loop with reuse off.
    pub scratch_secs: f64,
    /// Human-readable verdict (identical in both modes when `identical`).
    pub verdict: String,
    /// Whether all four runs (reuse on/off × two worker counts) agreed.
    pub identical: bool,
}

/// Renders the CEGAR A/B rows: one line per iteration, then a per-run
/// wall-clock summary line.
pub fn render_cegar(rows: &[CegarRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:<6} {:>4} {:>6} {:>9} {:>9} {:>7} {:>7} {:>7} {:>10}  identical\n",
        "program",
        "config",
        "iter",
        "preds",
        "scratch",
        "reuse",
        "saving",
        "reused",
        "cache%",
        "bdd nodes"
    ));
    for r in rows {
        for (i, it) in r.iterations.iter().enumerate() {
            out.push_str(&format!(
                "{:<10} {:<6} {:>4} {:>6} {:>9} {:>9} {:>6.1}% {:>7} {:>6.1}% {:>10}  {}\n",
                if i == 0 { r.program.as_str() } else { "" },
                if i == 0 { r.config.as_str() } else { "" },
                i + 1,
                it.predicates,
                it.scratch_prover_calls,
                it.reuse_prover_calls,
                it.saving() * 100.0,
                it.reused_units,
                it.cache_hit_rate * 100.0,
                it.bdd_nodes,
                if i == 0 {
                    if r.identical {
                        "yes"
                    } else {
                        "NO"
                    }
                } else {
                    ""
                }
            ));
        }
        out.push_str(&format!(
            "{:<10} total: {:.2}s scratch vs {:.2}s reuse — {}\n",
            "", r.scratch_secs, r.reuse_secs, r.verdict
        ));
    }
    out
}

fn cegar_slam_run(
    source: &str,
    spec: &Spec,
    entry: &str,
    seeds: Option<&str>,
    reuse: bool,
    jobs: usize,
) -> (slam::SlamRun, f64) {
    let options = SlamOptions {
        keep_bps: true,
        c2bp: C2bpOptions {
            jobs,
            reuse,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    let t0 = Instant::now();
    let run = match seeds {
        Some(s) => {
            let seeds = parse_pred_file(s).expect("seed parses");
            slam::verify_seeded(source, spec, entry, seeds, &options)
        }
        None => slam::verify(source, spec, entry, &options),
    }
    .expect("slam run completes");
    (run, t0.elapsed().as_secs_f64())
}

fn cegar_row(stem: &str, entry: &str, prop: &str, seeds: Option<&str>, jobs: usize) -> CegarRow {
    let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
    let spec = spec_for(prop);
    let (scratch, scratch_secs) = cegar_slam_run(&source, &spec, entry, seeds, false, jobs);
    let (reuse, reuse_secs) = cegar_slam_run(&source, &spec, entry, seeds, true, jobs);
    // the same two modes at a different worker count: the deterministic
    // counters and boolean programs must not depend on scheduling
    let alt = if jobs == 1 { 4 } else { 1 };
    let (scratch_alt, _) = cegar_slam_run(&source, &spec, entry, seeds, false, alt);
    let (reuse_alt, _) = cegar_slam_run(&source, &spec, entry, seeds, true, alt);
    let bps = |run: &slam::SlamRun| -> Vec<String> {
        run.per_iteration
            .iter()
            .map(|it| it.bp_text.clone().expect("keep_bps was set"))
            .collect()
    };
    let counters = |run: &slam::SlamRun| -> Vec<(u64, u64, usize)> {
        run.per_iteration
            .iter()
            .map(|it| (it.prover_calls, it.pruned_updates, it.reused_units))
            .collect()
    };
    let preds = |run: &slam::SlamRun| -> Vec<String> {
        run.final_preds.iter().map(|p| format!("{p:?}")).collect()
    };
    let identical = bps(&scratch) == bps(&reuse)
        && format!("{:?}", scratch.verdict) == format!("{:?}", reuse.verdict)
        && preds(&scratch) == preds(&reuse)
        && bps(&scratch) == bps(&scratch_alt)
        && counters(&scratch) == counters(&scratch_alt)
        && bps(&reuse) == bps(&reuse_alt)
        && counters(&reuse) == counters(&reuse_alt);
    let iterations = scratch
        .per_iteration
        .iter()
        .zip(&reuse.per_iteration)
        .map(|(s, r)| CegarIter {
            predicates: r.predicates,
            scratch_prover_calls: s.prover_calls,
            reuse_prover_calls: r.prover_calls,
            reused_units: r.reused_units,
            cache_hit_rate: r.shared_cache.hit_rate(),
            bdd_nodes: r.bdd_nodes,
        })
        .collect();
    CegarRow {
        program: stem.to_string(),
        config: prop.to_string(),
        iterations,
        reuse_secs,
        scratch_secs,
        verdict: match reuse.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", reuse.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", reuse.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
        identical,
    }
}

/// Reuse-vs-scratch CEGAR A/B rows over the Table 1 drivers, the buggy
/// driver, and the seeded `retry` run (the drivers with ≥ 2 iterations,
/// where cross-iteration reuse can act). `smoke` restricts to one fast
/// driver for CI. Each program runs four times: reuse on/off × two
/// worker counts.
pub fn cegar_rows(jobs: usize, smoke: bool) -> Vec<CegarRow> {
    if smoke {
        return vec![cegar_row(
            "openclos",
            "DispatchOpenClose",
            "lock",
            None,
            jobs,
        )];
    }
    let mut set: Vec<(&str, &str, &str)> = DRIVERS.to_vec();
    set.push(BUGGY_DRIVER);
    let mut rows: Vec<CegarRow> = set
        .iter()
        .map(|(stem, entry, prop)| cegar_row(stem, entry, prop, None, jobs))
        .collect();
    rows.push(cegar_row(
        "retry",
        "DispatchRetry",
        "lock",
        Some("DispatchRetry attempts > 0"),
        jobs,
    ));
    rows
}

/// One program's unify-vs-inclusion alias-precision A/B: the same full
/// CEGAR run under both points-to analyses, plus each oracle's static
/// May/Must/Never pair counts over the instrumented program and a
/// structural soundness check (every inclusion points-to set must be a
/// subset of the corresponding unification set).
#[derive(Debug, Clone)]
pub struct AliasRow {
    /// Program name.
    pub program: String,
    /// Checked property.
    pub config: String,
    /// Pointer pairs the unification analysis cannot refute.
    pub unify_may: usize,
    /// Pointer pairs the inclusion analysis cannot refute.
    pub inclusion_may: usize,
    /// Morris-axiom `May` disjuncts emitted across the loop, unification.
    pub unify_disjuncts: u64,
    /// Morris-axiom `May` disjuncts emitted across the loop, inclusion.
    pub inclusion_disjuncts: u64,
    /// Theorem-prover calls across the loop, unification.
    pub unify_prover: u64,
    /// Theorem-prover calls across the loop, inclusion.
    pub inclusion_prover: u64,
    /// Wall-clock seconds for the whole loop, unification.
    pub unify_secs: f64,
    /// Wall-clock seconds for the whole loop, inclusion.
    pub inclusion_secs: f64,
    /// Human-readable verdict (identical in both modes when `identical`).
    pub verdict: String,
    /// Whether the inclusion sets are subsets of the unification sets on
    /// the instrumented program.
    pub subset_ok: bool,
    /// Whether all four runs (two alias modes × two worker counts)
    /// agreed on verdict and final predicates, with each mode
    /// byte-identical and counter-identical across worker counts.
    pub identical: bool,
}

impl AliasRow {
    /// Fraction of unrefuted pointer pairs the inclusion analysis removed.
    pub fn may_reduction(&self) -> f64 {
        reduction(self.unify_may as u64, self.inclusion_may as u64)
    }

    /// Fraction of Morris-axiom `May` disjuncts the inclusion analysis
    /// removed.
    pub fn disjunct_reduction(&self) -> f64 {
        reduction(self.unify_disjuncts, self.inclusion_disjuncts)
    }

    /// Fraction of theorem-prover calls the inclusion analysis removed
    /// (negative if it added calls — reported honestly either way).
    pub fn prover_reduction(&self) -> f64 {
        reduction(self.unify_prover, self.inclusion_prover)
    }
}

fn reduction(coarse: u64, sharp: u64) -> f64 {
    if coarse == 0 {
        0.0
    } else {
        1.0 - sharp as f64 / coarse as f64
    }
}

/// Renders the alias A/B rows: one line per program, then a per-run
/// wall-clock summary line.
pub fn render_alias(rows: &[AliasRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:<6} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>7}  subset identical\n",
        "program",
        "config",
        "may(uni)",
        "may(inc)",
        "disj(uni)",
        "disj(inc)",
        "thm(uni)",
        "thm(inc)",
        "Δthm"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:<6} {:>9} {:>9} {:>10} {:>10} {:>9} {:>9} {:>6.1}%  {:<6} {}\n",
            r.program,
            r.config,
            r.unify_may,
            r.inclusion_may,
            r.unify_disjuncts,
            r.inclusion_disjuncts,
            r.unify_prover,
            r.inclusion_prover,
            r.prover_reduction() * 100.0,
            if r.subset_ok { "yes" } else { "NO" },
            if r.identical { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "{:<10} total: {:.2}s unify vs {:.2}s inclusion — {}\n",
            "", r.unify_secs, r.inclusion_secs, r.verdict
        ));
    }
    out
}

fn alias_slam_run(
    source: &str,
    spec: &Spec,
    entry: &str,
    seeds: Option<&str>,
    alias: c2bp::AliasMode,
    jobs: usize,
) -> (slam::SlamRun, f64) {
    let options = SlamOptions {
        keep_bps: true,
        c2bp: C2bpOptions {
            jobs,
            alias,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    let t0 = Instant::now();
    let run = match seeds {
        Some(s) => {
            let seeds = parse_pred_file(s).expect("seed parses");
            slam::verify_seeded(source, spec, entry, seeds, &options)
        }
        None => slam::verify(source, spec, entry, &options),
    }
    .expect("slam run completes");
    (run, t0.elapsed().as_secs_f64())
}

fn alias_row(stem: &str, entry: &str, prop: &str, seeds: Option<&str>, jobs: usize) -> AliasRow {
    use c2bp::AliasMode;
    let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
    let spec = spec_for(prop);
    // static precision on the same program the abstraction sees: the
    // instrumented, simplified driver
    let program = cparse::parse_program(&source).expect("corpus parses");
    let instrumented = slam::instrument(&program, &spec, entry);
    let instrumented =
        cparse::simplify_program(&instrumented).expect("instrumented driver simplifies");
    let subset_ok = pointsto::subset_violations(&instrumented).is_empty();
    let unify_oracle = pointsto::analyze_shared(&instrumented, AliasMode::Unify);
    let inclusion_oracle = pointsto::analyze_shared(&instrumented, AliasMode::Inclusion);
    let unify_pairs = pointsto::may_pair_counts(&instrumented, unify_oracle.as_ref());
    let inclusion_pairs = pointsto::may_pair_counts(&instrumented, inclusion_oracle.as_ref());
    // the full loop under each analysis, each at two worker counts
    let (uni, unify_secs) = alias_slam_run(&source, &spec, entry, seeds, AliasMode::Unify, jobs);
    let (inc, inclusion_secs) =
        alias_slam_run(&source, &spec, entry, seeds, AliasMode::Inclusion, jobs);
    let alt = if jobs == 1 { 4 } else { 1 };
    let (uni_alt, _) = alias_slam_run(&source, &spec, entry, seeds, AliasMode::Unify, alt);
    let (inc_alt, _) = alias_slam_run(&source, &spec, entry, seeds, AliasMode::Inclusion, alt);
    let bps = |run: &slam::SlamRun| -> Vec<String> {
        run.per_iteration
            .iter()
            .map(|it| it.bp_text.clone().expect("keep_bps was set"))
            .collect()
    };
    let counters = |run: &slam::SlamRun| -> Vec<(u64, u64, u64)> {
        run.per_iteration
            .iter()
            .map(|it| (it.prover_calls, it.pruned_updates, it.alias_disjuncts))
            .collect()
    };
    let preds = |run: &slam::SlamRun| -> Vec<String> {
        run.final_preds.iter().map(|p| format!("{p:?}")).collect()
    };
    // across alias modes only the *semantic* outcome must agree; within
    // a mode the runs must stay deterministic across worker counts
    let identical = format!("{:?}", uni.verdict) == format!("{:?}", inc.verdict)
        && preds(&uni) == preds(&inc)
        && bps(&uni) == bps(&uni_alt)
        && counters(&uni) == counters(&uni_alt)
        && bps(&inc) == bps(&inc_alt)
        && counters(&inc) == counters(&inc_alt);
    let disjuncts = |run: &slam::SlamRun| -> u64 {
        run.per_iteration.iter().map(|it| it.alias_disjuncts).sum()
    };
    let prover =
        |run: &slam::SlamRun| -> u64 { run.per_iteration.iter().map(|it| it.prover_calls).sum() };
    AliasRow {
        program: stem.to_string(),
        config: prop.to_string(),
        unify_may: unify_pairs.may,
        inclusion_may: inclusion_pairs.may,
        unify_disjuncts: disjuncts(&uni),
        inclusion_disjuncts: disjuncts(&inc),
        unify_prover: prover(&uni),
        inclusion_prover: prover(&inc),
        unify_secs,
        inclusion_secs,
        verdict: match inc.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", inc.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", inc.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
        subset_ok,
        identical,
    }
}

/// The `mirror` driver's seeded predicates: the two busy flags its
/// pointers reach. The verdict never depends on them — they exist so
/// the stores through `own`/`peer`/`cur` have in-scope predicates to
/// charge alias disjuncts against, making the two analyses' precision
/// gap measurable.
pub const MIRROR_SEEDS: &str = "DispatchMirror primary.busy == 1\nDispatchMirror shadow.busy == 0";

/// Unify-vs-inclusion alias-precision A/B rows over the Table 1
/// drivers, the buggy driver, the seeded `retry` run, and the
/// pointer-heavy `mirror` driver (the one corpus program whose
/// directional pointer copies separate the two analyses — the Table 1
/// drivers are pointer-free, so their rows are honest flat baselines).
/// `smoke` restricts to `mirror` for CI, the fastest row that still
/// exercises both oracles. Each program runs four times: two alias
/// modes × two worker counts.
pub fn alias_rows(jobs: usize, smoke: bool) -> Vec<AliasRow> {
    let mirror = |jobs| alias_row("mirror", "DispatchMirror", "lock", Some(MIRROR_SEEDS), jobs);
    if smoke {
        return vec![mirror(jobs)];
    }
    let mut set: Vec<(&str, &str, &str)> = DRIVERS.to_vec();
    set.push(BUGGY_DRIVER);
    let mut rows: Vec<AliasRow> = set
        .iter()
        .map(|(stem, entry, prop)| alias_row(stem, entry, prop, None, jobs))
        .collect();
    rows.push(alias_row(
        "retry",
        "DispatchRetry",
        "lock",
        Some("DispatchRetry attempts > 0"),
        jobs,
    ));
    rows.push(mirror(jobs));
    rows
}

// ---------------------------------------------------------------------------
// Property-directed slicing + interval-oracle A/B
// ---------------------------------------------------------------------------

/// One program's {slice, intervals} A/B: the same full CEGAR run under
/// all four on/off combinations, reporting prover calls per cell,
/// wall-clock for the two corner cells, what the slicer removed, and
/// how often the numeric oracle answered a cube query. The passes are
/// transparent, so all four cells must agree on verdict and final
/// predicates (`identical`), and where ground truth is known the
/// verdict must match it (`truth_ok`).
#[derive(Debug, Clone)]
pub struct SliceRow {
    /// Program name.
    pub program: String,
    /// Checked property.
    pub config: String,
    /// Workload group: `table1` (the paper's drivers) or `counter`
    /// (generated arithmetic-guard drivers, the oracle's target).
    pub group: &'static str,
    /// Prover calls with both passes off (the pre-pass baseline).
    pub base_prover: u64,
    /// Prover calls with slicing only.
    pub slice_prover: u64,
    /// Prover calls with the interval oracle only.
    pub intervals_prover: u64,
    /// Prover calls with both passes on (the default configuration).
    pub opt_prover: u64,
    /// Wall-clock seconds, both passes off.
    pub base_secs: f64,
    /// Wall-clock seconds, both passes on.
    pub opt_secs: f64,
    /// Statements the slicer dropped (both-on run).
    pub stmts_dropped: usize,
    /// Statements before slicing.
    pub stmts_total: usize,
    /// Numeric-oracle answers (proved + disproved) across the both-on
    /// run's iterations.
    pub numeric_hits: u64,
    /// Human-readable verdict (shared by all four cells when `identical`).
    pub verdict: String,
    /// Verdict matches ground truth (always checked for generated
    /// counter drivers; for Table 1 drivers, the known expected verdict).
    pub truth_ok: bool,
    /// All four cells agreed on verdict and final predicates, and for a
    /// fixed slicing arm the oracle left every boolean program
    /// byte-identical.
    pub identical: bool,
}

impl SliceRow {
    /// Fraction of prover calls both passes together removed (negative
    /// if they added calls — reported honestly either way).
    pub fn prover_reduction(&self) -> f64 {
        reduction(self.base_prover, self.opt_prover)
    }
}

/// Renders the slice/interval A/B rows: one line per program with the
/// four prover-call cells, then a wall-clock and slicer summary line.
pub fn render_slice(rows: &[SliceRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<26} {:<8} {:>9} {:>9} {:>9} {:>9} {:>7}  truth identical\n",
        "program", "config", "thm(off)", "thm(slc)", "thm(int)", "thm(both)", "Δthm"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:<8} {:>9} {:>9} {:>9} {:>9} {:>6.1}%  {:<5} {}\n",
            r.program,
            r.config,
            r.base_prover,
            r.slice_prover,
            r.intervals_prover,
            r.opt_prover,
            r.prover_reduction() * 100.0,
            if r.truth_ok { "yes" } else { "NO" },
            if r.identical { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "{:<26} total: {:.2}s off vs {:.2}s on, sliced {}/{} stmts, \
             {} oracle hits — {}\n",
            "", r.base_secs, r.opt_secs, r.stmts_dropped, r.stmts_total, r.numeric_hits, r.verdict
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn slice_slam_run(
    source: &str,
    spec: &Spec,
    entry: &str,
    seeds: Option<&str>,
    slice: bool,
    intervals: bool,
    jobs: usize,
    trace_runs: Option<u64>,
) -> (slam::SlamRun, f64) {
    let mut options = SlamOptions {
        keep_bps: true,
        slice,
        c2bp: C2bpOptions {
            jobs,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    options.c2bp.cubes.numeric_oracle = intervals;
    if let Some(t) = trace_runs {
        options.trace_runs = t;
    }
    let t0 = Instant::now();
    let run = match seeds {
        Some(s) => {
            let seeds = parse_pred_file(s).expect("seed parses");
            slam::verify_seeded(source, spec, entry, seeds, &options)
        }
        None => slam::verify(source, spec, entry, &options),
    }
    .expect("slam run completes");
    (run, t0.elapsed().as_secs_f64())
}

/// Expected outcome for the truth check: `validated`, `error`, or no
/// expectation (`truth_ok` then just records agreement).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// The property must be validated.
    Validated,
    /// The seeded defect must be found.
    Error,
}

#[allow(clippy::too_many_arguments)]
fn slice_row(
    program: &str,
    source: &str,
    prop: &str,
    entry: &str,
    seeds: Option<&str>,
    group: &'static str,
    expect: Option<Expect>,
    jobs: usize,
    trace_runs: Option<u64>,
) -> SliceRow {
    let spec = spec_for(prop);
    let cell = |slice, intervals| {
        slice_slam_run(
            source, &spec, entry, seeds, slice, intervals, jobs, trace_runs,
        )
    };
    let (off_off, base_secs) = cell(false, false);
    let (on_off, _) = cell(true, false);
    let (off_on, _) = cell(false, true);
    let (on_on, opt_secs) = cell(true, true);
    let prover =
        |run: &slam::SlamRun| -> u64 { run.per_iteration.iter().map(|it| it.prover_calls).sum() };
    let numeric = |run: &slam::SlamRun| -> u64 {
        run.per_iteration
            .iter()
            .map(|it| it.numeric_proved + it.numeric_disproved)
            .sum()
    };
    let bps = |run: &slam::SlamRun| -> Vec<String> {
        run.per_iteration
            .iter()
            .map(|it| it.bp_text.clone().expect("keep_bps was set"))
            .collect()
    };
    let preds = |run: &slam::SlamRun| -> Vec<String> {
        run.final_preds.iter().map(|p| format!("{p:?}")).collect()
    };
    let all = [&off_off, &on_off, &off_on, &on_on];
    let identical = all
        .iter()
        .all(|r| format!("{:?}", r.verdict) == format!("{:?}", off_off.verdict))
        && all.iter().all(|r| preds(r) == preds(&off_off))
        // the oracle must never change an abstraction, only skip queries
        && bps(&on_on) == bps(&on_off)
        && bps(&off_on) == bps(&off_off);
    let truth_ok = match expect {
        Some(Expect::Validated) => matches!(on_on.verdict, SlamVerdict::Validated),
        Some(Expect::Error) => matches!(on_on.verdict, SlamVerdict::ErrorFound { .. }),
        None => true,
    };
    let (stmts_dropped, stmts_total) = on_on
        .slice
        .map(|s| (s.stmts_dropped, s.stmts_total))
        .unwrap_or((0, 0));
    SliceRow {
        program: program.to_string(),
        config: prop.to_string(),
        group,
        base_prover: prover(&off_off),
        slice_prover: prover(&on_off),
        intervals_prover: prover(&off_on),
        opt_prover: prover(&on_on),
        base_secs,
        opt_secs,
        stmts_dropped,
        stmts_total,
        numeric_hits: numeric(&on_on),
        verdict: match &on_on.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", on_on.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", on_on.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
        truth_ok,
        identical,
    }
}

/// The counter-shape generator parameters the A/B measures (the same
/// shape `corpus-emit` checks in at seed 0).
pub fn counter_params() -> corpusgen::GenParams {
    corpusgen::GenParams {
        statements: 5,
        depth: 2,
        pressure: 2,
        pointers: false,
        loops: true,
        counter: true,
    }
}

/// Slicing/interval A/B rows: the Table 1 drivers (plus the buggy
/// driver and the seeded `retry` run) as the regression guard, and
/// generated counter-shape drivers — bounded ascending loops with
/// `nK > 0` arithmetic guards — as the workload the interval oracle
/// targets. Counter verdicts are checked against the generator's
/// constructive ground truth. `smoke` restricts to one driver and one
/// counter pair for CI.
pub fn slice_rows(jobs: usize, smoke: bool) -> Vec<SliceRow> {
    let mut rows = Vec::new();
    let counter = |rows: &mut Vec<SliceRow>, family: &'static str, seed: u64, defect: bool| {
        let d = corpusgen::generate(family, &counter_params(), seed, defect);
        let expect = match d.truth {
            corpusgen::GroundTruth::Safe => Expect::Validated,
            corpusgen::GroundTruth::Defect { .. } => Expect::Error,
        };
        rows.push(slice_row(
            &d.name,
            &d.source,
            family,
            d.entry,
            None,
            "counter",
            Some(expect),
            jobs,
            // generated drivers end in nondeterministic loop tails; hand
            // over to the low-weight trace fallback quickly
            Some(2_000),
        ));
    };
    if smoke {
        let source = read(corpus_dir().join("drivers").join("openclos.c"));
        rows.push(slice_row(
            "openclos",
            &source,
            "lock",
            "DispatchOpenClose",
            None,
            "table1",
            Some(Expect::Validated),
            jobs,
            None,
        ));
        counter(&mut rows, "lock", 0, false);
        counter(&mut rows, "lock", 0, true);
        return rows;
    }
    let mut set: Vec<(&str, &str, &str, Expect)> = DRIVERS
        .iter()
        .map(|&(stem, entry, prop)| (stem, entry, prop, Expect::Validated))
        .collect();
    set.push((
        BUGGY_DRIVER.0,
        BUGGY_DRIVER.1,
        BUGGY_DRIVER.2,
        Expect::Error,
    ));
    for (stem, entry, prop, expect) in set {
        let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
        rows.push(slice_row(
            stem,
            &source,
            prop,
            entry,
            None,
            "table1",
            Some(expect),
            jobs,
            None,
        ));
    }
    let source = read(corpus_dir().join("drivers").join("retry.c"));
    rows.push(slice_row(
        "retry",
        &source,
        "lock",
        "DispatchRetry",
        Some("DispatchRetry attempts > 0"),
        "table1",
        Some(Expect::Validated),
        jobs,
        None,
    ));
    for family in corpusgen::FAMILIES {
        for seed in [0u64, 1] {
            for defect in [false, true] {
                counter(&mut rows, family, seed, defect);
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Cube-engine (AllSAT enumeration vs paper search) A/B
// ---------------------------------------------------------------------------

/// One program's search-vs-enumerate cube-engine A/B: the same full
/// CEGAR run under both engines, reporting prover calls, incremental
/// session solves, core-minimization solves, and wall-clock per arm,
/// plus the enumeration-only counters (models accepted, per-goal
/// fallbacks). The engines answer every goal identically, so the runs
/// must agree on per-iteration boolean programs, verdict, and final
/// predicates (`identical`).
#[derive(Debug, Clone)]
pub struct EnumRow {
    /// Program name.
    pub program: String,
    /// Checked property.
    pub config: String,
    /// Workload group: `table1` (the paper's drivers) or `counter`
    /// (generated arithmetic-guard drivers).
    pub group: &'static str,
    /// Theorem-prover calls under the cube search.
    pub search_prover: u64,
    /// Theorem-prover calls under AllSAT enumeration.
    pub enum_prover: u64,
    /// Incremental-session solver runs, search arm.
    pub search_solves: u64,
    /// Incremental-session solver runs, enumerate arm.
    pub enum_solves: u64,
    /// Core-minimization solver runs, search arm.
    pub search_minimize: u64,
    /// Core-minimization solver runs, enumerate arm.
    pub enum_minimize: u64,
    /// Models accepted during AllSAT enumeration.
    pub models: u64,
    /// Goals where enumeration fell back to the search.
    pub fallbacks: u64,
    /// Wall-clock seconds, search arm.
    pub search_secs: f64,
    /// Wall-clock seconds, enumerate arm.
    pub enum_secs: f64,
    /// Human-readable verdict (shared by both arms when `identical`).
    pub verdict: String,
    /// Verdict matches ground truth where one is known.
    pub truth_ok: bool,
    /// Both arms agreed: byte-identical per-iteration boolean programs,
    /// same verdict, same final predicates.
    pub identical: bool,
}

impl EnumRow {
    /// Fraction of prover calls enumeration removed (negative if it
    /// added calls — reported honestly either way).
    pub fn prover_reduction(&self) -> f64 {
        reduction(self.search_prover, self.enum_prover)
    }
}

/// Renders the cube-engine A/B rows: one line per program with the
/// prover-call and session-solve cells, then a wall-clock summary line.
pub fn render_enum(rows: &[EnumRow], title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<26} {:<8} {:>9} {:>9} {:>7} {:>9} {:>9} {:>8} {:>8} {:>7} {:>5}  truth identical\n",
        "program",
        "config",
        "thm(srch)",
        "thm(enum)",
        "Δthm",
        "slv(srch)",
        "slv(enum)",
        "min(s/e)",
        "models",
        "fallbk",
        "",
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:<8} {:>9} {:>9} {:>6.1}% {:>9} {:>9} {:>8} {:>8} {:>7} {:>5}  {:<5} {}\n",
            r.program,
            r.config,
            r.search_prover,
            r.enum_prover,
            r.prover_reduction() * 100.0,
            r.search_solves,
            r.enum_solves,
            format!("{}/{}", r.search_minimize, r.enum_minimize),
            r.models,
            r.fallbacks,
            "",
            if r.truth_ok { "yes" } else { "NO" },
            if r.identical { "yes" } else { "NO" }
        ));
        out.push_str(&format!(
            "{:<26} total: {:.2}s search vs {:.2}s enumerate — {}\n",
            "", r.search_secs, r.enum_secs, r.verdict
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn enum_slam_run(
    source: &str,
    spec: &Spec,
    entry: &str,
    seeds: Option<&str>,
    engine: c2bp::CubeEngine,
    numeric_oracle: bool,
    jobs: usize,
    trace_runs: Option<u64>,
) -> (slam::SlamRun, f64) {
    let mut options = SlamOptions {
        keep_bps: true,
        c2bp: C2bpOptions {
            jobs,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    options.c2bp.cubes.engine = engine;
    options.c2bp.cubes.numeric_oracle = numeric_oracle;
    if let Some(t) = trace_runs {
        options.trace_runs = t;
    }
    let t0 = Instant::now();
    let run = match seeds {
        Some(s) => {
            let seeds = parse_pred_file(s).expect("seed parses");
            slam::verify_seeded(source, spec, entry, seeds, &options)
        }
        None => slam::verify(source, spec, entry, &options),
    }
    .expect("slam run completes");
    (run, t0.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_arguments)]
fn enum_row(
    program: &str,
    source: &str,
    prop: &str,
    entry: &str,
    seeds: Option<&str>,
    group: &'static str,
    expect: Option<Expect>,
    jobs: usize,
    trace_runs: Option<u64>,
) -> EnumRow {
    use c2bp::CubeEngine;
    let spec = spec_for(prop);
    // paper defaults (numeric oracle on) for both arms: the enumerate
    // engine never consults the per-cube oracle, so this is the honest
    // end-to-end default-vs-default comparison
    let arm = |engine| enum_slam_run(source, &spec, entry, seeds, engine, true, jobs, trace_runs);
    let (search, search_secs) = arm(CubeEngine::Search);
    let (en, enum_secs) = arm(CubeEngine::Enumerate);
    let bps = |run: &slam::SlamRun| -> Vec<String> {
        run.per_iteration
            .iter()
            .map(|it| it.bp_text.clone().expect("keep_bps was set"))
            .collect()
    };
    let preds = |run: &slam::SlamRun| -> Vec<String> {
        run.final_preds.iter().map(|p| format!("{p:?}")).collect()
    };
    let prover =
        |run: &slam::SlamRun| -> u64 { run.per_iteration.iter().map(|it| it.prover_calls).sum() };
    let solves = |run: &slam::SlamRun| -> u64 {
        run.per_iteration.iter().map(|it| it.sessions.solves).sum()
    };
    let minimize = |run: &slam::SlamRun| -> u64 {
        run.per_iteration
            .iter()
            .map(|it| it.sessions.minimize_solves)
            .sum()
    };
    let identical = bps(&search) == bps(&en)
        && format!("{:?}", search.verdict) == format!("{:?}", en.verdict)
        && preds(&search) == preds(&en);
    let truth_ok = match expect {
        Some(Expect::Validated) => matches!(en.verdict, SlamVerdict::Validated),
        Some(Expect::Error) => matches!(en.verdict, SlamVerdict::ErrorFound { .. }),
        None => true,
    };
    EnumRow {
        program: program.to_string(),
        config: prop.to_string(),
        group,
        search_prover: prover(&search),
        enum_prover: prover(&en),
        search_solves: solves(&search),
        enum_solves: solves(&en),
        search_minimize: minimize(&search),
        enum_minimize: minimize(&en),
        models: en.per_iteration.iter().map(|it| it.models_enumerated).sum(),
        fallbacks: en.per_iteration.iter().map(|it| it.enum_fallbacks).sum(),
        search_secs,
        enum_secs,
        verdict: match &en.verdict {
            SlamVerdict::Validated => format!("validated ({} iters)", en.iterations),
            SlamVerdict::ErrorFound { .. } => format!("ERROR FOUND ({} iters)", en.iterations),
            SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
        },
        truth_ok,
        identical,
    }
}

/// Cube-engine A/B rows: the Table 1 drivers (plus the buggy driver and
/// the seeded `retry` run) as the wall-clock regression guard, and
/// generated counter-shape drivers as the arithmetic-guard workload.
/// `smoke` restricts to one driver and one counter pair for CI.
pub fn enum_rows(jobs: usize, smoke: bool) -> Vec<EnumRow> {
    let mut rows = Vec::new();
    let counter = |rows: &mut Vec<EnumRow>, family: &'static str, seed: u64, defect: bool| {
        let d = corpusgen::generate(family, &counter_params(), seed, defect);
        let expect = match d.truth {
            corpusgen::GroundTruth::Safe => Expect::Validated,
            corpusgen::GroundTruth::Defect { .. } => Expect::Error,
        };
        rows.push(enum_row(
            &d.name,
            &d.source,
            family,
            d.entry,
            None,
            "counter",
            Some(expect),
            jobs,
            Some(2_000),
        ));
    };
    if smoke {
        let source = read(corpus_dir().join("drivers").join("openclos.c"));
        rows.push(enum_row(
            "openclos",
            &source,
            "lock",
            "DispatchOpenClose",
            None,
            "table1",
            Some(Expect::Validated),
            jobs,
            None,
        ));
        counter(&mut rows, "lock", 0, false);
        counter(&mut rows, "lock", 0, true);
        return rows;
    }
    let mut set: Vec<(&str, &str, &str, Expect)> = DRIVERS
        .iter()
        .map(|&(stem, entry, prop)| (stem, entry, prop, Expect::Validated))
        .collect();
    set.push((
        BUGGY_DRIVER.0,
        BUGGY_DRIVER.1,
        BUGGY_DRIVER.2,
        Expect::Error,
    ));
    for (stem, entry, prop, expect) in set {
        let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
        rows.push(enum_row(
            stem,
            &source,
            prop,
            entry,
            None,
            "table1",
            Some(expect),
            jobs,
            None,
        ));
    }
    let source = read(corpus_dir().join("drivers").join("retry.c"));
    rows.push(enum_row(
        "retry",
        &source,
        "lock",
        "DispatchRetry",
        Some("DispatchRetry attempts > 0"),
        "table1",
        Some(Expect::Validated),
        jobs,
        None,
    ));
    for family in corpusgen::FAMILIES {
        for seed in [0u64, 1] {
            for defect in [false, true] {
                counter(&mut rows, family, seed, defect);
            }
        }
    }
    rows
}

/// One point of the predicate-count scaling sweep: a single `F_V` goal
/// over the chain predicates `x < 1, …, x < k` with goal `x + y < 0`
/// (the unconstrained `y` keeps every consistent sign pattern
/// undetermined, so nothing short-circuits), cone of influence and the
/// numeric oracle off to isolate the engine, cube length unbounded.
/// The search arm enumerates every consistent cube and grows
/// exponentially in `k`; enumeration solves one AllSAT loop per
/// polarity — linear in `k` — then extracts the cubes combinatorially.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Number of chain predicates.
    pub k: usize,
    /// Prover queries, search arm (`None` past the search cap).
    pub search_queries: Option<u64>,
    /// Prover queries, enumerate arm.
    pub enum_queries: u64,
    /// Wall-clock seconds, search arm.
    pub search_secs: Option<f64>,
    /// Wall-clock seconds, enumerate arm.
    pub enum_secs: f64,
    /// Models the enumerate arm accepted.
    pub models: u64,
    /// Whether the two arms produced the same boolean expression (true
    /// vacuously past the search cap).
    pub identical: bool,
}

/// Runs the scaling sweep for `k` in `4..=max_k`, running the search
/// arm only through `search_cap` (its query count grows exponentially;
/// the cap is reported, never silent).
pub fn sweep_rows(max_k: usize, search_cap: usize) -> Vec<SweepRow> {
    use c2bp::cubes::CubeSearch;
    use c2bp::{CubeEngine, CubeOptions, ScopeVar};
    use cparse::ast::Type;
    use cparse::parser::{parse_expr, parse_program};
    use cparse::typeck::TypeEnv;
    let program = parse_program("int x, y; void holder() { ; }").expect("sweep program parses");
    let env = TypeEnv::new(&program);
    let lookup = |name: &str| match name {
        "x" | "y" => Some(Type::Int),
        _ => None,
    };
    let goal = parse_expr("x + y < 0").expect("sweep goal parses");
    let mut rows = Vec::new();
    for k in 4..=max_k {
        let vars: Vec<ScopeVar> = (1..=k)
            .map(|i| {
                let text = format!("x < {i}");
                ScopeVar {
                    expr: parse_expr(&text).expect("sweep predicate parses"),
                    name: text,
                }
            })
            .collect();
        let arm = |engine| {
            let options = CubeOptions {
                engine,
                cone_of_influence: false,
                numeric_oracle: false,
                max_cube_len: None,
                ..CubeOptions::default()
            };
            let mut prover = prover::Prover::new();
            let mut cs = CubeSearch::new(&mut prover, &env, &lookup, options);
            let t0 = Instant::now();
            let out = cs.largest_implying_disjunction(&vars, &goal);
            let secs = t0.elapsed().as_secs_f64();
            let (queries, models) = (cs.prover.stats.queries, cs.stats.models_enumerated);
            (out, queries, models, secs)
        };
        let (enum_out, enum_queries, models, enum_secs) = arm(CubeEngine::Enumerate);
        let search = (k <= search_cap).then(|| arm(CubeEngine::Search));
        rows.push(SweepRow {
            k,
            search_queries: search.as_ref().map(|s| s.1),
            enum_queries,
            search_secs: search.as_ref().map(|s| s.3),
            enum_secs,
            models,
            identical: search.as_ref().is_none_or(|s| s.0 == enum_out),
        });
    }
    rows
}

/// Renders the scaling sweep with an explicit note about the search cap.
pub fn render_sweep(rows: &[SweepRow], search_cap: usize, title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:>4} {:>10} {:>10} {:>10} {:>10} {:>8}  identical\n",
        "k", "qry(srch)", "qry(enum)", "s(srch)", "s(enum)", "models"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>4} {:>10} {:>10} {:>10} {:>10.3} {:>8}  {}\n",
            r.k,
            r.search_queries
                .map_or("capped".to_string(), |q| q.to_string()),
            r.enum_queries,
            r.search_secs.map_or("-".to_string(), |s| format!("{s:.3}")),
            r.enum_secs,
            r.models,
            if r.identical { "yes" } else { "NO" }
        ));
    }
    out.push_str(&format!(
        "search arm capped at k = {search_cap} (its query count grows exponentially)\n"
    ));
    out
}

// ---------------------------------------------------------------------------
// Verification-service (scheduler + disk store) cold/warm A/B
// ---------------------------------------------------------------------------

/// One job's cold-vs-warm comparison through the [`slam::Scheduler`]:
/// the same batch run twice against the same on-disk store — once cold
/// (empty store) and once warm (store populated by the cold run's
/// checkpoint, reopened by a fresh scheduler as a new process would).
/// The runs must agree exactly (`identical`): byte-identical
/// per-iteration boolean programs, same verdict (also checked against
/// generator ground truth where known), same final predicates. Only
/// the prover-call count may — and on reuse-heavy jobs must — drop.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Job label.
    pub name: String,
    /// Spec family the job was checked against.
    pub spec: String,
    /// Workload group: `table1` (the paper's drivers) or `counter`
    /// (generated arithmetic-guard drivers).
    pub group: &'static str,
    /// Human-readable outcome (shared by both runs when `identical`).
    pub outcome: String,
    /// Theorem-prover calls, cold run.
    pub cold_prover: u64,
    /// Theorem-prover calls, warm run.
    pub warm_prover: u64,
    /// Memo records hydrated from the disk store before the warm run.
    pub warm_hydrated: usize,
    /// Abstraction units the warm run replayed from the memo.
    pub warm_reused: usize,
    /// Verdict matches ground truth where one is known.
    pub truth_ok: bool,
    /// Cold and warm agreed on every observable output.
    pub identical: bool,
}

impl ServeRow {
    /// Fraction of prover calls the warm run removed.
    pub fn prover_reduction(&self) -> f64 {
        reduction(self.cold_prover, self.warm_prover)
    }
}

/// Batch-level aggregates for one serve A/B run.
#[derive(Debug, Clone)]
pub struct ServeTotals {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads the scheduler ran with.
    pub workers: usize,
    /// Wall-clock seconds, cold batch.
    pub cold_secs: f64,
    /// Wall-clock seconds, warm batch.
    pub warm_secs: f64,
    /// Theorem-prover calls summed over the batch, cold.
    pub cold_prover: u64,
    /// Theorem-prover calls summed over the batch, warm.
    pub warm_prover: u64,
    /// Shared prover-cache hit rate over the cold batch.
    pub cold_hit_rate: f64,
    /// Shared prover-cache hit rate over the warm batch.
    pub warm_hit_rate: f64,
    /// Records in the disk store after the cold run's checkpoint.
    pub store_entries: usize,
}

impl ServeTotals {
    /// Batch throughput, cold run.
    pub fn cold_jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.cold_secs.max(1e-9)
    }

    /// Batch throughput, warm run.
    pub fn warm_jobs_per_sec(&self) -> f64 {
        self.jobs as f64 / self.warm_secs.max(1e-9)
    }

    /// Fraction of prover calls the warm batch removed.
    pub fn prover_reduction(&self) -> f64 {
        reduction(self.cold_prover, self.warm_prover)
    }
}

fn serve_options(trace_runs: Option<u64>) -> SlamOptions {
    let mut options = SlamOptions {
        keep_bps: true,
        c2bp: C2bpOptions {
            // one solver thread per job: the scheduler's pool is the
            // parallelism under test
            jobs: 1,
            ..C2bpOptions::paper_defaults()
        },
        ..SlamOptions::default()
    };
    if let Some(t) = trace_runs {
        options.trace_runs = t;
    }
    options
}

/// The serve A/B batch: the Table 1 drivers (plus the buggy driver) and
/// the generated counter corpus, as [`slam::Job`]s with their workload
/// group and expected verdict. The seeded `retry` driver is absent —
/// jobs carry no seed predicates (an honest protocol gap, see
/// EXPERIMENTS.md). `smoke` restricts to one driver and one counter
/// pair for CI.
pub fn serve_jobs(smoke: bool) -> Vec<(slam::Job, &'static str, Expect)> {
    let mut out = Vec::new();
    let driver = |stem: &str, entry: &str, prop: &str, expect: Expect| {
        let source = read(corpus_dir().join("drivers").join(format!("{stem}.c")));
        let mut job = slam::Job::new(stem, source, prop, entry);
        job.options = serve_options(None);
        (job, "table1", expect)
    };
    let counter = |family: &'static str, seed: u64, defect: bool| {
        let d = corpusgen::generate(family, &counter_params(), seed, defect);
        let expect = match d.truth {
            corpusgen::GroundTruth::Safe => Expect::Validated,
            corpusgen::GroundTruth::Defect { .. } => Expect::Error,
        };
        let mut job = slam::Job::new(&d.name, &d.source, family, d.entry);
        job.options = serve_options(Some(2_000));
        (job, "counter", expect)
    };
    if smoke {
        out.push(driver(
            "openclos",
            "DispatchOpenClose",
            "lock",
            Expect::Validated,
        ));
        out.push(counter("lock", 0, false));
        out.push(counter("lock", 0, true));
        return out;
    }
    for &(stem, entry, prop) in &DRIVERS {
        out.push(driver(stem, entry, prop, Expect::Validated));
    }
    out.push(driver(
        BUGGY_DRIVER.0,
        BUGGY_DRIVER.1,
        BUGGY_DRIVER.2,
        Expect::Error,
    ));
    for family in corpusgen::FAMILIES {
        for seed in [0u64, 1] {
            for defect in [false, true] {
                out.push(counter(family, seed, defect));
            }
        }
    }
    out
}

/// Runs the serve A/B: the batch cold against a fresh on-disk store,
/// checkpoint, then the same batch warm through a *new* scheduler that
/// reopens the store (exactly what a second `slam-serve` process sees).
/// The store lives in a temp file and is removed afterwards.
pub fn serve_ab(workers: usize, smoke: bool) -> (Vec<ServeRow>, ServeTotals) {
    let spec_jobs = serve_jobs(smoke);
    let jobs: Vec<slam::Job> = spec_jobs.iter().map(|(j, _, _)| j.clone()).collect();
    let store_path = std::env::temp_dir().join(format!(
        "slam-serve-ab-{}{}.store",
        std::process::id(),
        if smoke { "-smoke" } else { "" }
    ));
    let _ = std::fs::remove_file(&store_path);

    let cold_sched = slam::Scheduler::with_store(&store_path);
    let t0 = Instant::now();
    let cold = cold_sched.run_batch(&jobs, workers, &|_| {});
    let cold_secs = t0.elapsed().as_secs_f64();
    let cold_hit_rate = cold_sched.shared_cache().snapshot().hit_rate();
    let store_entries = cold_sched.checkpoint().expect("cold checkpoint succeeds");
    drop(cold_sched); // releases the store lock for the warm opener

    let warm_sched = slam::Scheduler::with_store(&store_path);
    for w in warm_sched.store_warnings() {
        eprintln!("serve_ab: unexpected store warning: {w}");
    }
    let t0 = Instant::now();
    let warm = warm_sched.run_batch(&jobs, workers, &|_| {});
    let warm_secs = t0.elapsed().as_secs_f64();
    let warm_hit_rate = warm_sched.shared_cache().snapshot().hit_rate();
    let _ = std::fs::remove_file(&store_path);

    let bps = |run: &slam::SlamRun| -> Vec<String> {
        run.per_iteration
            .iter()
            .map(|it| it.bp_text.clone().expect("keep_bps was set"))
            .collect()
    };
    let rows = spec_jobs
        .iter()
        .zip(cold.iter().zip(&warm))
        .map(|((job, group, expect), (c, w))| {
            let identical = match (&c.run, &w.run) {
                (Ok(c), Ok(w)) => {
                    bps(c) == bps(w)
                        && format!("{:?}", c.verdict) == format!("{:?}", w.verdict)
                        && format!("{:?}", c.final_preds) == format!("{:?}", w.final_preds)
                }
                _ => false,
            };
            let (outcome, truth_ok) = match &w.run {
                Ok(run) => (
                    match &run.verdict {
                        SlamVerdict::Validated => format!("validated ({} iters)", run.iterations),
                        SlamVerdict::ErrorFound { .. } => {
                            format!("ERROR FOUND ({} iters)", run.iterations)
                        }
                        SlamVerdict::GaveUp { reason } => format!("gave up: {reason}"),
                    },
                    match expect {
                        Expect::Validated => matches!(run.verdict, SlamVerdict::Validated),
                        Expect::Error => matches!(run.verdict, SlamVerdict::ErrorFound { .. }),
                    },
                ),
                Err(e) => (format!("FAILED: {}", e.message), false),
            };
            ServeRow {
                name: job.name.clone(),
                spec: job.spec.clone(),
                group,
                outcome,
                cold_prover: c.prover_calls,
                warm_prover: w.prover_calls,
                warm_hydrated: w.memo_hydrated,
                warm_reused: w.reused_units,
                truth_ok,
                identical,
            }
        })
        .collect::<Vec<ServeRow>>();
    let totals = ServeTotals {
        jobs: jobs.len(),
        workers,
        cold_secs,
        warm_secs,
        cold_prover: rows.iter().map(|r| r.cold_prover).sum(),
        warm_prover: rows.iter().map(|r| r.warm_prover).sum(),
        cold_hit_rate,
        warm_hit_rate,
        store_entries,
    };
    (rows, totals)
}

/// Renders the serve A/B rows and the batch summary.
pub fn render_serve(rows: &[ServeRow], totals: &ServeTotals, title: &str) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<26} {:<9} {:>10} {:>10} {:>7} {:>9} {:>8}  truth identical  outcome\n",
        "job", "spec", "thm(cold)", "thm(warm)", "Δthm", "hydrated", "replayed",
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<26} {:<9} {:>10} {:>10} {:>6.1}% {:>9} {:>8}  {:<5} {:<9}  {}\n",
            r.name,
            r.spec,
            r.cold_prover,
            r.warm_prover,
            r.prover_reduction() * 100.0,
            r.warm_hydrated,
            r.warm_reused,
            if r.truth_ok { "yes" } else { "NO" },
            if r.identical { "yes" } else { "NO" },
            r.outcome,
        ));
    }
    out.push_str(&format!(
        "batch: {} jobs x {} workers — cold {:.2}s ({:.2} jobs/s, {:.1}% cache hits) \
         vs warm {:.2}s ({:.2} jobs/s, {:.1}% cache hits)\n\
         prover calls: {} -> {} ({:.1}% reduction); store: {} records after checkpoint\n",
        totals.jobs,
        totals.workers,
        totals.cold_secs,
        totals.cold_jobs_per_sec(),
        totals.cold_hit_rate * 100.0,
        totals.warm_secs,
        totals.warm_jobs_per_sec(),
        totals.warm_hit_rate * 100.0,
        totals.cold_prover,
        totals.warm_prover,
        totals.prover_reduction() * 100.0,
        totals.store_entries,
    ));
    out
}

/// Minimal JSON emission for the bench binaries' `--json <path>` output
/// (hand-rolled: the workspace takes no serialization dependency).
pub mod json {
    use super::{
        AliasRow, CegarRow, EnumRow, IncRow, PruneRow, Row, ServeRow, ServeTotals, SliceRow,
        SweepRow,
    };

    pub(crate) fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    pub(crate) fn array(items: impl Iterator<Item = String>) -> String {
        let body: Vec<String> = items.collect();
        format!("[\n{}\n]\n", body.join(",\n"))
    }

    /// Table rows as a JSON array of objects.
    pub fn rows(rows: &[Row]) -> String {
        array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"lines\": {}, \
                 \"predicates\": {}, \"prover_calls\": {}, \"pruned_updates\": {}, \
                 \"seconds\": {:.6}, \"jobs\": {}, \"cache_hits\": {}, \
                 \"cache_hit_rate\": {:.6}, \"phases\": {{\"plan\": {:.6}, \
                 \"solve\": {:.6}, \"merge\": {:.6}}}, \"outcome\": \"{}\"}}",
                esc(&r.program),
                esc(&r.config),
                r.lines,
                r.predicates,
                r.prover_calls,
                r.pruned_updates,
                r.seconds,
                r.jobs,
                r.cache_hits,
                r.cache_hit_rate,
                r.phases.plan,
                r.phases.solve,
                r.phases.merge,
                esc(&r.outcome)
            )
        }))
    }

    /// Pruning A/B rows as a JSON array of objects.
    pub fn prune_rows(rows: &[PruneRow]) -> String {
        array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"unpruned\": {}, \"pruned\": {}, \
                 \"pruned_updates\": {}, \"saving\": {:.6}}}",
                esc(&r.program),
                r.unpruned,
                r.pruned,
                r.pruned_updates,
                r.saving()
            )
        }))
    }

    /// CEGAR reuse A/B rows as a JSON array of objects with nested
    /// per-iteration arrays.
    pub fn cegar_rows(rows: &[CegarRow]) -> String {
        array(rows.iter().map(|r| {
            let iters: Vec<String> = r
                .iterations
                .iter()
                .map(|it| {
                    format!(
                        "    {{\"predicates\": {}, \"scratch_prover_calls\": {}, \
                         \"reuse_prover_calls\": {}, \"saving\": {:.6}, \
                         \"reused_units\": {}, \"cache_hit_rate\": {:.6}, \
                         \"bdd_nodes\": {}}}",
                        it.predicates,
                        it.scratch_prover_calls,
                        it.reuse_prover_calls,
                        it.saving(),
                        it.reused_units,
                        it.cache_hit_rate,
                        it.bdd_nodes
                    )
                })
                .collect();
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"verdict\": \"{}\", \
                 \"scratch_secs\": {:.6}, \"reuse_secs\": {:.6}, \"identical\": {}, \
                 \"iterations\": [\n{}\n  ]}}",
                esc(&r.program),
                esc(&r.config),
                esc(&r.verdict),
                r.scratch_secs,
                r.reuse_secs,
                r.identical,
                iters.join(",\n")
            )
        }))
    }

    /// Alias-precision A/B rows as a JSON array of objects.
    pub fn alias_rows(rows: &[AliasRow]) -> String {
        array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"verdict\": \"{}\", \
                 \"may_pairs\": {{\"unify\": {}, \"inclusion\": {}, \"reduction\": {:.6}}}, \
                 \"alias_disjuncts\": {{\"unify\": {}, \"inclusion\": {}, \
                 \"reduction\": {:.6}}}, \"prover_calls\": {{\"unify\": {}, \
                 \"inclusion\": {}, \"reduction\": {:.6}}}, \"unify_secs\": {:.6}, \
                 \"inclusion_secs\": {:.6}, \"subset_ok\": {}, \"identical\": {}}}",
                esc(&r.program),
                esc(&r.config),
                esc(&r.verdict),
                r.unify_may,
                r.inclusion_may,
                r.may_reduction(),
                r.unify_disjuncts,
                r.inclusion_disjuncts,
                r.disjunct_reduction(),
                r.unify_prover,
                r.inclusion_prover,
                r.prover_reduction(),
                r.unify_secs,
                r.inclusion_secs,
                r.subset_ok,
                r.identical
            )
        }))
    }

    /// Slicing/interval A/B rows as a JSON array of objects.
    pub fn slice_rows(rows: &[SliceRow]) -> String {
        array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"group\": \"{}\", \
                 \"prover_calls\": {{\"base\": {}, \"slice\": {}, \"intervals\": {}, \
                 \"both\": {}, \"reduction\": {:.6}}}, \"base_secs\": {:.6}, \
                 \"opt_secs\": {:.6}, \"stmts_dropped\": {}, \"stmts_total\": {}, \
                 \"numeric_hits\": {}, \"verdict\": \"{}\", \"truth_ok\": {}, \
                 \"identical\": {}}}",
                esc(&r.program),
                esc(&r.config),
                esc(r.group),
                r.base_prover,
                r.slice_prover,
                r.intervals_prover,
                r.opt_prover,
                r.prover_reduction(),
                r.base_secs,
                r.opt_secs,
                r.stmts_dropped,
                r.stmts_total,
                r.numeric_hits,
                esc(&r.verdict),
                r.truth_ok,
                r.identical
            )
        }))
    }

    /// Cube-engine A/B rows plus the scaling sweep as one JSON object.
    pub fn enum_report(rows: &[EnumRow], sweep: &[SweepRow]) -> String {
        let drivers = array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"group\": \"{}\", \
                 \"prover_calls\": {{\"search\": {}, \"enumerate\": {}, \
                 \"reduction\": {:.6}}}, \"session_solves\": {{\"search\": {}, \
                 \"enumerate\": {}}}, \"minimize_solves\": {{\"search\": {}, \
                 \"enumerate\": {}}}, \"models\": {}, \"fallbacks\": {}, \
                 \"search_secs\": {:.6}, \"enum_secs\": {:.6}, \
                 \"verdict\": \"{}\", \"truth_ok\": {}, \"identical\": {}}}",
                esc(&r.program),
                esc(&r.config),
                esc(r.group),
                r.search_prover,
                r.enum_prover,
                r.prover_reduction(),
                r.search_solves,
                r.enum_solves,
                r.search_minimize,
                r.enum_minimize,
                r.models,
                r.fallbacks,
                r.search_secs,
                r.enum_secs,
                esc(&r.verdict),
                r.truth_ok,
                r.identical
            )
        }));
        let sweep = array(sweep.iter().map(|r| {
            format!(
                "  {{\"k\": {}, \"search_queries\": {}, \"enum_queries\": {}, \
                 \"models\": {}, \"identical\": {}}}",
                r.k,
                r.search_queries
                    .map_or("null".to_string(), |q| q.to_string()),
                r.enum_queries,
                r.models,
                r.identical
            )
        }));
        format!("{{\"drivers\": {drivers}, \"sweep\": {sweep}}}\n")
    }

    /// Serve (cold/warm) A/B rows plus batch totals as one JSON object.
    pub fn serve_report(rows: &[ServeRow], totals: &ServeTotals) -> String {
        let jobs = array(rows.iter().map(|r| {
            format!(
                "  {{\"name\": \"{}\", \"spec\": \"{}\", \"group\": \"{}\", \
                 \"prover_calls\": {{\"cold\": {}, \"warm\": {}, \
                 \"reduction\": {:.6}}}, \"warm_hydrated\": {}, \
                 \"warm_reused\": {}, \"outcome\": \"{}\", \"truth_ok\": {}, \
                 \"identical\": {}}}",
                esc(&r.name),
                esc(&r.spec),
                esc(r.group),
                r.cold_prover,
                r.warm_prover,
                r.prover_reduction(),
                r.warm_hydrated,
                r.warm_reused,
                esc(&r.outcome),
                r.truth_ok,
                r.identical
            )
        }));
        format!(
            "{{\"jobs\": {jobs}, \"totals\": {{\"jobs\": {}, \"workers\": {}, \
             \"cold_jobs_per_sec\": {:.6}, \"warm_jobs_per_sec\": {:.6}, \
             \"prover_calls\": {{\"cold\": {}, \"warm\": {}, \"reduction\": {:.6}}}, \
             \"cache_hit_rate\": {{\"cold\": {:.6}, \"warm\": {:.6}}}, \
             \"store_entries\": {}}}}}\n",
            totals.jobs,
            totals.workers,
            totals.cold_jobs_per_sec(),
            totals.warm_jobs_per_sec(),
            totals.cold_prover,
            totals.warm_prover,
            totals.prover_reduction(),
            totals.cold_hit_rate,
            totals.warm_hit_rate,
            totals.store_entries
        )
    }

    /// Incremental A/B rows as a JSON array of objects.
    pub fn inc_rows(rows: &[IncRow]) -> String {
        array(rows.iter().map(|r| {
            format!(
                "  {{\"program\": \"{}\", \"config\": \"{}\", \"prover_calls\": {}, \
                 \"incremental_secs\": {:.6}, \"baseline_secs\": {:.6}, \
                 \"speedup\": {:.6}, \"session_solves\": {}, \
                 \"session_core_hits\": {}, \"identical\": {}}}",
                esc(&r.program),
                esc(&r.config),
                r.prover_calls,
                r.incremental_secs,
                r.baseline_secs,
                r.speedup(),
                r.session_solves,
                r.session_core_hits,
                r.identical
            )
        }))
    }
}

/// Parses an optional `--json <path>` from a bench binary's arguments.
pub fn json_path_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--json" {
            match iter.next() {
                Some(path) => return Some(PathBuf::from(path)),
                None => {
                    eprintln!("usage: --json <path>");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// True if the bare flag `name` appears in the binary's arguments.
pub fn flag_in_args(name: &str) -> bool {
    std::env::args().skip(1).any(|a| a == name)
}

/// Writes `content` to `path`, exiting with a message on failure.
pub fn write_json(path: &std::path::Path, content: &str) {
    if let Err(e) = std::fs::write(path, content) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", path.display());
}

/// Parses an optional `--jobs N` from a bench binary's arguments.
/// Returns 0 (defer to `C2BP_JOBS`) when absent; exits on a malformed
/// value so the harnesses share one error message.
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        if flag == "--jobs" {
            match iter.next().and_then(|n| n.parse().ok()) {
                Some(j) if j > 0 => return j,
                _ => {
                    eprintln!("usage: --jobs N (N >= 1)");
                    std::process::exit(2);
                }
            }
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_present() {
        let dir = corpus_dir();
        assert!(dir.join("toys/partition.c").exists(), "{dir:?}");
        assert!(dir.join("drivers/floppy.c").exists());
    }

    #[test]
    fn partition_row_matches_paper_shape() {
        let row = run_toy("partition", "partition", &C2bpOptions::paper_defaults());
        assert_eq!(row.predicates, 4);
        assert!(row.prover_calls > 0);
        assert_eq!(row.outcome, "invariants proved");
    }

    #[test]
    fn render_produces_a_table() {
        let rows = vec![Row {
            program: "p".into(),
            config: "-".into(),
            lines: 1,
            predicates: 2,
            prover_calls: 3,
            pruned_updates: 0,
            seconds: 0.5,
            jobs: 1,
            cache_hits: 1,
            cache_hit_rate: 0.25,
            phases: c2bp::PhaseSeconds::default(),
            outcome: "ok".into(),
        }];
        let text = render(&rows, "T");
        assert!(text.contains("thm calls"));
        assert!(text.contains("p "));
    }
}
