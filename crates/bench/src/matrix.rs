//! The matrix regression wall: every spec-registry family crossed with
//! a seeded generated corpus, run under {reuse on/off} × {1, 4 workers},
//! with every verdict checked against the generator's ground truth.
//!
//! The paper's Table 1 is eight hand-written drivers against one
//! property; nothing that small can tell an optimisation lever from
//! measurement noise. The matrix manufactures the missing workload: in
//! full mode, 7 families × 36 seeds × {safe, defect} = 504 (spec,
//! driver) cells, each verified under four configurations (2016 SLAM
//! runs), all of which must agree with the constructive ground truth.
//! The ci gate runs the smoke subset (fixed seeds, two configurations)
//! and exits nonzero on the first disagreement.

use corpusgen::{generate, params_for_index, GroundTruth};
use slam::{SlamOptions, SlamVerdict, SpecRegistry};
use std::time::Instant;

/// One (driver, configuration) measurement.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Spec-registry family.
    pub family: &'static str,
    /// Generated driver name (`<family>_s<seed>_<truth>`).
    pub driver: String,
    /// Generator seed.
    pub seed: u64,
    /// Ground truth: `safe` or the defect slug.
    pub truth: String,
    /// Cross-iteration abstraction reuse on?
    pub reuse: bool,
    /// C2bp worker threads.
    pub jobs: usize,
    /// What SLAM concluded: `validated`, `error`, `gaveup: …`, or
    /// `slam-error: …`.
    pub verdict: String,
    /// Verdict agrees with ground truth.
    pub ok: bool,
    /// CEGAR iterations executed.
    pub iterations: u32,
    /// Theorem-prover calls summed over all iterations.
    pub prover_calls: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
}

/// The whole wall, plus the totals the report and the ci gate need.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Every measurement, in deterministic (family, seed, truth,
    /// config) order.
    pub cells: Vec<MatrixCell>,
    /// Distinct (spec, driver) pairs covered.
    pub drivers: usize,
    /// Cells whose verdict disagreed with ground truth.
    pub mismatches: usize,
}

/// The configuration axes: (reuse, jobs).
pub const FULL_CONFIGS: [(bool, usize); 4] = [(true, 1), (false, 1), (true, 4), (false, 4)];
/// The ci smoke subset runs both reuse arms single-threaded.
pub const SMOKE_CONFIGS: [(bool, usize); 2] = [(true, 1), (false, 1)];

/// Seeds for full mode: 36 per family × {safe, defect} = 504 pairs.
pub fn full_seeds() -> Vec<u64> {
    (0..36).collect()
}

/// Fixed smoke seeds: 3 per family × {safe, defect} = 42 pairs.
pub fn smoke_seeds() -> Vec<u64> {
    vec![0, 1, 2]
}

/// Runs the matrix over `seeds` × {safe, defect} × `configs` for every
/// registry family. Progress goes to stderr (`quiet` suppresses it).
pub fn run_matrix(seeds: &[u64], configs: &[(bool, usize)], quiet: bool) -> MatrixReport {
    let registry = SpecRegistry::builtin();
    let mut cells = Vec::new();
    let mut drivers = 0;
    let mut mismatches = 0;
    for entry in registry.iter() {
        let spec = entry.spec();
        for &seed in seeds {
            let params = params_for_index(seed as usize);
            for want_defect in [false, true] {
                let d = generate(entry.name, &params, seed, want_defect);
                drivers += 1;
                for &(reuse, jobs) in configs {
                    let mut options = SlamOptions::default();
                    options.c2bp.reuse = reuse;
                    options.c2bp.jobs = jobs;
                    // generated drivers end in nondeterministic loop
                    // tails that sink the primary trace search; a small
                    // primary budget hands over to the low-weight
                    // fallback quickly instead of stalling per cell
                    options.trace_runs = 2_000;
                    let start = Instant::now();
                    let outcome = slam::verify(&d.source, &spec, d.entry, &options);
                    let seconds = start.elapsed().as_secs_f64();
                    let (verdict, ok, iterations, prover_calls) = match &outcome {
                        Ok(run) => {
                            let verdict = match &run.verdict {
                                SlamVerdict::Validated => "validated".to_string(),
                                SlamVerdict::ErrorFound { .. } => "error".to_string(),
                                SlamVerdict::GaveUp { reason } => format!("gaveup: {reason}"),
                            };
                            let ok = matches!(
                                (&d.truth, &run.verdict),
                                (GroundTruth::Safe, SlamVerdict::Validated)
                                    | (GroundTruth::Defect { .. }, SlamVerdict::ErrorFound { .. })
                            );
                            let calls: u64 = run.per_iteration.iter().map(|s| s.prover_calls).sum();
                            (verdict, ok, run.iterations, calls)
                        }
                        Err(e) => (format!("slam-error: {e}"), false, 0, 0),
                    };
                    if !ok {
                        mismatches += 1;
                        eprintln!(
                            "MISMATCH {} reuse={reuse} jobs={jobs}: truth {} but {verdict}",
                            d.name,
                            truth_slug(&d.truth),
                        );
                    }
                    cells.push(MatrixCell {
                        family: entry.name,
                        driver: d.name.clone(),
                        seed,
                        truth: truth_slug(&d.truth),
                        reuse,
                        jobs,
                        verdict,
                        ok,
                        iterations,
                        prover_calls,
                        seconds,
                    });
                }
            }
        }
        if !quiet {
            eprintln!("matrix: {} done ({} cells so far)", entry.name, cells.len());
        }
    }
    MatrixReport {
        cells,
        drivers,
        mismatches,
    }
}

fn truth_slug(t: &GroundTruth) -> String {
    match t {
        GroundTruth::Safe => "safe".to_string(),
        GroundTruth::Defect { kind, .. } => kind.as_str().to_string(),
    }
}

/// Per-(family, config) aggregate used by both report formats.
#[derive(Debug, Clone)]
pub struct MatrixGroup {
    /// Family name.
    pub family: &'static str,
    /// Reuse arm.
    pub reuse: bool,
    /// Worker arm.
    pub jobs: usize,
    /// Cells in the group.
    pub cells: usize,
    /// Cells agreeing with ground truth.
    pub ok: usize,
    /// Mean CEGAR iterations.
    pub mean_iterations: f64,
    /// Total prover calls.
    pub prover_calls: u64,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

/// Groups cells by (family, reuse, jobs), preserving first-seen order.
pub fn group_cells(report: &MatrixReport) -> Vec<MatrixGroup> {
    let mut groups: Vec<MatrixGroup> = Vec::new();
    for c in &report.cells {
        let g = match groups
            .iter_mut()
            .find(|g| g.family == c.family && g.reuse == c.reuse && g.jobs == c.jobs)
        {
            Some(g) => g,
            None => {
                groups.push(MatrixGroup {
                    family: c.family,
                    reuse: c.reuse,
                    jobs: c.jobs,
                    cells: 0,
                    ok: 0,
                    mean_iterations: 0.0,
                    prover_calls: 0,
                    seconds: 0.0,
                });
                groups.last_mut().unwrap()
            }
        };
        g.cells += 1;
        g.ok += c.ok as usize;
        g.mean_iterations += c.iterations as f64;
        g.prover_calls += c.prover_calls;
        g.seconds += c.seconds;
    }
    for g in &mut groups {
        if g.cells > 0 {
            g.mean_iterations /= g.cells as f64;
        }
    }
    groups
}

/// The reuse lever per family at jobs = 1: total prover calls with the
/// cross-iteration session off vs on, and the relative saving.
pub fn reuse_deltas(report: &MatrixReport) -> Vec<(&'static str, u64, u64, f64)> {
    let groups = group_cells(report);
    let mut out = Vec::new();
    for g in &groups {
        if !g.reuse || g.jobs != 1 {
            continue;
        }
        let Some(off) = groups
            .iter()
            .find(|o| o.family == g.family && !o.reuse && o.jobs == 1)
        else {
            continue;
        };
        let saving = if off.prover_calls > 0 {
            1.0 - g.prover_calls as f64 / off.prover_calls as f64
        } else {
            0.0
        };
        out.push((g.family, off.prover_calls, g.prover_calls, saving));
    }
    out
}

/// Renders the markdown report.
pub fn render_markdown(report: &MatrixReport, title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n\n"));
    out.push_str(&format!(
        "{} cells over {} (spec, driver) pairs; {} mismatch(es).\n\n",
        report.cells.len(),
        report.drivers,
        report.mismatches
    ));
    out.push_str("| family | reuse | jobs | cells | ok | mean iters | prover calls | seconds |\n");
    out.push_str("|--------|-------|------|-------|----|------------|--------------|--------|\n");
    for g in group_cells(report) {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.2} | {} | {:.2} |\n",
            g.family,
            if g.reuse { "on" } else { "off" },
            g.jobs,
            g.cells,
            g.ok,
            g.mean_iterations,
            g.prover_calls,
            g.seconds
        ));
    }
    out.push_str("\n## Reuse lever (jobs = 1)\n\n");
    out.push_str("| family | prover calls (reuse off) | prover calls (reuse on) | saving |\n");
    out.push_str("|--------|--------------------------|-------------------------|--------|\n");
    for (family, off, on, saving) in reuse_deltas(report) {
        out.push_str(&format!(
            "| {family} | {off} | {on} | {:.1}% |\n",
            saving * 100.0
        ));
    }
    out.push_str("\n## Per-cell measurements\n\n");
    out.push_str("| driver | reuse | jobs | verdict | ok | iters | prover calls | seconds |\n");
    out.push_str("|--------|-------|------|---------|----|-------|--------------|--------|\n");
    for c in &report.cells {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.3} |\n",
            c.driver,
            if c.reuse { "on" } else { "off" },
            c.jobs,
            c.verdict,
            if c.ok { "yes" } else { "NO" },
            c.iterations,
            c.prover_calls,
            c.seconds
        ));
    }
    out
}

/// Renders the whole report as JSON (cells plus per-group summary).
pub fn render_json(report: &MatrixReport) -> String {
    use crate::json::{array, esc};
    let cells = array(report.cells.iter().map(|c| {
        format!(
            "  {{\"family\": \"{}\", \"driver\": \"{}\", \"seed\": {}, \"truth\": \"{}\", \
             \"reuse\": {}, \"jobs\": {}, \"verdict\": \"{}\", \"ok\": {}, \
             \"iterations\": {}, \"prover_calls\": {}, \"seconds\": {:.6}}}",
            esc(c.family),
            esc(&c.driver),
            c.seed,
            esc(&c.truth),
            c.reuse,
            c.jobs,
            esc(&c.verdict),
            c.ok,
            c.iterations,
            c.prover_calls,
            c.seconds
        )
    }));
    let groups = array(group_cells(report).iter().map(|g| {
        format!(
            "  {{\"family\": \"{}\", \"reuse\": {}, \"jobs\": {}, \"cells\": {}, \"ok\": {}, \
             \"mean_iterations\": {:.4}, \"prover_calls\": {}, \"seconds\": {:.6}}}",
            esc(g.family),
            g.reuse,
            g.jobs,
            g.cells,
            g.ok,
            g.mean_iterations,
            g.prover_calls,
            g.seconds
        )
    }));
    format!(
        "{{\n\"drivers\": {},\n\"mismatches\": {},\n\"groups\": {},\n\"cells\": {}}}\n",
        report.drivers,
        report.mismatches,
        groups.trim_end(),
        cells.trim_end()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_matrix_agrees_with_ground_truth() {
        // one seed, one config, all families: 14 SLAM runs
        let report = run_matrix(&[0], &[(true, 1)], true);
        assert_eq!(report.drivers, 14);
        assert_eq!(report.cells.len(), 14);
        assert_eq!(report.mismatches, 0, "{:#?}", report.cells);
        let md = render_markdown(&report, "tiny");
        assert!(md.contains("| lock |"));
        // the per-cell table carries wall-clock and prover-call columns
        assert!(md.contains("## Per-cell measurements"));
        for c in &report.cells {
            assert!(
                md.contains(&format!("| {} | on | 1 |", c.driver)),
                "missing per-cell row for {}",
                c.driver
            );
        }
        let json = render_json(&report);
        assert!(json.contains("\"mismatches\": 0"));
    }

    #[test]
    fn grouping_aggregates_per_config() {
        let report = run_matrix(&[0], &SMOKE_CONFIGS, true);
        let groups = group_cells(&report);
        // 7 families × 2 configs
        assert_eq!(groups.len(), 14);
        assert!(groups.iter().all(|g| g.cells == 2));
        let deltas = reuse_deltas(&report);
        assert_eq!(deltas.len(), 7);
    }
}
