//! Abstract syntax of boolean programs (Ball & Rajamani \[5\]).
//!
//! A boolean program is "essentially a C program in which the only type
//! available is boolean". Beyond plain C it has: parallel assignment,
//! nondeterministic choice `*`, `assume`/`assert`, the ternary
//! `choose(pos, neg)` / `unknown()` helpers used by C2bp, procedures with
//! *multiple return values*, and per-procedure `enforce` data invariants
//! (§5.1 of the paper).
//!
//! Variable identifiers may be ordinary identifiers or arbitrary strings
//! written `{...}` — C2bp names each boolean variable after its predicate,
//! e.g. `{curr == NULL}`.

use cparse::ast::StmtId;
use std::fmt;

/// Boolean expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BExpr {
    /// `true` / `false`.
    Const(bool),
    /// The nondeterministic choice `*`.
    Nondet,
    /// A boolean variable.
    Var(String),
    /// `!e`.
    Not(Box<BExpr>),
    /// Conjunction.
    And(Vec<BExpr>),
    /// Disjunction.
    Or(Vec<BExpr>),
    /// `choose(pos, neg)`: `true` if `pos`, else `false` if `neg`, else `*`.
    Choose(Box<BExpr>, Box<BExpr>),
}

impl BExpr {
    /// Variable helper.
    pub fn var(name: impl Into<String>) -> BExpr {
        BExpr::Var(name.into())
    }

    /// `!self`, collapsing double negation and constants.
    pub fn negate(self) -> BExpr {
        match self {
            BExpr::Const(b) => BExpr::Const(!b),
            BExpr::Not(inner) => *inner,
            other => BExpr::Not(Box::new(other)),
        }
    }

    /// Conjunction with folding.
    pub fn and(parts: impl IntoIterator<Item = BExpr>) -> BExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BExpr::Const(true) => {}
                BExpr::Const(false) => return BExpr::Const(false),
                BExpr::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BExpr::Const(true),
            1 => out.pop().expect("len 1"),
            _ => BExpr::And(out),
        }
    }

    /// Disjunction with folding.
    pub fn or(parts: impl IntoIterator<Item = BExpr>) -> BExpr {
        let mut out = Vec::new();
        for p in parts {
            match p {
                BExpr::Const(false) => {}
                BExpr::Const(true) => return BExpr::Const(true),
                BExpr::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => BExpr::Const(false),
            1 => out.pop().expect("len 1"),
            _ => BExpr::Or(out),
        }
    }

    /// `self => other`.
    pub fn implies(self, other: BExpr) -> BExpr {
        BExpr::or([self.negate(), other])
    }

    /// The `unknown()` expression: `choose(false, false)`, i.e. `*`.
    pub fn unknown() -> BExpr {
        BExpr::Choose(Box::new(BExpr::Const(false)), Box::new(BExpr::Const(false)))
    }

    /// `choose(pos, neg)` with the paper's short-circuit simplifications:
    /// `choose(true, _) = true`, `choose(false, true) = false`,
    /// `choose(false, false) = unknown` stays, and `choose(e, !e) = e`.
    pub fn choose(pos: BExpr, neg: BExpr) -> BExpr {
        match (&pos, &neg) {
            (BExpr::Const(true), _) => return BExpr::Const(true),
            (BExpr::Const(false), BExpr::Const(true)) => return BExpr::Const(false),
            _ => {}
        }
        if neg == pos.clone().negate() {
            return pos;
        }
        BExpr::Choose(Box::new(pos), Box::new(neg))
    }

    /// True if the expression is deterministic (no `*`, no residual
    /// `choose`).
    pub fn is_deterministic(&self) -> bool {
        match self {
            BExpr::Const(_) | BExpr::Var(_) => true,
            BExpr::Nondet | BExpr::Choose(_, _) => false,
            BExpr::Not(e) => e.is_deterministic(),
            BExpr::And(es) | BExpr::Or(es) => es.iter().all(BExpr::is_deterministic),
        }
    }

    /// All variables mentioned, in first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            BExpr::Const(_) | BExpr::Nondet => {}
            BExpr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            BExpr::Not(e) => e.collect_vars(out),
            BExpr::And(es) | BExpr::Or(es) => {
                for e in es {
                    e.collect_vars(out);
                }
            }
            BExpr::Choose(p, n) => {
                p.collect_vars(out);
                n.collect_vars(out);
            }
        }
    }
}

impl fmt::Display for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::print::bexpr_to_string(self))
    }
}

/// Boolean program statements.
#[derive(Debug, Clone, PartialEq)]
pub enum BStmt {
    /// `skip;`
    Skip,
    /// Parallel assignment `t1, ..., tn = e1, ..., en;`.
    Assign {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Target variables.
        targets: Vec<String>,
        /// Values, evaluated simultaneously.
        values: Vec<BExpr>,
    },
    /// `assume(e);`
    Assume {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// For assumes generated from a C branch: which arm this is.
        branch: Option<bool>,
        /// Filter condition.
        cond: BExpr,
    },
    /// `assert(e);`
    Assert {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Checked condition.
        cond: BExpr,
    },
    /// `if (cond) { ... } else { ... }` (cond is typically `*`).
    If {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Branch condition.
        cond: BExpr,
        /// Then branch.
        then_branch: Box<BStmt>,
        /// Else branch.
        else_branch: Box<BStmt>,
    },
    /// `while (cond) { ... }` (cond is typically `*`).
    While {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Loop condition.
        cond: BExpr,
        /// Loop body.
        body: Box<BStmt>,
    },
    /// `goto L;`
    Goto(String),
    /// Label marker `L:`.
    Label(String),
    /// Procedure call `d1, ..., dk = p(e1, ..., en);`.
    Call {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Destinations for the (multiple) return values.
        dsts: Vec<String>,
        /// Callee.
        proc: String,
        /// Actuals.
        args: Vec<BExpr>,
    },
    /// `return e1, ..., ek;`
    Return {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Returned values.
        values: Vec<BExpr>,
    },
    /// Statement sequence.
    Seq(Vec<BStmt>),
}

impl BStmt {
    /// Visits every statement, outermost first.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a BStmt)) {
        visit(self);
        match self {
            BStmt::Seq(ss) => {
                for s in ss {
                    s.walk(visit);
                }
            }
            BStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(visit);
                else_branch.walk(visit);
            }
            BStmt::While { body, .. } => body.walk(visit),
            _ => {}
        }
    }
}

/// A boolean procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct BProc {
    /// Procedure name.
    pub name: String,
    /// Formal parameters (boolean).
    pub formals: Vec<String>,
    /// Number of return values.
    pub n_returns: usize,
    /// Local boolean variables.
    pub locals: Vec<String>,
    /// The `enforce` data invariant (§5.1), if any: an implicit
    /// `assume` between every pair of statements.
    pub enforce: Option<BExpr>,
    /// The body.
    pub body: BStmt,
}

impl BProc {
    /// True if `name` is a formal or local of this procedure.
    pub fn declares(&self, name: &str) -> bool {
        self.formals.iter().any(|f| f == name) || self.locals.iter().any(|l| l == name)
    }
}

/// A boolean program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BProgram {
    /// Global boolean variables.
    pub globals: Vec<String>,
    /// Procedures.
    pub procs: Vec<BProc>,
}

impl BProgram {
    /// Creates an empty program.
    pub fn new() -> BProgram {
        BProgram::default()
    }

    /// Looks up a procedure by name.
    pub fn proc(&self, name: &str) -> Option<&BProc> {
        self.procs.iter().find(|p| p.name == name)
    }

    /// The variables in scope inside `proc`: globals then formals then
    /// locals.
    pub fn scope_of(&self, proc: &BProc) -> Vec<String> {
        let mut out = self.globals.clone();
        out.extend(proc.formals.iter().cloned());
        out.extend(proc.locals.iter().cloned());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn choose_simplifications() {
        let v = BExpr::var("b");
        assert_eq!(
            BExpr::choose(BExpr::Const(true), BExpr::Const(false)),
            BExpr::Const(true)
        );
        assert_eq!(
            BExpr::choose(BExpr::Const(false), BExpr::Const(true)),
            BExpr::Const(false)
        );
        // choose(b, !b) = b
        assert_eq!(BExpr::choose(v.clone(), v.clone().negate()), v.clone());
        // unknown stays a choose
        assert!(matches!(BExpr::unknown(), BExpr::Choose(_, _)));
        let _ = v;
    }

    #[test]
    fn and_or_folding() {
        let t = BExpr::Const(true);
        let f = BExpr::Const(false);
        let v = BExpr::var("x");
        assert_eq!(BExpr::and([t.clone(), v.clone()]), v);
        assert_eq!(BExpr::and([f.clone(), v.clone()]), f);
        assert_eq!(BExpr::or([f.clone(), v.clone()]), v);
        assert_eq!(BExpr::or([t.clone(), v.clone()]), t);
    }

    #[test]
    fn negate_collapses() {
        let v = BExpr::var("x");
        assert_eq!(v.clone().negate().negate(), v);
        assert_eq!(BExpr::Const(true).negate(), BExpr::Const(false));
    }

    #[test]
    fn vars_collects_in_order() {
        let e = BExpr::and([
            BExpr::var("b"),
            BExpr::or([BExpr::var("a"), BExpr::var("b")]),
        ]);
        assert_eq!(e.vars(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn scope_order_is_globals_formals_locals() {
        let prog = BProgram {
            globals: vec!["g".into()],
            procs: vec![BProc {
                name: "p".into(),
                formals: vec!["f".into()],
                n_returns: 0,
                locals: vec!["l".into()],
                enforce: None,
                body: BStmt::Skip,
            }],
        };
        let p = prog.proc("p").unwrap();
        assert_eq!(prog.scope_of(p), vec!["g", "f", "l"]);
        assert!(p.declares("f") && p.declares("l") && !p.declares("g"));
    }
}
