//! Flat control-flow form of boolean procedures, shared by the
//! interpreter and the Bebop model checker.

use crate::ast::*;
use cparse::ast::StmtId;
use std::collections::HashMap;
use std::fmt;

/// A flat boolean-program instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum BInstr {
    /// Parallel assignment.
    Assign {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Targets.
        targets: Vec<String>,
        /// Values (evaluated simultaneously).
        values: Vec<BExpr>,
    },
    /// `assume(cond)`.
    Assume {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Which C branch arm produced this assume, if any.
        branch: Option<bool>,
        /// Condition.
        cond: BExpr,
    },
    /// `assert(cond)`.
    Assert {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Condition.
        cond: BExpr,
    },
    /// Two-way branch.
    Branch {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Condition (may be [`BExpr::Nondet`]).
        cond: BExpr,
        /// Target when true.
        target_true: usize,
        /// Target when false.
        target_false: usize,
    },
    /// Unconditional jump.
    Jump(usize),
    /// Procedure call.
    Call {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Return-value destinations.
        dsts: Vec<String>,
        /// Callee.
        proc: String,
        /// Actuals.
        args: Vec<BExpr>,
    },
    /// Return with values.
    Return {
        /// Originating C statement, if any.
        id: Option<StmtId>,
        /// Returned values.
        values: Vec<BExpr>,
    },
    /// No-op.
    Nop,
}

impl BInstr {
    /// Originating C statement id, if any.
    pub fn id(&self) -> Option<StmtId> {
        match self {
            BInstr::Assign { id, .. }
            | BInstr::Assume { id, .. }
            | BInstr::Assert { id, .. }
            | BInstr::Branch { id, .. }
            | BInstr::Call { id, .. }
            | BInstr::Return { id, .. } => *id,
            _ => None,
        }
    }
}

/// A flattened boolean procedure.
#[derive(Debug, Clone)]
pub struct FlatProc {
    /// Procedure name.
    pub name: String,
    /// Instructions; entry is index 0.
    pub instrs: Vec<BInstr>,
    /// Label positions.
    pub labels: HashMap<String, usize>,
}

/// Error for unresolved gotos.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BFlattenError {
    /// Description.
    pub message: String,
}

impl fmt::Display for BFlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bp flatten error: {}", self.message)
    }
}

impl std::error::Error for BFlattenError {}

/// Flattens a boolean procedure.
///
/// # Errors
///
/// Returns [`BFlattenError`] if a `goto` targets an undefined label.
pub fn flatten_proc(p: &BProc) -> Result<FlatProc, BFlattenError> {
    let mut f = Flattener {
        instrs: Vec::new(),
        labels: HashMap::new(),
        pending: Vec::new(),
    };
    f.stmt(&p.body);
    // implicit return (void or under-determined values are filled with *)
    f.instrs.push(BInstr::Return {
        id: None,
        values: vec![BExpr::Nondet; p.n_returns],
    });
    for (idx, label) in f.pending {
        let target = *f.labels.get(&label).ok_or_else(|| BFlattenError {
            message: format!("undefined label `{label}` in `{}`", p.name),
        })?;
        if let BInstr::Jump(t) = &mut f.instrs[idx] {
            *t = target;
        }
    }
    Ok(FlatProc {
        name: p.name.clone(),
        instrs: f.instrs,
        labels: f.labels,
    })
}

struct Flattener {
    instrs: Vec<BInstr>,
    labels: HashMap<String, usize>,
    pending: Vec<(usize, String)>,
}

impl Flattener {
    /// Can control reach the next instruction slot?
    ///
    /// False only when the last emitted instruction is an unconditional
    /// transfer (jump/return) and no already-bound label or patched
    /// jump/branch target points at the upcoming slot. Targets of
    /// still-pending gotos are `usize::MAX`, and labels bind eagerly, so
    /// scanning the emitted prefix is sufficient: nothing can retroactively
    /// acquire the skipped position.
    fn fallthrough_possible(&self) -> bool {
        if !matches!(
            self.instrs.last(),
            Some(BInstr::Jump(_) | BInstr::Return { .. })
        ) {
            return true;
        }
        let pos = self.instrs.len();
        self.labels.values().any(|&t| t == pos)
            || self.instrs.iter().any(|i| match i {
                BInstr::Jump(t) => *t == pos,
                BInstr::Branch {
                    target_true,
                    target_false,
                    ..
                } => *target_true == pos || *target_false == pos,
                _ => false,
            })
    }

    fn stmt(&mut self, s: &BStmt) {
        match s {
            BStmt::Skip => {}
            BStmt::Label(l) => {
                self.labels.insert(l.clone(), self.instrs.len());
            }
            BStmt::Goto(l) => {
                self.pending.push((self.instrs.len(), l.clone()));
                self.instrs.push(BInstr::Jump(usize::MAX));
            }
            BStmt::Assign {
                id,
                targets,
                values,
            } => self.instrs.push(BInstr::Assign {
                id: *id,
                targets: targets.clone(),
                values: values.clone(),
            }),
            BStmt::Assume { id, branch, cond } => self.instrs.push(BInstr::Assume {
                id: *id,
                branch: *branch,
                cond: cond.clone(),
            }),
            BStmt::Assert { id, cond } => self.instrs.push(BInstr::Assert {
                id: *id,
                cond: cond.clone(),
            }),
            BStmt::Call {
                id,
                dsts,
                proc,
                args,
            } => self.instrs.push(BInstr::Call {
                id: *id,
                dsts: dsts.clone(),
                proc: proc.clone(),
                args: args.clone(),
            }),
            BStmt::Return { id, values } => self.instrs.push(BInstr::Return {
                id: *id,
                values: values.clone(),
            }),
            BStmt::Seq(ss) => {
                for st in ss {
                    self.stmt(st);
                }
            }
            BStmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            } => {
                let b = self.instrs.len();
                self.instrs.push(BInstr::Branch {
                    id: *id,
                    cond: cond.clone(),
                    target_true: 0,
                    target_false: 0,
                });
                let then_start = self.instrs.len();
                self.stmt(then_branch);
                // The join jump is dead when the then-branch cannot fall
                // through and nothing else targets its slot.
                let join = if self.fallthrough_possible() {
                    let j = self.instrs.len();
                    self.instrs.push(BInstr::Jump(usize::MAX));
                    Some(j)
                } else {
                    None
                };
                let else_start = self.instrs.len();
                self.stmt(else_branch);
                let end = self.instrs.len();
                if let BInstr::Branch {
                    target_true,
                    target_false,
                    ..
                } = &mut self.instrs[b]
                {
                    *target_true = then_start;
                    *target_false = else_start;
                }
                if let Some(j) = join {
                    if let BInstr::Jump(t) = &mut self.instrs[j] {
                        *t = end;
                    }
                }
            }
            BStmt::While { id, cond, body } => {
                let head = self.instrs.len();
                self.instrs.push(BInstr::Branch {
                    id: *id,
                    cond: cond.clone(),
                    target_true: 0,
                    target_false: 0,
                });
                let body_start = self.instrs.len();
                self.stmt(body);
                if self.fallthrough_possible() {
                    self.instrs.push(BInstr::Jump(head));
                }
                let exit = self.instrs.len();
                if let BInstr::Branch {
                    target_true,
                    target_false,
                    ..
                } = &mut self.instrs[head]
                {
                    *target_true = body_start;
                    *target_false = exit;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bp;

    #[test]
    fn flattens_ifs_and_loops() {
        let p = parse_bp(
            r#"
            void m() {
                bool a;
                while (*) {
                    if (a) { a = false; } else { a = true; }
                }
            }
        "#,
        )
        .unwrap();
        let f = flatten_proc(p.proc("m").unwrap()).unwrap();
        let branches = f
            .instrs
            .iter()
            .filter(|i| matches!(i, BInstr::Branch { .. }))
            .count();
        assert_eq!(branches, 2);
        assert!(matches!(f.instrs.last(), Some(BInstr::Return { .. })));
    }

    #[test]
    fn goto_resolution() {
        let p = parse_bp("void m() { bool a; L: a = true; goto L; }").unwrap();
        let f = flatten_proc(p.proc("m").unwrap()).unwrap();
        let l = f.labels["L"];
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, BInstr::Jump(t) if *t == l)));
    }

    #[test]
    fn undefined_label_errors() {
        let p = parse_bp("void m() { goto nowhere; }").unwrap();
        assert!(flatten_proc(p.proc("m").unwrap()).is_err());
    }
}
