//! Nondeterministic interpreter for boolean programs.
//!
//! Nondeterminism (`*`, residual `choose`, uninitialized variables,
//! `bool<k>` under-determined returns) is resolved by a caller-provided
//! [`Chooser`]. A random chooser explores arbitrary executions; a *guided*
//! chooser lets the soundness tests replay a concrete C trace through the
//! abstraction (the paper's §4.6 theorem states such a replay always
//! exists).

use crate::ast::{BExpr, BProgram};
use crate::flow::{flatten_proc, BInstr, FlatProc};
use cparse::ast::StmtId;
use std::collections::HashMap;
use std::fmt;

/// Why a nondeterministic choice is being made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoosePurpose {
    /// Choosing a branch direction for an `if (*)` / `while (*)`.
    BranchCond,
    /// Choosing the value of a `*`/`choose` in an assignment or argument.
    AssignValue,
    /// Choosing the initial value of a declared-but-unassigned variable.
    InitialValue,
}

/// Context handed to a [`Chooser`].
#[derive(Debug, Clone)]
pub struct ChooseCtx {
    /// Procedure being executed.
    pub proc: String,
    /// Originating C statement of the current instruction, if any.
    pub id: Option<StmtId>,
    /// The variable being assigned/initialized, if any.
    pub target: Option<String>,
    /// What the choice is for.
    pub purpose: ChoosePurpose,
}

/// Resolves nondeterministic choices during execution.
pub trait Chooser {
    /// Picks the boolean used for this occurrence of nondeterminism.
    fn choose(&mut self, ctx: &ChooseCtx) -> bool;
}

/// A [`Chooser`] driven by a seeded linear-congruential stream
/// (deterministic given the seed; no external randomness needed).
#[derive(Debug, Clone)]
pub struct SeededChooser {
    state: u64,
}

impl SeededChooser {
    /// Creates a chooser from a seed.
    pub fn new(seed: u64) -> SeededChooser {
        SeededChooser {
            state: seed.wrapping_mul(6364136223846793005).wrapping_add(1),
        }
    }
}

impl Chooser for SeededChooser {
    fn choose(&mut self, _ctx: &ChooseCtx) -> bool {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) & 1 == 1
    }
}

/// Outcome of a boolean-program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BOutcome {
    /// The program returned normally.
    Completed,
    /// An `assume` (or `enforce`) filtered this execution out.
    AssumeViolated {
        /// Originating C statement of the assume, if any.
        id: Option<StmtId>,
    },
    /// An `assert` failed.
    AssertViolated {
        /// Originating C statement of the assert, if any.
        id: Option<StmtId>,
    },
}

/// Runtime errors (distinct from [`BOutcome`] which is expected behavior).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BRuntimeError {
    /// Unknown variable.
    UnknownVar(String),
    /// Unknown procedure.
    UnknownProc(String),
    /// Arity mismatch at a call or return.
    Arity(String),
    /// Step budget exhausted.
    OutOfFuel,
}

impl fmt::Display for BRuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BRuntimeError::UnknownVar(v) => write!(f, "unknown boolean variable `{v}`"),
            BRuntimeError::UnknownProc(p) => write!(f, "unknown procedure `{p}`"),
            BRuntimeError::Arity(m) => write!(f, "arity mismatch: {m}"),
            BRuntimeError::OutOfFuel => write!(f, "step budget exhausted"),
        }
    }
}

impl std::error::Error for BRuntimeError {}

/// One step of a recorded boolean-program execution.
#[derive(Debug, Clone)]
pub struct BTraceStep {
    /// Procedure.
    pub proc: String,
    /// Instruction index.
    pub pc: usize,
    /// Originating C statement, if any.
    pub id: Option<StmtId>,
    /// For branch instructions: the direction taken.
    pub branch: Option<bool>,
    /// Values of all variables in scope (name → value) *before* the step.
    pub state: HashMap<String, bool>,
}

/// The boolean-program interpreter.
pub struct BInterp<'a> {
    program: &'a BProgram,
    flats: HashMap<String, FlatProc>,
    /// Remaining steps.
    pub fuel: u64,
    /// Recorded trace of the last run.
    pub trace: Vec<BTraceStep>,
    globals: HashMap<String, bool>,
}

struct BFrame {
    proc: String,
    pc: usize,
    locals: HashMap<String, bool>,
    dsts: Vec<String>,
}

impl<'a> BInterp<'a> {
    /// Creates an interpreter; all procedures are flattened eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`BRuntimeError::UnknownProc`] wrapping flatten failures.
    pub fn new(program: &'a BProgram) -> Result<BInterp<'a>, BRuntimeError> {
        let mut flats = HashMap::new();
        for p in &program.procs {
            let f = flatten_proc(p).map_err(|e| BRuntimeError::UnknownProc(e.message))?;
            flats.insert(p.name.clone(), f);
        }
        Ok(BInterp {
            program,
            flats,
            fuel: 1_000_000,
            trace: Vec::new(),
            globals: HashMap::new(),
        })
    }

    fn eval(
        &self,
        e: &BExpr,
        frame: &BFrame,
        chooser: &mut dyn Chooser,
        ctx: &ChooseCtx,
    ) -> Result<bool, BRuntimeError> {
        Ok(match e {
            BExpr::Const(b) => *b,
            BExpr::Nondet => chooser.choose(ctx),
            BExpr::Var(v) => self.read_var(frame, v)?,
            BExpr::Not(inner) => !self.eval(inner, frame, chooser, ctx)?,
            BExpr::And(es) => {
                let mut acc = true;
                for x in es {
                    acc &= self.eval(x, frame, chooser, ctx)?;
                }
                acc
            }
            BExpr::Or(es) => {
                let mut acc = false;
                for x in es {
                    acc |= self.eval(x, frame, chooser, ctx)?;
                }
                acc
            }
            BExpr::Choose(p, n) => {
                if self.eval(p, frame, chooser, ctx)? {
                    true
                } else if self.eval(n, frame, chooser, ctx)? {
                    false
                } else {
                    chooser.choose(ctx)
                }
            }
        })
    }

    fn read_var(&self, frame: &BFrame, v: &str) -> Result<bool, BRuntimeError> {
        frame
            .locals
            .get(v)
            .or_else(|| self.globals.get(v))
            .copied()
            .ok_or_else(|| BRuntimeError::UnknownVar(v.to_string()))
    }

    fn write_var(&mut self, frame: &mut BFrame, v: &str, val: bool) -> Result<(), BRuntimeError> {
        if let Some(slot) = frame.locals.get_mut(v) {
            *slot = val;
            return Ok(());
        }
        if let Some(slot) = self.globals.get_mut(v) {
            *slot = val;
            return Ok(());
        }
        Err(BRuntimeError::UnknownVar(v.to_string()))
    }

    fn snapshot(&self, frame: &BFrame) -> HashMap<String, bool> {
        let mut st = self.globals.clone();
        for (k, v) in &frame.locals {
            st.insert(k.clone(), *v);
        }
        st
    }

    fn make_frame(
        &mut self,
        proc_name: &str,
        args: Vec<bool>,
        dsts: Vec<String>,
        chooser: &mut dyn Chooser,
    ) -> Result<BFrame, BRuntimeError> {
        let p = self
            .program
            .proc(proc_name)
            .ok_or_else(|| BRuntimeError::UnknownProc(proc_name.to_string()))?;
        if args.len() != p.formals.len() {
            return Err(BRuntimeError::Arity(format!(
                "{proc_name} expects {} args, got {}",
                p.formals.len(),
                args.len()
            )));
        }
        let mut locals = HashMap::new();
        for (f, v) in p.formals.iter().zip(args) {
            locals.insert(f.clone(), v);
        }
        for l in &p.locals {
            let ctx = ChooseCtx {
                proc: proc_name.to_string(),
                id: None,
                target: Some(l.clone()),
                purpose: ChoosePurpose::InitialValue,
            };
            locals.insert(l.clone(), chooser.choose(&ctx));
        }
        Ok(BFrame {
            proc: proc_name.to_string(),
            pc: 0,
            locals,
            dsts,
        })
    }

    fn enforce_of(&self, proc_name: &str) -> Option<BExpr> {
        self.program.proc(proc_name).and_then(|p| p.enforce.clone())
    }

    /// Runs `main_proc` with the given initial global values (missing
    /// globals are chosen nondeterministically) and actual arguments.
    ///
    /// # Errors
    ///
    /// Returns a [`BRuntimeError`] on malformed programs; assumption and
    /// assertion violations are reported through [`BOutcome`].
    pub fn run(
        &mut self,
        main_proc: &str,
        args: Vec<bool>,
        chooser: &mut dyn Chooser,
    ) -> Result<BOutcome, BRuntimeError> {
        self.trace.clear();
        self.globals.clear();
        for g in self.program.globals.clone() {
            let ctx = ChooseCtx {
                proc: main_proc.to_string(),
                id: None,
                target: Some(g.clone()),
                purpose: ChoosePurpose::InitialValue,
            };
            let v = chooser.choose(&ctx);
            self.globals.insert(g, v);
        }
        let mut stack = vec![self.make_frame(main_proc, args, Vec::new(), chooser)?];
        // check enforce at entry
        if let Some(inv) = self.enforce_of(main_proc) {
            let frame = stack.last().expect("frame");
            let ctx = ChooseCtx {
                proc: frame.proc.clone(),
                id: None,
                target: None,
                purpose: ChoosePurpose::AssignValue,
            };
            if !self.eval(&inv, frame, chooser, &ctx)? {
                return Ok(BOutcome::AssumeViolated { id: None });
            }
        }
        while let Some(frame) = stack.last() {
            if self.fuel == 0 {
                return Err(BRuntimeError::OutOfFuel);
            }
            self.fuel -= 1;
            let flat = &self.flats[&frame.proc];
            let instr = flat.instrs[frame.pc].clone();
            // record
            self.trace.push(BTraceStep {
                proc: frame.proc.clone(),
                pc: frame.pc,
                id: instr.id(),
                branch: None,
                state: self.snapshot(frame),
            });
            match instr {
                BInstr::Nop => stack.last_mut().expect("frame").pc += 1,
                BInstr::Jump(t) => stack.last_mut().expect("frame").pc = t,
                BInstr::Assign {
                    id,
                    targets,
                    values,
                } => {
                    let frame = stack.last().expect("frame");
                    let mut vals = Vec::with_capacity(values.len());
                    for (t, v) in targets.iter().zip(&values) {
                        let ctx = ChooseCtx {
                            proc: frame.proc.clone(),
                            id,
                            target: Some(t.clone()),
                            purpose: ChoosePurpose::AssignValue,
                        };
                        vals.push(self.eval(v, frame, chooser, &ctx)?);
                    }
                    let frame = stack.last_mut().expect("frame");
                    let proc_name = frame.proc.clone();
                    // split borrows: write through helper
                    let pairs: Vec<(String, bool)> = targets.into_iter().zip(vals).collect();
                    let mut frame_owned = stack.pop().expect("frame");
                    for (t, v) in pairs {
                        self.write_var(&mut frame_owned, &t, v)?;
                    }
                    frame_owned.pc += 1;
                    stack.push(frame_owned);
                    // enforce invariant acts as an assume after each stmt
                    if let Some(inv) = self.enforce_of(&proc_name) {
                        let frame = stack.last().expect("frame");
                        let ctx = ChooseCtx {
                            proc: proc_name,
                            id,
                            target: None,
                            purpose: ChoosePurpose::AssignValue,
                        };
                        if !self.eval(&inv, frame, chooser, &ctx)? {
                            return Ok(BOutcome::AssumeViolated { id });
                        }
                    }
                }
                BInstr::Assume { id, cond, .. } => {
                    let frame = stack.last().expect("frame");
                    let ctx = ChooseCtx {
                        proc: frame.proc.clone(),
                        id,
                        target: None,
                        purpose: ChoosePurpose::AssignValue,
                    };
                    if !self.eval(&cond, frame, chooser, &ctx)? {
                        return Ok(BOutcome::AssumeViolated { id });
                    }
                    stack.last_mut().expect("frame").pc += 1;
                }
                BInstr::Assert { id, cond } => {
                    let frame = stack.last().expect("frame");
                    let ctx = ChooseCtx {
                        proc: frame.proc.clone(),
                        id,
                        target: None,
                        purpose: ChoosePurpose::AssignValue,
                    };
                    if !self.eval(&cond, frame, chooser, &ctx)? {
                        return Ok(BOutcome::AssertViolated { id });
                    }
                    stack.last_mut().expect("frame").pc += 1;
                }
                BInstr::Branch {
                    id,
                    cond,
                    target_true,
                    target_false,
                } => {
                    let frame = stack.last().expect("frame");
                    let ctx = ChooseCtx {
                        proc: frame.proc.clone(),
                        id,
                        target: None,
                        purpose: ChoosePurpose::BranchCond,
                    };
                    let taken = self.eval(&cond, frame, chooser, &ctx)?;
                    if let Some(step) = self.trace.last_mut() {
                        step.branch = Some(taken);
                    }
                    stack.last_mut().expect("frame").pc =
                        if taken { target_true } else { target_false };
                }
                BInstr::Call {
                    id,
                    dsts,
                    proc,
                    args,
                } => {
                    let frame = stack.last().expect("frame");
                    let mut argv = Vec::with_capacity(args.len());
                    for a in &args {
                        let ctx = ChooseCtx {
                            proc: frame.proc.clone(),
                            id,
                            target: None,
                            purpose: ChoosePurpose::AssignValue,
                        };
                        argv.push(self.eval(a, frame, chooser, &ctx)?);
                    }
                    stack.last_mut().expect("frame").pc += 1;
                    let new_frame = self.make_frame(&proc, argv, dsts, chooser)?;
                    stack.push(new_frame);
                }
                BInstr::Return { id, values } => {
                    let frame = stack.last().expect("frame");
                    let mut vals = Vec::with_capacity(values.len());
                    for v in &values {
                        let ctx = ChooseCtx {
                            proc: frame.proc.clone(),
                            id,
                            target: None,
                            purpose: ChoosePurpose::AssignValue,
                        };
                        vals.push(self.eval(v, frame, chooser, &ctx)?);
                    }
                    let done = stack.pop().expect("frame");
                    if let Some(caller) = stack.last() {
                        if done.dsts.len() > vals.len() {
                            return Err(BRuntimeError::Arity(format!(
                                "{} returns {} values, caller wants {}",
                                done.proc,
                                vals.len(),
                                done.dsts.len()
                            )));
                        }
                        let _ = caller;
                        let mut caller_frame = stack.pop().expect("caller");
                        for (d, v) in done.dsts.iter().zip(vals) {
                            self.write_var(&mut caller_frame, d, v)?;
                        }
                        stack.push(caller_frame);
                    }
                }
            }
        }
        Ok(BOutcome::Completed)
    }

    /// The final global variable values after a completed run.
    pub fn globals(&self) -> &HashMap<String, bool> {
        &self.globals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bp;

    fn run_with_seed(src: &str, seed: u64) -> (BOutcome, HashMap<String, bool>) {
        let p = parse_bp(src).unwrap();
        let mut i = BInterp::new(&p).unwrap();
        let mut c = SeededChooser::new(seed);
        let out = i.run("main", vec![], &mut c).unwrap();
        (out, i.globals().clone())
    }

    #[test]
    fn deterministic_assignment() {
        let (out, globals) = run_with_seed("bool g; void main() { g = true; g = !g; }", 0);
        assert_eq!(out, BOutcome::Completed);
        assert_eq!(globals["g"], false);
    }

    #[test]
    fn assume_filters_paths() {
        // g is chosen nondeterministically; assume(g) discards g=false runs
        let src = "bool g; void main() { assume(g); assert(g); }";
        let mut completed = 0;
        let mut filtered = 0;
        for seed in 0..32 {
            let (out, _) = run_with_seed(src, seed);
            match out {
                BOutcome::Completed => completed += 1,
                BOutcome::AssumeViolated { .. } => filtered += 1,
                BOutcome::AssertViolated { .. } => panic!("assert can't fail"),
            }
        }
        assert!(completed > 0 && filtered > 0);
    }

    #[test]
    fn assert_can_fail_on_unknown() {
        let src = "bool g; void main() { g = unknown(); assert(g); }";
        let mut failures = 0;
        for seed in 0..32 {
            if matches!(run_with_seed(src, seed).0, BOutcome::AssertViolated { .. }) {
                failures += 1;
            }
        }
        assert!(failures > 0);
    }

    #[test]
    fn parallel_assignment_swaps() {
        let (out, globals) = run_with_seed(
            "bool a, b; void main() { a = true; b = false; a, b = b, a; }",
            7,
        );
        assert_eq!(out, BOutcome::Completed);
        assert_eq!((globals["a"], globals["b"]), (false, true));
    }

    #[test]
    fn calls_return_multiple_values() {
        let src = r#"
            bool r1, r2;
            bool<2> both(x) { return x, !x; }
            void main() { r1, r2 = both(true); }
        "#;
        let (out, globals) = run_with_seed(src, 3);
        assert_eq!(out, BOutcome::Completed);
        assert_eq!((globals["r1"], globals["r2"]), (true, false));
    }

    #[test]
    fn enforce_filters_states() {
        // enforce !(a && b): an execution that sets both dies as an assume
        let src = r#"
            bool a, b;
            void main() {
                enforce !(a && b);
                a = true;
                b = true;
            }
        "#;
        // need locals in scope: use globals via main-level enforce
        let p = parse_bp(src).unwrap();
        let mut i = BInterp::new(&p).unwrap();
        let mut c = SeededChooser::new(0);
        // initial values may already violate; accept either violation point
        let out = i.run("main", vec![], &mut c).unwrap();
        assert!(matches!(out, BOutcome::AssumeViolated { .. }));
    }

    #[test]
    fn choose_semantics() {
        // choose(pos, neg): pos true -> true
        let (_, g) = run_with_seed("bool a; void main() { a = choose(true, false); }", 0);
        assert!(g["a"]);
        let (_, g) = run_with_seed("bool a; void main() { a = choose(false, true); }", 0);
        assert!(!g["a"]);
    }

    #[test]
    fn while_star_terminates_by_chooser() {
        let src = "bool g; void main() { while (*) { g = !g; } }";
        for seed in 0..8 {
            let p = parse_bp(src).unwrap();
            let mut i = BInterp::new(&p).unwrap();
            i.fuel = 100_000;
            let mut c = SeededChooser::new(seed);
            // with a fair coin the loop exits with probability 1
            let out = i.run("main", vec![], &mut c).unwrap();
            assert_eq!(out, BOutcome::Completed);
        }
    }

    #[test]
    fn trace_records_states() {
        let src = "bool g; void main() { g = true; g = false; }";
        let p = parse_bp(src).unwrap();
        let mut i = BInterp::new(&p).unwrap();
        let mut c = SeededChooser::new(0);
        i.run("main", vec![], &mut c).unwrap();
        assert!(i.trace.len() >= 3);
        // second step sees g = true
        assert_eq!(i.trace[1].state["g"], true);
    }
}
