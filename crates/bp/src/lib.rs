//! Boolean programs: the target language of predicate abstraction.
//!
//! This crate implements the boolean program language of Ball & Rajamani
//! (*Bebop: A Symbolic Model Checker for Boolean Programs*, cited as \[5\]
//! by the PLDI 2001 paper): an AST, a concrete-syntax parser and printer
//! matching the paper's Figure 1(b), a flattened control-flow form, and a
//! nondeterministic reference interpreter used for differential testing
//! of the Bebop model checker and for replaying soundness witnesses.
//!
//! # Example
//!
//! ```
//! use bp::parse::parse_bp;
//! use bp::interp::{BInterp, BOutcome, SeededChooser};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_bp(
//!     "bool g; void main() { g = true; assert(g); }",
//! )?;
//! let mut interp = BInterp::new(&program)?;
//! let mut chooser = SeededChooser::new(42);
//! let outcome = interp.run("main", vec![], &mut chooser)?;
//! assert_eq!(outcome, BOutcome::Completed);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod flow;
pub mod interp;
pub mod parse;
pub mod print;

pub use ast::{BExpr, BProc, BProgram, BStmt};
pub use parse::parse_bp;
pub use print::program_to_string;
