//! Parser for the boolean-program concrete syntax printed by
//! [`crate::print`], so `.bp` files can be model-checked standalone.

use crate::ast::*;
use std::fmt;

/// A boolean-program syntax error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpParseError {
    /// 1-based line of the error.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for BpParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bp parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for BpParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Int(u64),
    KwBool,
    KwVoid,
    KwSkip,
    KwIf,
    KwElse,
    KwWhile,
    KwGoto,
    KwReturn,
    KwAssume,
    KwAssert,
    KwEnforce,
    KwChoose,
    KwUnknown,
    KwTrue,
    KwFalse,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Lt,
    Gt,
    Semi,
    Comma,
    Colon,
    Assign,
    Star,
    Bang,
    AndAnd,
    OrOr,
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, u32)>, BpParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                // `{` starts either a block or a quoted identifier; a quoted
                // identifier is `{...}` with no nested braces/newlines where
                // the contents are not valid block syntax. Disambiguate by
                // scanning for a `}` before any `;`, `{`, or newline.
                let mut j = i + 1;
                let mut quoted_end = None;
                while j < bytes.len() {
                    match bytes[j] {
                        b'}' => {
                            quoted_end = Some(j);
                            break;
                        }
                        b'{' | b';' | b'\n' => break,
                        _ => j += 1,
                    }
                }
                match quoted_end {
                    Some(end) if !src[i + 1..end].trim().is_empty() => {
                        out.push((Tok::Quoted(src[i + 1..end].trim().to_string()), line));
                        i = end + 1;
                    }
                    _ => {
                        out.push((Tok::LBrace, line));
                        i += 1;
                    }
                }
            }
            b'}' => {
                out.push((Tok::RBrace, line));
                i += 1;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let v: u64 = src[start..i].parse().map_err(|_| BpParseError {
                    line,
                    message: "bad integer".into(),
                })?;
                out.push((Tok::Int(v), line));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let t = match &src[start..i] {
                    "bool" | "decl" => Tok::KwBool,
                    "void" => Tok::KwVoid,
                    "skip" => Tok::KwSkip,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "goto" => Tok::KwGoto,
                    "return" => Tok::KwReturn,
                    "assume" => Tok::KwAssume,
                    "assert" => Tok::KwAssert,
                    "enforce" => Tok::KwEnforce,
                    "choose" => Tok::KwChoose,
                    "unknown" => Tok::KwUnknown,
                    "true" => Tok::KwTrue,
                    "false" => Tok::KwFalse,
                    s => Tok::Ident(s.to_string()),
                };
                out.push((t, line));
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (t, n) = match two {
                    "&&" => (Tok::AndAnd, 2),
                    "||" => (Tok::OrOr, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b';' => (Tok::Semi, 1),
                        b',' => (Tok::Comma, 1),
                        b':' => (Tok::Colon, 1),
                        b'=' => (Tok::Assign, 1),
                        b'*' => (Tok::Star, 1),
                        b'!' => (Tok::Bang, 1),
                        _ => {
                            return Err(BpParseError {
                                line,
                                message: format!("unexpected character `{}`", c as char),
                            })
                        }
                    },
                };
                out.push((t, line));
                i += n;
            }
        }
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

/// Parses a boolean program from its concrete syntax.
///
/// # Errors
///
/// Returns a [`BpParseError`] with the offending line on syntax errors.
pub fn parse_bp(src: &str) -> Result<BProgram, BpParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.program()
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> BpParseError {
        BpParseError {
            line: self.line(),
            message: msg.into(),
        }
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), BpParseError> {
        if self.eat(t.clone()) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.peek())))
        }
    }

    fn var_name(&mut self) -> Result<String, BpParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            Tok::Quoted(s) => Ok(s),
            other => Err(self.err(format!("expected variable, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<BProgram, BpParseError> {
        let mut prog = BProgram::new();
        while *self.peek() != Tok::Eof {
            if self.eat(Tok::KwBool) {
                // global decl or procedure returning bool<k>
                if *self.peek() == Tok::Lt {
                    let n = self.return_arity()?;
                    prog.procs.push(self.proc(n)?);
                } else {
                    // look ahead: `bool name (` is a procedure
                    let save = self.pos;
                    let first = self.var_name()?;
                    if *self.peek() == Tok::LParen {
                        self.pos = save;
                        prog.procs.push(self.proc(1)?);
                    } else {
                        prog.globals.push(first);
                        while self.eat(Tok::Comma) {
                            prog.globals.push(self.var_name()?);
                        }
                        self.expect(Tok::Semi)?;
                    }
                }
            } else if self.eat(Tok::KwVoid) {
                prog.procs.push(self.proc(0)?);
            } else {
                return Err(self.err("expected declaration or procedure"));
            }
        }
        Ok(prog)
    }

    fn return_arity(&mut self) -> Result<usize, BpParseError> {
        self.expect(Tok::Lt)?;
        let n = match self.bump() {
            Tok::Int(v) => v as usize,
            _ => return Err(self.err("expected return arity")),
        };
        self.expect(Tok::Gt)?;
        Ok(n)
    }

    fn proc(&mut self, n_returns: usize) -> Result<BProc, BpParseError> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected procedure name, found {other:?}"))),
        };
        self.expect(Tok::LParen)?;
        let mut formals = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                formals.push(self.var_name()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::LBrace)?;
        let mut locals = Vec::new();
        let mut enforce = None;
        // declarations and enforce come first
        loop {
            if self.eat(Tok::KwBool) {
                locals.push(self.var_name()?);
                while self.eat(Tok::Comma) {
                    locals.push(self.var_name()?);
                }
                self.expect(Tok::Semi)?;
            } else if self.eat(Tok::KwEnforce) {
                enforce = Some(self.expr()?);
                self.expect(Tok::Semi)?;
            } else {
                break;
            }
        }
        let mut body = Vec::new();
        while *self.peek() != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(BProc {
            name,
            formals,
            n_returns,
            locals,
            enforce,
            body: BStmt::Seq(body),
        })
    }

    fn block(&mut self) -> Result<BStmt, BpParseError> {
        self.expect(Tok::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != Tok::RBrace {
            body.push(self.stmt()?);
        }
        self.expect(Tok::RBrace)?;
        Ok(BStmt::Seq(body))
    }

    fn stmt(&mut self) -> Result<BStmt, BpParseError> {
        match self.peek().clone() {
            Tok::KwSkip => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(BStmt::Skip)
            }
            Tok::Semi => {
                self.bump();
                Ok(BStmt::Skip)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.block()?;
                let else_branch = if self.eat(Tok::KwElse) {
                    self.block()?
                } else {
                    BStmt::Skip
                };
                Ok(BStmt::If {
                    id: None,
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(BStmt::While {
                    id: None,
                    cond,
                    body: Box::new(body),
                })
            }
            Tok::KwGoto => {
                self.bump();
                let l = self.var_name()?;
                self.expect(Tok::Semi)?;
                Ok(BStmt::Goto(l))
            }
            Tok::KwReturn => {
                self.bump();
                let mut values = Vec::new();
                if *self.peek() != Tok::Semi {
                    loop {
                        values.push(self.expr()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(Tok::Semi)?;
                Ok(BStmt::Return { id: None, values })
            }
            Tok::KwAssume => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(BStmt::Assume {
                    id: None,
                    branch: None,
                    cond,
                })
            }
            Tok::KwAssert => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(BStmt::Assert { id: None, cond })
            }
            Tok::Ident(name) => {
                // label, call, or assignment
                let save = self.pos;
                self.bump();
                if self.eat(Tok::Colon) {
                    return Ok(BStmt::Label(name));
                }
                if *self.peek() == Tok::LParen {
                    // plain call
                    self.bump();
                    let args = self.args()?;
                    self.expect(Tok::Semi)?;
                    return Ok(BStmt::Call {
                        id: None,
                        dsts: Vec::new(),
                        proc: name,
                        args,
                    });
                }
                self.pos = save;
                self.assignment_or_call()
            }
            Tok::Quoted(_) => self.assignment_or_call(),
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }

    fn args(&mut self) -> Result<Vec<BExpr>, BpParseError> {
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    /// `t1, ..., tn = rhs;` where rhs is either a call or expressions.
    fn assignment_or_call(&mut self) -> Result<BStmt, BpParseError> {
        let mut targets = vec![self.var_name()?];
        while self.eat(Tok::Comma) {
            targets.push(self.var_name()?);
        }
        self.expect(Tok::Assign)?;
        // call on the rhs?
        if let Tok::Ident(f) = self.peek().clone() {
            let save = self.pos;
            self.bump();
            if self.eat(Tok::LParen) && f != "choose" && f != "unknown" {
                let args = self.args()?;
                self.expect(Tok::Semi)?;
                return Ok(BStmt::Call {
                    id: None,
                    dsts: targets,
                    proc: f,
                    args,
                });
            }
            self.pos = save;
        }
        let mut values = vec![self.expr()?];
        while self.eat(Tok::Comma) {
            values.push(self.expr()?);
        }
        self.expect(Tok::Semi)?;
        if values.len() != targets.len() {
            return Err(self.err(format!(
                "parallel assignment arity mismatch: {} targets, {} values",
                targets.len(),
                values.len()
            )));
        }
        Ok(BStmt::Assign {
            id: None,
            targets,
            values,
        })
    }

    // expressions: || < && < ! < primary
    fn expr(&mut self) -> Result<BExpr, BpParseError> {
        let mut e = self.and_expr()?;
        while self.eat(Tok::OrOr) {
            let r = self.and_expr()?;
            e = BExpr::or([e, r]);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<BExpr, BpParseError> {
        let mut e = self.unary_expr()?;
        while self.eat(Tok::AndAnd) {
            let r = self.unary_expr()?;
            e = BExpr::and([e, r]);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<BExpr, BpParseError> {
        if self.eat(Tok::Bang) {
            return Ok(self.unary_expr()?.negate());
        }
        match self.bump() {
            Tok::KwTrue => Ok(BExpr::Const(true)),
            Tok::KwFalse => Ok(BExpr::Const(false)),
            Tok::Star => Ok(BExpr::Nondet),
            Tok::Ident(s) => Ok(BExpr::Var(s)),
            Tok::Quoted(s) => Ok(BExpr::Var(s)),
            Tok::KwUnknown => {
                self.expect(Tok::LParen)?;
                self.expect(Tok::RParen)?;
                Ok(BExpr::unknown())
            }
            Tok::KwChoose => {
                self.expect(Tok::LParen)?;
                let p = self.expr()?;
                self.expect(Tok::Comma)?;
                let n = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(BExpr::Choose(Box::new(p), Box::new(n)))
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::program_to_string;

    #[test]
    fn parses_globals_and_procs() {
        let src = r#"
            bool g1, {x > 0};
            void main(a) {
                bool l;
                l = a && {x > 0};
                if (*) { g1 = true; } else { g1 = unknown(); }
                assume(!l || g1);
                return;
            }
        "#;
        let p = parse_bp(src).unwrap();
        assert_eq!(p.globals, vec!["g1".to_string(), "x > 0".to_string()]);
        let main = p.proc("main").unwrap();
        assert_eq!(main.formals, vec!["a".to_string()]);
        assert_eq!(main.locals, vec!["l".to_string()]);
    }

    #[test]
    fn parses_multi_return_and_calls() {
        let src = r#"
            bool<2> bar(p1, p2) {
                return p1, p2;
            }
            void foo() {
                bool t1, t2;
                t1, t2 = bar(true, false);
                t1, t2 = t2, t1;
            }
        "#;
        let p = parse_bp(src).unwrap();
        assert_eq!(p.proc("bar").unwrap().n_returns, 2);
        let foo = p.proc("foo").unwrap();
        let mut calls = 0;
        let mut passigns = 0;
        foo.body.walk(&mut |s| match s {
            BStmt::Call { dsts, .. } => {
                calls += 1;
                assert_eq!(dsts.len(), 2);
            }
            BStmt::Assign { targets, .. } => {
                passigns += 1;
                assert_eq!(targets.len(), 2);
            }
            _ => {}
        });
        assert_eq!((calls, passigns), (1, 1));
    }

    #[test]
    fn parses_enforce_and_labels() {
        let src = r#"
            void p() {
                bool a, b;
                enforce !(a && b);
                L: a = true;
                goto L;
            }
        "#;
        let p = parse_bp(src).unwrap();
        let proc = p.proc("p").unwrap();
        assert!(proc.enforce.is_some());
    }

    #[test]
    fn round_trips_through_printer() {
        let src = r#"
            bool {curr == NULL};
            void partition() {
                bool {curr->val > v};
                {curr == NULL} = unknown();
                while (*) {
                    assume(!{curr == NULL});
                    {curr->val > v} = choose({curr == NULL}, false);
                }
                assume({curr == NULL});
            }
        "#;
        let p1 = parse_bp(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_bp(&printed).unwrap();
        assert_eq!(p1, p2, "printed:\n{printed}");
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let src = "void p() { bool a, b; a, b = true; }";
        assert!(parse_bp(src).is_err());
    }

    #[test]
    fn quoted_names_with_operators() {
        let src = "bool {*p <= 0}; void m() { {*p <= 0} = !{*p <= 0}; }";
        let p = parse_bp(src).unwrap();
        assert_eq!(p.globals, vec!["*p <= 0".to_string()]);
    }
}

#[cfg(test)]
mod error_tests {
    use super::*;

    #[test]
    fn reports_line_numbers() {
        let err = parse_bp("bool g;\nvoid m() {\n  g = ;\n}").unwrap_err();
        // the offending token is on line 3 (the error may point at it or
        // at the token after it)
        assert!(err.line >= 3, "{err}");
    }

    #[test]
    fn rejects_unbalanced_braces() {
        assert!(parse_bp("void m() { if (*) { skip; }").is_err());
    }

    #[test]
    fn rejects_statements_outside_procs() {
        assert!(parse_bp("skip;").is_err());
    }

    #[test]
    fn empty_program_is_fine() {
        let p = parse_bp("").unwrap();
        assert!(p.procs.is_empty());
    }
}
