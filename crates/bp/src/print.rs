//! Concrete syntax printer for boolean programs.
//!
//! The output format matches the paper's Figure 1(b): C-like braces,
//! `bool` declarations, `{...}`-quoted predicate names, parallel
//! assignments, `assume`, `enforce`, and nondeterministic `*` conditions.
//! [`crate::parse`] accepts everything this module prints.

use crate::ast::*;
use std::fmt::Write as _;

/// True if `name` needs `{...}` quoting (not a plain C identifier).
pub fn needs_quoting(name: &str) -> bool {
    name.is_empty()
        || name
            .chars()
            .next()
            .map(|c| !(c.is_ascii_alphabetic() || c == '_'))
            .unwrap_or(true)
        || name
            .chars()
            .any(|c| !(c.is_ascii_alphanumeric() || c == '_'))
}

/// Renders a variable reference.
pub fn var_to_string(name: &str) -> String {
    if needs_quoting(name) {
        format!("{{{name}}}")
    } else {
        name.to_string()
    }
}

fn prec(e: &BExpr) -> u8 {
    match e {
        BExpr::Const(_) | BExpr::Nondet | BExpr::Var(_) | BExpr::Choose(_, _) => 4,
        BExpr::Not(_) => 3,
        BExpr::And(_) => 2,
        BExpr::Or(_) => 1,
    }
}

/// Renders a boolean expression.
pub fn bexpr_to_string(e: &BExpr) -> String {
    let mut s = String::new();
    write_bexpr(&mut s, e, 0);
    s
}

fn write_bexpr(out: &mut String, e: &BExpr, parent: u8) {
    let my = prec(e);
    let parens = my < parent;
    if parens {
        out.push('(');
    }
    match e {
        BExpr::Const(true) => out.push_str("true"),
        BExpr::Const(false) => out.push_str("false"),
        BExpr::Nondet => out.push('*'),
        BExpr::Var(v) => out.push_str(&var_to_string(v)),
        BExpr::Not(inner) => {
            out.push('!');
            write_bexpr(out, inner, 3);
        }
        BExpr::And(es) => {
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(" && ");
                }
                write_bexpr(out, x, my + 1);
            }
        }
        BExpr::Or(es) => {
            for (i, x) in es.iter().enumerate() {
                if i > 0 {
                    out.push_str(" || ");
                }
                write_bexpr(out, x, my + 1);
            }
        }
        BExpr::Choose(p, n) => {
            if **p == BExpr::Const(false) && **n == BExpr::Const(false) {
                out.push_str("unknown()");
            } else {
                out.push_str("choose(");
                write_bexpr(out, p, 0);
                out.push_str(", ");
                write_bexpr(out, n, 0);
                out.push(')');
            }
        }
    }
    if parens {
        out.push(')');
    }
}

/// Renders a statement at the given indent depth.
pub fn bstmt_to_string(s: &BStmt, indent: usize) -> String {
    let mut out = String::new();
    write_bstmt(&mut out, s, indent);
    out
}

fn write_bstmt(out: &mut String, s: &BStmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        BStmt::Skip => {
            let _ = writeln!(out, "{pad}skip;");
        }
        BStmt::Assign {
            targets, values, ..
        } => {
            let ts: Vec<String> = targets.iter().map(|t| var_to_string(t)).collect();
            let vs: Vec<String> = values.iter().map(bexpr_to_string).collect();
            let _ = writeln!(out, "{pad}{} = {};", ts.join(", "), vs.join(", "));
        }
        BStmt::Assume { cond, .. } => {
            let _ = writeln!(out, "{pad}assume({});", bexpr_to_string(cond));
        }
        BStmt::Assert { cond, .. } => {
            let _ = writeln!(out, "{pad}assert({});", bexpr_to_string(cond));
        }
        BStmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", bexpr_to_string(cond));
            write_bstmt(out, then_branch, indent + 1);
            if matches!(**else_branch, BStmt::Skip)
                || matches!(&**else_branch, BStmt::Seq(v) if v.is_empty())
            {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                write_bstmt(out, else_branch, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        BStmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", bexpr_to_string(cond));
            write_bstmt(out, body, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        BStmt::Goto(l) => {
            let _ = writeln!(out, "{pad}goto {l};");
        }
        BStmt::Label(l) => {
            let _ = writeln!(out, "{l}:");
        }
        BStmt::Call {
            dsts, proc, args, ..
        } => {
            let args: Vec<String> = args.iter().map(bexpr_to_string).collect();
            if dsts.is_empty() {
                let _ = writeln!(out, "{pad}{proc}({});", args.join(", "));
            } else {
                let ds: Vec<String> = dsts.iter().map(|d| var_to_string(d)).collect();
                let _ = writeln!(out, "{pad}{} = {proc}({});", ds.join(", "), args.join(", "));
            }
        }
        BStmt::Return { values, .. } => {
            if values.is_empty() {
                let _ = writeln!(out, "{pad}return;");
            } else {
                let vs: Vec<String> = values.iter().map(bexpr_to_string).collect();
                let _ = writeln!(out, "{pad}return {};", vs.join(", "));
            }
        }
        BStmt::Seq(ss) => {
            for st in ss {
                write_bstmt(out, st, indent);
            }
        }
    }
}

/// Renders a whole boolean program.
pub fn program_to_string(p: &BProgram) -> String {
    let mut out = String::new();
    if !p.globals.is_empty() {
        let gs: Vec<String> = p.globals.iter().map(|g| var_to_string(g)).collect();
        let _ = writeln!(out, "bool {};", gs.join(", "));
        let _ = writeln!(out);
    }
    for proc in &p.procs {
        let fs: Vec<String> = proc.formals.iter().map(|f| var_to_string(f)).collect();
        let ret = match proc.n_returns {
            0 => "void".to_string(),
            n => format!("bool<{n}>"),
        };
        let _ = writeln!(out, "{ret} {}({}) {{", proc.name, fs.join(", "));
        if !proc.locals.is_empty() {
            let ls: Vec<String> = proc.locals.iter().map(|l| var_to_string(l)).collect();
            let _ = writeln!(out, "    bool {};", ls.join(", "));
        }
        if let Some(e) = &proc.enforce {
            let _ = writeln!(out, "    enforce {};", bexpr_to_string(e));
        }
        write_bstmt(&mut out, &proc.body, 1);
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quoting_rules() {
        assert!(!needs_quoting("curr"));
        assert!(!needs_quoting("_t0"));
        assert!(needs_quoting("curr == NULL"));
        assert!(needs_quoting("curr->val > v"));
        assert_eq!(var_to_string("x"), "x");
        assert_eq!(var_to_string("x > 0"), "{x > 0}");
    }

    #[test]
    fn expressions_render() {
        let e = BExpr::and([
            BExpr::var("a"),
            BExpr::or([BExpr::var("b"), BExpr::var("c == d")]).negate(),
        ]);
        assert_eq!(bexpr_to_string(&e), "a && !(b || {c == d})");
        assert_eq!(bexpr_to_string(&BExpr::unknown()), "unknown()");
        assert_eq!(bexpr_to_string(&BExpr::Nondet), "*");
        let ch = BExpr::Choose(Box::new(BExpr::var("p")), Box::new(BExpr::var("n")));
        assert_eq!(bexpr_to_string(&ch), "choose(p, n)");
    }

    #[test]
    fn statements_render_like_figure_1() {
        let s = BStmt::Seq(vec![
            BStmt::Assign {
                id: None,
                targets: vec!["prev==NULL".into()],
                values: vec![BExpr::Const(true)],
            },
            BStmt::While {
                id: None,
                cond: BExpr::Nondet,
                body: Box::new(BStmt::Assume {
                    id: None,
                    branch: Some(true),
                    cond: BExpr::var("curr==NULL").negate(),
                }),
            },
        ]);
        let text = bstmt_to_string(&s, 0);
        assert!(text.contains("{prev==NULL} = true;"));
        assert!(text.contains("while (*) {"));
        assert!(text.contains("assume(!{curr==NULL});"));
    }
}
