//! The C2bp abstraction algorithm (§4): translating a simplified C
//! program plus predicates into a boolean program, statement by
//! statement.
//!
//! The boolean program has the same control structure as the C program.
//! Assignments become parallel `choose(F(WP(s,φ)), F(WP(s,¬φ)))` updates
//! (§4.3), conditionals become nondeterministic branches guarded by
//! `assume(G(cond))` / `assume(G(!cond))` (§4.4), and procedure calls use
//! the modular signature scheme of §4.5. Each procedure receives an
//! `enforce` invariant `¬F(false)` ruling out inconsistent predicate
//! combinations (§5.1).
//!
//! # Parallel abstraction
//!
//! The paper notes that each statement is abstracted independently; the
//! prover calls dominating the runtime are embarrassingly parallel. The
//! engine therefore runs in three phases:
//!
//! 1. **plan** (sequential, no prover): signatures, then a pre-order walk
//!    of every procedure body collecting one *leaf task* per statement
//!    that needs cube searches (plus one `enforce` task per procedure).
//!    Call temporaries are named during this walk, so naming never
//!    depends on scheduling.
//! 2. **solve** (parallel): a scoped worker pool pulls tasks off a shared
//!    index. Every task gets a *fresh* prover — its local cache and
//!    counters are a pure function of the task — wired to one
//!    [`SharedCache`] keyed by store-independent canonical formulas, so
//!    workers reuse each other's decision-procedure results without
//!    perturbing the deterministic counters.
//! 3. **merge** (sequential): the same pre-order walk re-assembles the
//!    boolean program from the task outputs and sums the counters in
//!    task order.
//!
//! The emitted program and all counters except
//! [`shared_hits`](prover::ProverStats::shared_hits) (and wall-times) are
//! byte-identical for any worker count.
//!
//! # Cross-iteration reuse
//!
//! A CEGAR driver abstracts the *same* program many times while only
//! *adding* predicates. [`abstract_program_reusing`] accepts a
//! [`ReuseSession`] that survives those calls and carries two things:
//! the [`SharedCache`] of prover verdicts, and a memo of whole leaf
//! outputs keyed by a *cone fingerprint* — a deterministic serialization
//! of everything a leaf's output can depend on (see [`leaf_fingerprint`]
//! for the invariant). A leaf whose fingerprint is unchanged since an
//! earlier call is replayed verbatim, spending zero prover calls; only
//! statements whose relevant-predicate cone actually grew are re-solved.
//! The memo is frozen during the solve phase and harvested afterwards,
//! so hits remain a pure function of the inputs and the output stays
//! worker-count invariant.

use crate::cubes::{AliasGroups, CubeOptions, CubeSearch, CubeStats, ScopeVar, Token};
use crate::live::{function_liveness, LiveInputs, LiveMap};
use crate::preds::{Pred, PredScope};
use crate::sig::{signature, Signature};
use crate::wp::{wp_assign, AliasCase, WpCtx};
use bp::ast::{BExpr, BProc, BProgram, BStmt};
use cparse::ast::{Expr, Function, Program, Stmt};
use cparse::typeck::TypeEnv;
use pointsto::{AliasMode, AliasOracle};
use prover::{CacheSnapshot, Prover, ProverStats, SessionStats, SharedCache};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Options controlling the abstraction.
#[derive(Debug, Clone, Default)]
pub struct C2bpOptions {
    /// Cube-search options (§5.2).
    pub cubes: CubeOptions,
    /// Skip variables syntactically unaffected by an assignment
    /// (optimization 2). Disable only for ablation measurements.
    pub skip_unaffected: bool,
    /// Compute `enforce` invariants (§5.1).
    pub compute_enforce: bool,
    /// Prune updates to dead predicates: a backward liveness analysis
    /// (see [`crate::live`]) finds, per assignment, the predicates whose
    /// post-state nothing downstream can observe, and their cube searches
    /// are skipped entirely. Sound — a skipped predicate is simply
    /// unconstrained, never wrong — and invisible after liveness
    /// normalization. Requires `cubes.cone_of_influence`; silently
    /// disabled otherwise.
    pub prune_dead_preds: bool,
    /// Worker threads for the solve phase; `0` defers to the `C2BP_JOBS`
    /// environment variable (itself defaulting to 1). The output is
    /// identical for every value.
    pub jobs: usize,
    /// Consult and grow the [`ReuseSession`] handed to
    /// [`abstract_program_reusing`]. Off, a session argument is ignored
    /// and every call behaves exactly like [`abstract_program`] from
    /// scratch; the emitted boolean program is byte-identical either way.
    pub reuse: bool,
    /// Which points-to analysis prunes Morris-axiom alias cases and
    /// refines the influence-token cones: the unification analysis, or
    /// the field-sensitive inclusion analysis (the paper's Das-style
    /// default).
    pub alias: AliasMode,
}

impl C2bpOptions {
    /// The configuration used for the paper's experiments.
    pub fn paper_defaults() -> C2bpOptions {
        C2bpOptions {
            cubes: CubeOptions::default(),
            skip_unaffected: true,
            compute_enforce: true,
            // The paper's engine computes every update; pruning is this
            // reproduction's addition, kept off for the golden figures.
            prune_dead_preds: false,
            jobs: 0,
            reuse: true,
            alias: AliasMode::Inclusion,
        }
    }

    /// The worker count to actually use: `jobs` if set, else `C2BP_JOBS`,
    /// else 1.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        std::env::var("C2BP_JOBS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

/// Failure of the abstraction (ill-formed inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsError {
    /// Description.
    pub message: String,
}

impl fmt::Display for AbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "abstraction error: {}", self.message)
    }
}

impl std::error::Error for AbsError {}

/// Wall-clock seconds per engine phase (scheduling-dependent, unlike the
/// counters).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseSeconds {
    /// Signature computation and leaf planning.
    pub plan: f64,
    /// Parallel cube-search / prover work.
    pub solve: f64,
    /// Deterministic re-assembly of the boolean program.
    pub merge: f64,
}

/// Summary counters for one abstraction run (the columns of the paper's
/// Tables 1 and 2).
#[derive(Debug, Clone, Default)]
pub struct AbsStats {
    /// Non-blank pretty-printed source lines of the C program.
    pub lines: usize,
    /// Number of input predicates.
    pub predicates: usize,
    /// Theorem-prover calls (logical queries: misses of a task-local
    /// cache). Identical for every worker count.
    pub prover_calls: u64,
    /// Task-local prover cache hits. Identical for every worker count.
    pub prover_cache_hits: u64,
    /// Predicate updates skipped because liveness proved the target dead
    /// at that statement (zero unless
    /// [`prune_dead_preds`](C2bpOptions::prune_dead_preds) is on).
    pub pruned_updates: u64,
    /// Cube-search counters.
    pub cubes: CubeStats,
    /// Wall-clock seconds spent abstracting.
    pub seconds: f64,
    /// Requested worker count for the solve phase (the pool itself is
    /// additionally capped at the machine's available parallelism).
    pub jobs: usize,
    /// Leaf work units solved (statements + enforce invariants).
    pub units: usize,
    /// Leaf work units replayed verbatim from a [`ReuseSession`] memo
    /// instead of being solved (always zero without a session). Identical
    /// for every worker count.
    pub reused_units: usize,
    /// Shared prover-result cache counters (scheduling-dependent). When a
    /// [`ReuseSession`] is in use the cache outlives this run, so these
    /// are the per-run *delta* ([`CacheSnapshot::delta`]) — `entries`
    /// still reports total residency.
    pub shared_cache: CacheSnapshot,
    /// Morris-axiom `May` alias disjuncts generated across every WP
    /// computation of the run — the quantity a sharper points-to
    /// analysis exists to shrink. Identical for every worker count (but
    /// lower under reuse, which skips whole WP computations).
    pub alias_disjuncts: u64,
    /// Incremental prover-session counters (scheduling-dependent: only
    /// queries that miss every cache reach a session).
    pub sessions: SessionStats,
    /// Per-phase wall-clock times (scheduling-dependent).
    pub phases: PhaseSeconds,
}

/// The result of abstracting a program.
#[derive(Debug, Clone)]
pub struct Abstraction {
    /// The boolean program `BP(P, E)`.
    pub bprogram: BProgram,
    /// Signatures computed for each procedure.
    pub signatures: HashMap<String, Signature>,
    /// Run statistics.
    pub stats: AbsStats,
}

/// Cross-iteration reuse state: the prover cache and transfer-function
/// memo a CEGAR driver threads through consecutive
/// [`abstract_program_reusing`] calls over the *same* program.
///
/// The session is sound to keep only while the program and the
/// non-`jobs` options stay fixed; both are fingerprinted, and a change
/// silently drops the memo (the shared cache holds pure logical verdicts
/// and is always valid). Within that regime a leaf is replayed iff its
/// [`leaf_fingerprint`] — statement, relevant-predicate cone, liveness
/// and signature context — matches an earlier solve exactly, which is
/// what makes reuse-on output byte-identical to scratch.
#[derive(Debug)]
pub struct ReuseSession {
    shared: SharedCache,
    memo: HashMap<String, LeafOut>,
    config_sig: Option<String>,
}

impl ReuseSession {
    /// Creates an empty session.
    pub fn new() -> ReuseSession {
        ReuseSession {
            shared: SharedCache::new(),
            memo: HashMap::new(),
            config_sig: None,
        }
    }

    /// A session whose prover-verdict cache is `shared` — how a
    /// scheduler plugs one process-wide (possibly disk-hydrated) cache
    /// into every job's session. The memo starts empty; seed it with
    /// [`hydrate_memo`](ReuseSession::hydrate_memo).
    pub fn with_shared_cache(shared: SharedCache) -> ReuseSession {
        ReuseSession {
            shared,
            memo: HashMap::new(),
            config_sig: None,
        }
    }

    /// Memoized leaf outputs currently held.
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }

    /// The persistent prover-verdict cache.
    pub fn shared_cache(&self) -> &SharedCache {
        &self.shared
    }

    /// The configuration signature the memo is currently valid for
    /// (`None` until the first reusing abstraction or hydration). See
    /// [`reuse_signature`].
    pub fn config_sig(&self) -> Option<&str> {
        self.config_sig.as_deref()
    }

    /// The memo as `(fingerprint, exact binary encoding)` pairs, in
    /// sorted fingerprint order, for persistence. Pair it with
    /// [`config_sig`](ReuseSession::config_sig): entries are only
    /// replayable under the same signature.
    pub fn export_memo(&self) -> Vec<(String, Vec<u8>)> {
        let mut out: Vec<(String, Vec<u8>)> = self
            .memo
            .iter()
            .map(|(k, v)| (k.clone(), crate::persist::encode_leaf_out(v)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Seeds the memo for the configuration `sig` from previously
    /// [exported](ReuseSession::export_memo) entries. If the session was
    /// holding a memo for a different signature it is dropped first.
    /// Entries that fail to decode are skipped — a persistence-layer
    /// miss costs a re-solve, never an error. Returns the entries
    /// actually installed.
    pub fn hydrate_memo(
        &mut self,
        sig: &str,
        entries: impl IntoIterator<Item = (String, Vec<u8>)>,
    ) -> usize {
        if self.config_sig.as_deref() != Some(sig) {
            self.memo.clear();
            self.config_sig = Some(sig.to_string());
        }
        let mut installed = 0;
        for (fingerprint, bytes) in entries {
            if let Some(out) = crate::persist::decode_leaf_out(&bytes) {
                self.memo.insert(fingerprint, out);
                installed += 1;
            }
        }
        installed
    }
}

/// The signature under which a [`ReuseSession`] memo for `program` is
/// valid: an FNV hash of the program plus every output-affecting option
/// (`jobs` excluded — outputs are worker-count invariant). A memo
/// persisted under one signature must only be hydrated into sessions
/// verifying the identical program and configuration; the signature *is*
/// the disk store's invalidation story, since an edited program or a
/// changed option produces a different signature and simply misses.
pub fn reuse_signature(program: &Program, options: &C2bpOptions) -> String {
    config_signature(program, options)
}

impl Default for ReuseSession {
    fn default() -> ReuseSession {
        ReuseSession::new()
    }
}

/// Runs C2bp: abstracts `program` (already simplified) with respect to
/// `preds`.
///
/// # Errors
///
/// Returns [`AbsError`] if a predicate references an unknown scope or the
/// program is not in the simplified intermediate form.
pub fn abstract_program(
    program: &Program,
    preds: &[Pred],
    options: &C2bpOptions,
) -> Result<Abstraction, AbsError> {
    abstract_with(program, preds, options, None)
}

/// Like [`abstract_program`], but consulting and growing `session` (when
/// [`C2bpOptions::reuse`] is on): prover verdicts and whole leaf outputs
/// from earlier calls over the same program are replayed instead of
/// re-solved. The boolean program is byte-identical to a scratch run;
/// only the work counters shrink. [`AbsStats::shared_cache`] reports the
/// per-call cache delta and [`AbsStats::reused_units`] the replayed
/// leaves.
///
/// # Errors
///
/// Returns [`AbsError`] exactly as [`abstract_program`] does.
pub fn abstract_program_reusing(
    program: &Program,
    preds: &[Pred],
    options: &C2bpOptions,
    session: &mut ReuseSession,
) -> Result<Abstraction, AbsError> {
    abstract_with(program, preds, options, Some(session))
}

fn abstract_with(
    program: &Program,
    preds: &[Pred],
    options: &C2bpOptions,
    session: Option<&mut ReuseSession>,
) -> Result<Abstraction, AbsError> {
    let start = Instant::now();
    // reuse off: behave exactly like a sessionless scratch run
    let mut session = if options.reuse { session } else { None };
    if let Some(s) = session.as_deref_mut() {
        let sig = config_signature(program, options);
        if s.config_sig.as_deref() != Some(sig.as_str()) {
            s.memo.clear();
            s.config_sig = Some(sig);
        }
    }
    let env = TypeEnv::new(program);
    let base_pts = pointsto::analyze_shared(program, options.alias);
    let modref = analysis::ModRef::analyze(program);
    // validate scopes and dedupe
    let mut preds_vec: Vec<Pred> = Vec::new();
    for p in preds {
        if let PredScope::Local(f) = &p.scope {
            if program.function(f).is_none() {
                return Err(AbsError {
                    message: format!("predicate scope `{f}` is not a function"),
                });
            }
        }
        if !preds_vec
            .iter()
            .any(|q| q.scope == p.scope && q.var_name() == p.var_name())
        {
            preds_vec.push(p.clone());
        }
    }
    let global_preds: Vec<Pred> = preds_vec
        .iter()
        .filter(|p| p.scope == PredScope::Global)
        .cloned()
        .collect();

    // phase 1 (plan): signatures, scopes, and the leaf-task list
    let mut signatures = HashMap::new();
    for f in &program.functions {
        signatures.insert(
            f.name.clone(),
            signature(program, f, &preds_vec, &modref, base_pts.as_ref()),
        );
    }
    let mut plans: Vec<FuncPlan<'_>> = Vec::new();
    let mut tasks: Vec<LeafTask<'_>> = Vec::new();
    for (fi, f) in program.functions.iter().enumerate() {
        let mut scope_vars: Vec<ScopeVar> = global_preds.iter().map(ScopeVar::of_pred).collect();
        scope_vars.extend(
            preds_vec
                .iter()
                .filter(|p| p.scope == PredScope::Local(f.name.clone()))
                .map(ScopeVar::of_pred),
        );
        // groups only refine the cones under the inclusion analysis;
        // the unification mode keeps the legacy any-deref closure
        let groups = (options.alias == AliasMode::Inclusion)
            .then(|| AliasGroups::compute(program, base_pts.as_ref(), &f.name));
        let mut plan = FuncPlan {
            func: f,
            scope_vars,
            groups,
            temps: Vec::new(),
        };
        let mut temp_counter = 0u32;
        collect_leaves(
            &f.body,
            fi,
            &signatures,
            &mut temp_counter,
            &mut plan.temps,
            &mut tasks,
        )?;
        if options.compute_enforce {
            tasks.push(LeafTask {
                func_idx: fi,
                kind: LeafKind::Enforce,
            });
        }
        plans.push(plan);
    }
    let plan_seconds = start.elapsed().as_secs_f64();

    // phase 2 (solve): cube searches across the worker pool; with a
    // session, its memo is read-only for the whole phase (hits stay a
    // pure function of the inputs) and its shared cache carries prover
    // verdicts in from earlier runs
    let solve_start = Instant::now();
    let jobs = options.effective_jobs();
    let shared = session
        .as_deref()
        .map_or_else(SharedCache::new, |s| s.shared.clone());
    let cache_before = shared.snapshot();
    let ctx = SolveCtx {
        program,
        env: &env,
        signatures: &signatures,
        global_preds: &global_preds,
        options,
        plans: &plans,
        base_pts: base_pts.as_ref(),
        shared: shared.clone(),
        memo: session.as_deref().map(|s| &s.memo),
    };
    // intra-run replay: guard and enforce leaves are keyed without their
    // statement identity, so semantically identical leaves elsewhere in
    // the program solve once and are copied (deterministically — the
    // grouping is a pure function of the task list)
    let mut replay_of: Vec<Option<usize>> = vec![None; tasks.len()];
    if ctx.memo.is_some() {
        let no_live: Vec<Option<LiveMap>> = Vec::new();
        let mut first: HashMap<String, usize> = HashMap::new();
        for (i, t) in tasks.iter().enumerate() {
            if matches!(
                t.kind,
                LeafKind::Branch { .. } | LeafKind::Assert { .. } | LeafKind::Enforce
            ) {
                match first.entry(leaf_fingerprint(&ctx, t, &no_live)) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        replay_of[i] = Some(*e.get());
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                    }
                }
            }
        }
    }
    let results = solve_all(&ctx, &tasks, &replay_of, jobs);
    let solve_seconds = solve_start.elapsed().as_secs_f64();
    if std::env::var_os("C2BP_REUSE_DEBUG").is_some() {
        let mut by_kind: std::collections::BTreeMap<&'static str, (u64, usize, usize)> =
            std::collections::BTreeMap::new();
        for (t, r) in tasks.iter().zip(&results) {
            let kind = match t.kind {
                LeafKind::Branch { .. } => "branch",
                LeafKind::Assert { .. } => "assert",
                LeafKind::Assume { .. } => "assume",
                LeafKind::Assign { .. } => "assign",
                LeafKind::Call { .. } => "call",
                LeafKind::Enforce => "enforce",
            };
            let e = by_kind.entry(kind).or_default();
            e.0 += r.prover_stats.queries;
            e.1 += 1;
            e.2 += usize::from(r.reused);
        }
        eprintln!("reuse debug (kind: calls/units/reused): {by_kind:?}");
    }
    // harvest this run's freshly solved leaves into the memo
    if let Some(s) = session {
        for r in &results {
            if let Some(key) = &r.fingerprint {
                s.memo.insert(key.clone(), r.out.clone());
            }
        }
    }

    // phase 3 (merge): deterministic re-assembly in task order
    let merge_start = Instant::now();
    let mut bprogram = BProgram {
        globals: global_preds.iter().map(Pred::var_name).collect(),
        procs: Vec::new(),
    };
    let mut merger = Merger {
        results: &results,
        cursor: 0,
    };
    let mut prover_stats = ProverStats::default();
    let mut cube_stats = CubeStats::default();
    let mut session_stats = SessionStats::default();
    let mut pruned_updates = 0u64;
    let mut reused_units = 0usize;
    let mut alias_disjuncts = 0u64;
    for plan in &plans {
        let sig = &signatures[&plan.func.name];
        let body = merger.stmt(&plan.func.body, sig);
        let enforce = if options.compute_enforce {
            match &merger.next().out {
                LeafOut::Enforce(e) => e.clone(),
                other => unreachable!("enforce task yielded {other:?}"),
            }
        } else {
            None
        };
        let formal_names: Vec<String> = sig.formal_preds.iter().map(Pred::var_name).collect();
        let locals: Vec<String> = preds_vec
            .iter()
            .filter(|p| p.scope == PredScope::Local(plan.func.name.clone()))
            .map(Pred::var_name)
            .filter(|n| !formal_names.contains(n))
            .chain(plan.temps.iter().cloned())
            .collect();
        bprogram.procs.push(BProc {
            name: plan.func.name.clone(),
            formals: formal_names,
            n_returns: sig.return_preds.len(),
            locals,
            enforce,
            body,
        });
    }
    for r in &results {
        prover_stats.queries += r.prover_stats.queries;
        prover_stats.cache_hits += r.prover_stats.cache_hits;
        prover_stats.shared_hits += r.prover_stats.shared_hits;
        cube_stats.cubes_tested += r.cube_stats.cubes_tested;
        cube_stats.cubes_pruned += r.cube_stats.cubes_pruned;
        cube_stats.fast_path_hits += r.cube_stats.fast_path_hits;
        cube_stats.numeric_proved += r.cube_stats.numeric_proved;
        cube_stats.numeric_disproved += r.cube_stats.numeric_disproved;
        cube_stats.models_enumerated += r.cube_stats.models_enumerated;
        cube_stats.enum_fallbacks += r.cube_stats.enum_fallbacks;
        session_stats.absorb(&r.session_stats);
        pruned_updates += r.pruned;
        reused_units += usize::from(r.reused);
        alias_disjuncts += r.alias_disjuncts;
    }

    let stats = AbsStats {
        lines: program.line_count(),
        predicates: preds_vec.len(),
        prover_calls: prover_stats.queries,
        prover_cache_hits: prover_stats.cache_hits,
        pruned_updates,
        cubes: cube_stats,
        seconds: start.elapsed().as_secs_f64(),
        jobs,
        units: results.len(),
        reused_units,
        shared_cache: shared.snapshot().delta(&cache_before),
        alias_disjuncts,
        sessions: session_stats,
        phases: PhaseSeconds {
            plan: plan_seconds,
            solve: solve_seconds,
            merge: merge_start.elapsed().as_secs_f64(),
        },
    };
    Ok(Abstraction {
        bprogram,
        signatures,
        stats,
    })
}

// -- plan phase -----------------------------------------------------------

/// Per-procedure context fixed before the solve phase.
struct FuncPlan<'p> {
    func: &'p Function,
    /// Scope: global preds then this function's local preds.
    scope_vars: Vec<ScopeVar>,
    /// Alias groups of the function's variables (inclusion mode only):
    /// the cube searches, liveness and reuse fingerprints all compute
    /// their cones against the same groups.
    groups: Option<AliasGroups>,
    /// Boolean temporaries for call returns, in pre-order.
    temps: Vec<String>,
}

/// One unit of prover work: a leaf statement, or a procedure's `enforce`
/// invariant.
#[derive(Debug)]
enum LeafKind<'p> {
    Assign {
        id: cparse::StmtId,
        lhs: &'p Expr,
        rhs: &'p Expr,
    },
    /// `if`/`while` guard pair: `G(cond)` and `G(!cond)`.
    Branch {
        id: cparse::StmtId,
        cond: &'p Expr,
    },
    Assert {
        id: cparse::StmtId,
        cond: &'p Expr,
    },
    Assume {
        id: cparse::StmtId,
        cond: &'p Expr,
    },
    Call {
        id: cparse::StmtId,
        dst: &'p Option<Expr>,
        callee: &'p str,
        args: &'p [Expr],
        /// Pre-assigned names for the callee's return predicates.
        temps: Vec<String>,
    },
    Enforce,
}

#[derive(Debug)]
struct LeafTask<'p> {
    func_idx: usize,
    kind: LeafKind<'p>,
}

/// Pre-order walk pushing one task per prover-requiring statement. The
/// merge phase repeats this walk, so the two must visit leaves in the
/// same order.
fn collect_leaves<'p>(
    s: &'p Stmt,
    func_idx: usize,
    signatures: &HashMap<String, Signature>,
    temp_counter: &mut u32,
    temps: &mut Vec<String>,
    out: &mut Vec<LeafTask<'p>>,
) -> Result<(), AbsError> {
    let mut push = |kind| out.push(LeafTask { func_idx, kind });
    match s {
        Stmt::Skip | Stmt::Goto(_) | Stmt::Label(_) | Stmt::Return { .. } => {}
        Stmt::Seq(ss) => {
            for st in ss {
                collect_leaves(st, func_idx, signatures, temp_counter, temps, out)?;
            }
        }
        Stmt::Assign { id, lhs, rhs } => push(LeafKind::Assign { id: *id, lhs, rhs }),
        Stmt::If {
            id,
            cond,
            then_branch,
            else_branch,
        } => {
            push(LeafKind::Branch { id: *id, cond });
            collect_leaves(then_branch, func_idx, signatures, temp_counter, temps, out)?;
            collect_leaves(else_branch, func_idx, signatures, temp_counter, temps, out)?;
        }
        Stmt::While { id, cond, body } => {
            push(LeafKind::Branch { id: *id, cond });
            collect_leaves(body, func_idx, signatures, temp_counter, temps, out)?;
        }
        Stmt::Assert { id, cond } => push(LeafKind::Assert { id: *id, cond }),
        Stmt::Assume { id, cond } => push(LeafKind::Assume { id: *id, cond }),
        Stmt::Call {
            id,
            dst,
            func,
            args,
        } => {
            // temporaries only for callees we can see; naming here keeps it
            // independent of solve-phase scheduling
            let call_temps: Vec<String> = match signatures.get(func) {
                Some(sig) => sig
                    .return_preds
                    .iter()
                    .map(|_| {
                        let name = format!("__t{temp_counter}");
                        *temp_counter += 1;
                        temps.push(name.clone());
                        name
                    })
                    .collect(),
                None => Vec::new(),
            };
            push(LeafKind::Call {
                id: *id,
                dst,
                callee: func,
                args,
                temps: call_temps,
            });
        }
        Stmt::Break | Stmt::Continue => {
            return Err(AbsError {
                message: "break/continue must be simplified away before c2bp".into(),
            })
        }
    }
    Ok(())
}

// -- solve phase ----------------------------------------------------------

/// Immutable inputs shared by every worker.
struct SolveCtx<'p> {
    program: &'p Program,
    env: &'p TypeEnv,
    signatures: &'p HashMap<String, Signature>,
    global_preds: &'p [Pred],
    options: &'p C2bpOptions,
    plans: &'p [FuncPlan<'p>],
    base_pts: &'p dyn AliasOracle,
    shared: SharedCache,
    /// Frozen view of the session memo, when reusing. Read-only for the
    /// whole solve phase so hits never depend on scheduling.
    memo: Option<&'p HashMap<String, LeafOut>>,
}

/// What one task produced.
#[derive(Debug, Clone)]
pub(crate) enum LeafOut {
    /// A complete boolean statement (assignments, calls, assumes).
    Stmt(BStmt),
    /// The `G(cond)` / `G(!cond)` pair of a branch or assert.
    Guards { pos: BExpr, neg: BExpr },
    /// The procedure's `enforce` invariant.
    Enforce(Option<BExpr>),
}

#[derive(Debug)]
struct LeafResult {
    out: LeafOut,
    prover_stats: ProverStats,
    cube_stats: CubeStats,
    session_stats: SessionStats,
    /// Updates skipped because liveness proved the target dead.
    pruned: u64,
    /// Morris-axiom `May` alias disjuncts generated by this leaf's WPs.
    alias_disjuncts: u64,
    /// Memo key to store this freshly solved output under; `None` for
    /// sessionless runs and for replayed leaves (already memoized).
    fingerprint: Option<String>,
    /// Whether the output was replayed from the session memo.
    reused: bool,
}

/// Solves every task, in parallel when `jobs > 1`. Results land in task
/// order regardless of which worker computed them.
///
/// With pruning on, the solve phase runs in two deterministic sub-phases:
/// everything except assignments first (2a), then — once the liveness
/// analysis has consumed the solved guards, calls and enforce invariants —
/// the assignments (2b), each skipping its dead targets.
fn solve_all(
    ctx: &SolveCtx<'_>,
    tasks: &[LeafTask<'_>],
    replay_of: &[Option<usize>],
    jobs: usize,
) -> Vec<LeafResult> {
    let slots: Vec<Mutex<Option<LeafResult>>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    let no_live: Vec<Option<LiveMap>> = Vec::new();
    // copies each replay target's output from its (already solved) source
    let fill_replays = || {
        for (j, src) in replay_of.iter().enumerate() {
            if let Some(i) = *src {
                let out = slots[i]
                    .lock()
                    .expect("result slot")
                    .as_ref()
                    .expect("replay source solved before targets are filled")
                    .out
                    .clone();
                *slots[j].lock().expect("result slot") = Some(LeafResult {
                    out,
                    prover_stats: ProverStats::default(),
                    cube_stats: CubeStats::default(),
                    session_stats: SessionStats::default(),
                    pruned: 0,
                    alias_disjuncts: 0,
                    fingerprint: None,
                    reused: true,
                });
            }
        }
    };
    if ctx.options.prune_dead_preds && ctx.options.cubes.cone_of_influence {
        let (pre, assigns): (Vec<usize>, Vec<usize>) = (0..tasks.len())
            .filter(|&i| replay_of[i].is_none())
            .partition(|&i| !matches!(tasks[i].kind, LeafKind::Assign { .. }));
        solve_indices(ctx, tasks, &pre, jobs, &no_live, &slots);
        // replay targets are never assignments, so they are all in place
        // before the liveness pass reads the guard results
        fill_replays();
        let live = compute_liveness(ctx, tasks, &slots);
        solve_indices(ctx, tasks, &assigns, jobs, &live, &slots);
    } else {
        let all: Vec<usize> = (0..tasks.len())
            .filter(|&i| replay_of[i].is_none())
            .collect();
        solve_indices(ctx, tasks, &all, jobs, &no_live, &slots);
        fill_replays();
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot")
                .expect("every claimed task produced a result")
        })
        .collect()
}

/// Solves the tasks at `indices`, writing each result into its slot.
fn solve_indices(
    ctx: &SolveCtx<'_>,
    tasks: &[LeafTask<'_>],
    indices: &[usize],
    jobs: usize,
    live: &[Option<LiveMap>],
    slots: &[Mutex<Option<LeafResult>>],
) {
    // the solve phase is CPU-bound, so running more workers than the
    // machine has cores only adds scheduling thrash; the output is
    // worker-count independent either way
    let cores = std::thread::available_parallelism().map_or(usize::MAX, usize::from);
    let workers = jobs.min(indices.len()).min(cores).max(1);
    if workers == 1 {
        for &i in indices {
            let r = solve_one(ctx, &tasks[i], live);
            *slots[i].lock().expect("result slot") = Some(r);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            // points-to queries are read-only, so every worker shares the
            // one analysis computed up front
            scope.spawn(|| loop {
                let n = next.fetch_add(1, Ordering::Relaxed);
                if n >= indices.len() {
                    break;
                }
                let i = indices[n];
                let r = solve_one(ctx, &tasks[i], live);
                *slots[i].lock().expect("result slot") = Some(r);
            });
        }
    });
}

/// Runs the per-function liveness analyses between the two solve
/// sub-phases, from the phase-2a outputs sitting in `slots`.
fn compute_liveness(
    ctx: &SolveCtx<'_>,
    tasks: &[LeafTask<'_>],
    slots: &[Mutex<Option<LeafResult>>],
) -> Vec<Option<LiveMap>> {
    // Exact mention sets of the solved non-assign outputs, per function,
    // keyed by statement id; plus the enforce invariant's variables.
    let nfuncs = ctx.plans.len();
    let mut mentions: Vec<HashMap<cparse::StmtId, Vec<String>>> = vec![HashMap::new(); nfuncs];
    let mut enforce_vars: Vec<Vec<String>> = vec![Vec::new(); nfuncs];
    let mut add = |fi: usize, id: cparse::StmtId, vars: Vec<String>| {
        if id == cparse::StmtId::UNASSIGNED {
            return; // lookup miss makes the liveness gen everything
        }
        mentions[fi].entry(id).or_default().extend(vars);
    };
    for (task, slot) in tasks.iter().zip(slots) {
        let guard = slot.lock().expect("result slot");
        let Some(result) = guard.as_ref() else {
            continue; // an assign task: solved in phase 2b
        };
        match (&task.kind, &result.out) {
            (
                LeafKind::Branch { id, .. } | LeafKind::Assert { id, .. },
                LeafOut::Guards { pos, neg },
            ) => {
                let mut vars = pos.vars();
                vars.extend(neg.vars());
                add(task.func_idx, *id, vars);
            }
            (LeafKind::Assume { id, .. } | LeafKind::Call { id, .. }, LeafOut::Stmt(s)) => {
                add(task.func_idx, *id, bstmt_mentions(s));
            }
            (LeafKind::Enforce, LeafOut::Enforce(Some(e))) => {
                enforce_vars[task.func_idx] = e.vars();
            }
            _ => {}
        }
    }
    let global_pred_names: Vec<String> = ctx.global_preds.iter().map(Pred::var_name).collect();
    ctx.plans
        .iter()
        .enumerate()
        .map(|(fi, plan)| {
            let return_pred_names: Vec<String> = ctx.signatures[&plan.func.name]
                .return_preds
                .iter()
                .map(Pred::var_name)
                .collect();
            let inputs = LiveInputs {
                env: ctx.env,
                func: plan.func,
                scope_vars: &plan.scope_vars,
                global_pred_names: &global_pred_names,
                return_pred_names: &return_pred_names,
                enforce_vars: &enforce_vars[fi],
                mentions: &mentions[fi],
                groups: plan.groups.as_ref(),
                options: ctx.options,
            };
            function_liveness(&inputs, ctx.base_pts)
        })
        .collect()
}

/// Every predicate name a solved boolean statement reads: assume
/// conditions, call actuals, assignment values.
fn bstmt_mentions(s: &BStmt) -> Vec<String> {
    let mut out = Vec::new();
    s.walk(&mut |st| match st {
        BStmt::Assign { values, .. } => {
            for v in values {
                out.extend(v.vars());
            }
        }
        BStmt::Assume { cond, .. } | BStmt::Assert { cond, .. } => out.extend(cond.vars()),
        BStmt::If { cond, .. } | BStmt::While { cond, .. } => out.extend(cond.vars()),
        BStmt::Call { args, .. } => {
            for a in args {
                out.extend(a.vars());
            }
        }
        BStmt::Return { values, .. } => {
            for v in values {
                out.extend(v.vars());
            }
        }
        _ => {}
    });
    out
}

fn solve_one(ctx: &SolveCtx<'_>, task: &LeafTask<'_>, live: &[Option<LiveMap>]) -> LeafResult {
    let plan = &ctx.plans[task.func_idx];
    // cross-iteration reuse: replay the leaf verbatim when its cone
    // fingerprint matches an earlier solve; the zeroed counters make the
    // saved work visible in the per-run stats
    let fingerprint = ctx.memo.map(|_| leaf_fingerprint(ctx, task, live));
    if let (Some(memo), Some(key)) = (ctx.memo, fingerprint.as_deref()) {
        if let Some(out) = memo.get(key) {
            return LeafResult {
                out: out.clone(),
                prover_stats: ProverStats::default(),
                cube_stats: CubeStats::default(),
                session_stats: SessionStats::default(),
                pruned: 0,
                alias_disjuncts: 0,
                fingerprint: None,
                reused: true,
            };
        }
    }
    // a fresh prover per task: its cache and counters depend only on the
    // task, never on scheduling; the shared cache still short-circuits
    // decision-procedure work across tasks and threads
    let mut solver = LeafSolver {
        program: ctx.program,
        env: ctx.env,
        pts: ctx.base_pts,
        prover: Prover::with_shared_cache(ctx.shared.clone()),
        signatures: ctx.signatures,
        global_preds: ctx.global_preds,
        func: plan.func,
        scope_vars: &plan.scope_vars,
        groups: plan.groups.as_ref(),
        options: ctx.options,
        cube_stats: CubeStats::default(),
        session_stats: SessionStats::default(),
        pruned: 0,
        alias_disjuncts: 0,
    };
    let out = match &task.kind {
        LeafKind::Assign { id, lhs, rhs } => {
            let live_after = live
                .get(task.func_idx)
                .and_then(|m| m.as_ref())
                .and_then(|m| m.get(id));
            LeafOut::Stmt(solver.assign(Some(*id), lhs, rhs, live_after))
        }
        LeafKind::Branch { cond, .. } => {
            let pos = solver.guard(cond);
            let neg = solver.guard(&cond.negated());
            LeafOut::Guards { pos, neg }
        }
        LeafKind::Assert { cond, .. } => {
            // failure guard first, matching the sequential engine's query
            // order within this statement
            let neg = solver.guard(&cond.negated());
            let pos = solver.guard(cond);
            LeafOut::Guards { pos, neg }
        }
        LeafKind::Assume { id, cond } => {
            let g = solver.guard(cond);
            LeafOut::Stmt(BStmt::Assume {
                id: Some(*id),
                branch: None,
                cond: g,
            })
        }
        LeafKind::Call {
            id,
            dst,
            callee,
            args,
            temps,
        } => LeafOut::Stmt(solver.call(*id, dst, callee, args, temps)),
        LeafKind::Enforce => {
            let vars = plan.scope_vars.clone();
            LeafOut::Enforce(solver.with_search(|cs| cs.enforce_invariant(&vars)))
        }
    };
    LeafResult {
        out,
        prover_stats: solver.prover.stats,
        cube_stats: solver.cube_stats,
        session_stats: solver.session_stats,
        pruned: solver.pruned,
        alias_disjuncts: solver.alias_disjuncts,
        fingerprint,
        reused: false,
    }
}

// -- cross-iteration reuse ------------------------------------------------

/// FNV-1a over the program text plus every option that can change the
/// output (`jobs` is deliberately excluded — the output is worker-count
/// invariant). A [`ReuseSession`] whose signature differs drops its memo.
fn config_signature(program: &Program, options: &C2bpOptions) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in format!("{program:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!(
        "{h:016x}|{:?}|{}|{}|{}|{}",
        options.cubes,
        options.skip_unaffected,
        options.compute_enforce,
        options.prune_dead_preds,
        options.alias
    )
}

/// Indices (in scope order) of every variable transitively sharing an
/// influence token with the seed set — the same closure the cube search's
/// cone-of-influence restriction computes, seeded with a whole statement.
fn cone_indices(
    scope: &[ScopeVar],
    mut tokens: Vec<Token>,
    groups: Option<&AliasGroups>,
) -> Vec<usize> {
    let mut included = vec![false; scope.len()];
    loop {
        let mut changed = false;
        for (i, sv) in scope.iter().enumerate() {
            if included[i] {
                continue;
            }
            let vt = crate::cubes::influence_tokens(&sv.expr, groups);
            if vt.iter().any(|t| tokens.iter().any(|u| u.matches(t))) {
                included[i] = true;
                changed = true;
                for t in vt {
                    if !tokens.contains(&t) {
                        tokens.push(t);
                    }
                }
            }
        }
        if !changed {
            return (0..scope.len()).filter(|&i| included[i]).collect();
        }
    }
}

/// The deterministic key under which a leaf's output is memoized across
/// abstraction runs.
///
/// **Invariant**: two runs over the same program and options in which a
/// leaf produces the same fingerprint produce byte-identical outputs for
/// that leaf. The key therefore serializes everything the output can
/// depend on:
///
/// * the statement's kind and pretty-printed expressions. Leaves whose
///   output embeds a statement id (assignments, assumes, calls) also key
///   on the id and enclosing procedure; guard and `enforce` leaves
///   produce pure expressions, so their keys instead carry the type
///   resolution of every variable the search can consult — semantically
///   identical leaves anywhere in the program (or a later iteration)
///   share one solve;
/// * the *relevant-predicate cone* — the scope variables the cube
///   searches can consult. For guards this is the influence-token
///   closure of the condition (exactly the cube search's own
///   cone-of-influence restriction; syntactic fast paths only ever match
///   token-sharing variables, so they cannot see past it). For
///   assignments the closure is seeded with both sides of the
///   assignment: a variable outside it shares no token with the
///   statement, so its WP is untouched and `skip_unaffected` drops it,
///   while the WPs of affected variables only mention tokens inside the
///   closure. That argument needs Morris-axiom aliasing to be syntactic,
///   so it falls back to the full scope whenever the lhs is not a plain
///   variable or any predicate mentions a dereference, an index, or a
///   struct field (where `AliasCase` can couple token-disjoint
///   expressions), or when the relevant option is off;
/// * per-assignment liveness verdicts for the cone members (pruning
///   changes the emitted update list);
/// * for calls: the callee signature, temporaries, and — because the
///   updated/unchanged partition inspects every predicate — the full
///   scope;
/// * for `enforce`: the full scope and its type resolutions (the search
///   disables the cone, and the invariant depends on nothing else).
fn leaf_fingerprint(ctx: &SolveCtx<'_>, task: &LeafTask<'_>, live: &[Option<LiveMap>]) -> String {
    use cparse::pretty::expr_to_string;
    use std::fmt::Write as _;
    let plan = &ctx.plans[task.func_idx];
    let scope = &plan.scope_vars;
    let groups = plan.groups.as_ref();
    let coi = ctx.options.cubes.cone_of_influence;
    let push_full = |key: &mut String| {
        for sv in scope.iter() {
            key.push('\x1f');
            key.push_str(&sv.name);
        }
    };
    let push_cone = |key: &mut String, seeds: Vec<Token>| {
        for i in cone_indices(scope, seeds, groups) {
            key.push('\x1f');
            key.push_str(&scope[i].name);
        }
    };
    // the searches resolve each variable's type through the enclosing
    // procedure, so a function-name-free key must carry the resolutions
    let push_types = |key: &mut String, exprs: &mut dyn Iterator<Item = &Expr>| {
        let mut names: Vec<String> = Vec::new();
        for e in exprs {
            for v in e.vars() {
                if !names.contains(&v) {
                    names.push(v);
                }
            }
        }
        names.sort();
        for n in &names {
            let ty = plan
                .func
                .var_type(n)
                .cloned()
                .or_else(|| ctx.env.var_type(None, n));
            let _ = write!(key, "\x1f{n}:{ty:?}");
        }
    };
    let mut key = String::new();
    match &task.kind {
        LeafKind::Branch { cond, .. } | LeafKind::Assert { cond, .. } => {
            // guard outputs are pure expressions (no embedded statement
            // identity), so the key carries no function name or id:
            // identical guards anywhere in the program share one solve
            let tag = if matches!(task.kind, LeafKind::Branch { .. }) {
                'b'
            } else {
                't'
            };
            let _ = write!(key, "{tag}|{}", expr_to_string(cond));
            let members: Vec<usize> = if coi {
                cone_indices(scope, crate::cubes::influence_tokens(cond, groups), groups)
            } else {
                (0..scope.len()).collect()
            };
            for &i in &members {
                key.push('\x1f');
                key.push_str(&scope[i].name);
            }
            key.push('\x1e');
            push_types(
                &mut key,
                &mut std::iter::once(*cond).chain(members.iter().map(|&i| &scope[i].expr)),
            );
        }
        LeafKind::Assume { id, cond } => {
            // the emitted `assume` embeds its statement id, so the key
            // pins the statement
            let _ = write!(key, "u|{}|{id:?}|{}", plan.func.name, expr_to_string(cond));
            if coi {
                push_cone(&mut key, crate::cubes::influence_tokens(cond, groups));
            } else {
                push_full(&mut key);
            }
        }
        LeafKind::Assign { id, lhs, rhs } => {
            let _ = write!(
                key,
                "a|{}|{id:?}|{}|{}",
                plan.func.name,
                expr_to_string(lhs),
                expr_to_string(rhs)
            );
            let mut seeds = crate::cubes::influence_tokens(lhs, groups);
            for t in crate::cubes::influence_tokens(rhs, groups) {
                if !seeds.contains(&t) {
                    seeds.push(t);
                }
            }
            // The token cone only bounds WP effects when aliasing is
            // syntactic: plain-variable destination, and no predicate
            // reaching through a pointer, array, or struct field. One
            // refinement, backed by the points-to oracle: a destination
            // variable whose address is never taken has no aliases, so
            // predicates whose locations are all shapes the Morris axiom
            // decides exactly against an unaliased variable (see
            // [`crate::wp::decisive_against_unaliased_var`]) either get a
            // syntactic substitution (token-sharing, inside the cone) or
            // are provably untouched.
            let aliasing_possible = match lhs {
                Expr::Var(v)
                    if !ctx.base_pts.address_taken(&plan.func.name, v)
                        && scope.iter().all(|sv| {
                            crate::wp::locations(&sv.expr)
                                .iter()
                                .all(crate::wp::decisive_against_unaliased_var)
                        }) =>
                {
                    false
                }
                Expr::Var(_) => {
                    seeds.iter().any(|t| matches!(t, Token::Deref(_)))
                        || scope.iter().any(|sv| {
                            crate::cubes::influence_tokens(&sv.expr, groups)
                                .iter()
                                .any(|t| matches!(t, Token::Deref(_) | Token::Field(..)))
                        })
                }
                _ => true,
            };
            let members: Vec<usize> = if coi && ctx.options.skip_unaffected && !aliasing_possible {
                cone_indices(scope, seeds, groups)
            } else {
                (0..scope.len()).collect()
            };
            let live_after = live
                .get(task.func_idx)
                .and_then(|m| m.as_ref())
                .and_then(|m| m.get(id));
            for i in members {
                let sv = &scope[i];
                let dead = live_after.is_some_and(|l| !l.contains(&sv.name));
                key.push('\x1f');
                key.push_str(&sv.name);
                key.push(if dead { '-' } else { '+' });
            }
        }
        LeafKind::Call {
            id,
            dst,
            callee,
            args,
            temps,
        } => {
            let dst_text = dst.as_ref().map(expr_to_string).unwrap_or_default();
            let _ = write!(key, "c|{}|{id:?}|{callee}|{dst_text}", plan.func.name);
            for a in *args {
                key.push('\x1f');
                key.push_str(&expr_to_string(a));
            }
            key.push('\x1e');
            for t in temps {
                key.push('\x1f');
                key.push_str(t);
            }
            key.push('\x1e');
            match ctx.signatures.get(*callee) {
                Some(sig) => {
                    for f in &sig.formals {
                        let _ = write!(key, "\x1f{f}");
                    }
                    key.push('\x1e');
                    for p in &sig.formal_preds {
                        let _ = write!(key, "\x1f{}", p.var_name());
                    }
                    key.push('\x1e');
                    for p in &sig.return_preds {
                        let _ = write!(key, "\x1f{}", p.var_name());
                    }
                    let _ = write!(key, "\x1e{:?}", sig.ret_var);
                }
                None => key.push('?'),
            }
            let _ = write!(key, "\x1e{}", ctx.global_preds.len());
            push_full(&mut key);
        }
        LeafKind::Enforce => {
            // the invariant is a pure function of the scope (its output
            // embeds nothing statement- or function-specific), so
            // procedures with the same predicate scope — common once
            // refinement promotes predicates to globals — share one solve
            key.push('e');
            push_full(&mut key);
            key.push('\x1e');
            push_types(&mut key, &mut scope.iter().map(|sv| &sv.expr));
        }
    }
    key
}

/// Abstraction of a single leaf statement: the cube-search and WP plumbing
/// shared by all task kinds.
struct LeafSolver<'a> {
    program: &'a Program,
    env: &'a TypeEnv,
    pts: &'a dyn AliasOracle,
    prover: Prover,
    signatures: &'a HashMap<String, Signature>,
    global_preds: &'a [Pred],
    func: &'a Function,
    scope_vars: &'a [ScopeVar],
    groups: Option<&'a AliasGroups>,
    options: &'a C2bpOptions,
    cube_stats: CubeStats,
    session_stats: SessionStats,
    pruned: u64,
    alias_disjuncts: u64,
}

impl<'a> LeafSolver<'a> {
    /// Runs a cube search over the given variable set.
    fn with_search<T>(&mut self, run: impl FnOnce(&mut CubeSearch<'_>) -> T) -> T {
        let lookup = {
            let func = self.func;
            let env = self.env;
            move |name: &str| {
                func.var_type(name)
                    .cloned()
                    .or_else(|| env.var_type(None, name))
            }
        };
        let mut cs = CubeSearch::new(
            &mut self.prover,
            self.env,
            &lookup,
            self.options.cubes.clone(),
        );
        cs.groups = self.groups;
        let out = run(&mut cs);
        self.cube_stats.cubes_tested += cs.stats.cubes_tested;
        self.cube_stats.cubes_pruned += cs.stats.cubes_pruned;
        self.cube_stats.fast_path_hits += cs.stats.fast_path_hits;
        self.cube_stats.numeric_proved += cs.stats.numeric_proved;
        self.cube_stats.numeric_disproved += cs.stats.numeric_disproved;
        self.cube_stats.models_enumerated += cs.stats.models_enumerated;
        self.cube_stats.enum_fallbacks += cs.stats.enum_fallbacks;
        self.session_stats.absorb(&cs.session_stats);
        out
    }

    fn wp_ctx(&mut self) -> WpCtx<'_> {
        let func = self.func;
        let env = self.env;
        WpCtx {
            env: self.env,
            pts: self.pts,
            may_disjuncts: 0,
            func: self.func.name.clone(),
            lookup: Box::new(move |name| {
                func.var_type(name)
                    .cloned()
                    .or_else(|| env.var_type(None, name))
            }),
        }
    }

    /// `G_V(φ)` over the procedure scope.
    fn guard(&mut self, cond: &Expr) -> BExpr {
        let vars = self.scope_vars.to_vec();
        self.with_search(|cs| cs.strongest_implied_conjunction(&vars, cond))
    }

    /// §4.3: abstraction of an assignment. When `live_after` is known,
    /// predicates outside it are dead — their cube searches are skipped
    /// and they are left out of the parallel assignment (unconstrained,
    /// which nothing downstream observes).
    fn assign(
        &mut self,
        id: Option<cparse::StmtId>,
        lhs: &Expr,
        rhs: &Expr,
        live_after: Option<&std::collections::BTreeSet<String>>,
    ) -> BStmt {
        let scope = self.scope_vars.to_vec();
        let mut targets = Vec::new();
        let mut values = Vec::new();
        for sv in &scope {
            let dead = live_after.is_some_and(|live| !live.contains(&sv.name));
            let (wp_pos, wp_neg, may) = {
                let mut ctx = self.wp_ctx();
                let pos = wp_assign(&mut ctx, lhs, rhs, &sv.expr);
                let neg_pred = sv.expr.negated();
                let neg = wp_assign(&mut ctx, lhs, rhs, &neg_pred);
                (pos, neg, ctx.may_disjuncts)
            };
            self.alias_disjuncts += may;
            if self.options.skip_unaffected {
                if let Some(wp) = &wp_pos {
                    if *wp == sv.expr {
                        continue; // optimization 2: definitely unchanged
                    }
                }
            }
            if dead {
                // The predicate is dead after this assignment: no later
                // statement can observe its value, so skip the cube
                // searches entirely. The update disappears, which is the
                // same boolean program the liveness normalizer produces.
                self.pruned += 1;
                continue;
            }
            let value = match (wp_pos, wp_neg) {
                (Some(p), Some(n)) => {
                    let fp = self.with_search(|cs| cs.largest_implying_disjunction(&scope, &p));
                    let fn_ = self.with_search(|cs| cs.largest_implying_disjunction(&scope, &n));
                    BExpr::choose(fp, fn_)
                }
                _ => BExpr::unknown(),
            };
            targets.push(sv.name.clone());
            values.push(value);
        }
        if targets.is_empty() {
            BStmt::Skip
        } else {
            BStmt::Assign {
                id,
                targets,
                values,
            }
        }
    }

    /// §4.5.3: abstraction of a procedure call. `temps` were named in the
    /// plan phase, one per return predicate of the callee.
    fn call(
        &mut self,
        id: cparse::StmtId,
        dst: &Option<Expr>,
        callee: &str,
        args: &[Expr],
        temps: &[String],
    ) -> BStmt {
        let scope = self.scope_vars.to_vec();
        let Some(sig) = self.signatures.get(callee).cloned() else {
            // intrinsic (nondet/malloc) or external function: havoc
            // everything the destination might touch
            return self.havoc_for_unknown_call(Some(id), dst);
        };
        // actuals for the formal-parameter predicates
        let mut actuals = Vec::new();
        for fp in &sig.formal_preds {
            let e_translated = subst_formals(&fp.expr, &sig.formals, args);
            let val = self.with_search(|cs| cs.choose_value(&scope, &e_translated));
            actuals.push(val);
        }
        // temporaries receiving the return predicates
        let mut temp_names = Vec::new();
        let mut temp_vars: Vec<ScopeVar> = Vec::new();
        for (t, rp) in temps.iter().zip(&sig.return_preds) {
            temp_names.push(t.clone());
            // translate e_i to the calling context: e_i[v/r, a/f]
            let mut e = subst_formals(&rp.expr, &sig.formals, args);
            let mut translatable = true;
            if let Some(r) = &sig.ret_var {
                if e.vars().iter().any(|v| v == r) {
                    match dst {
                        Some(d) => e = e.subst_var(r, d),
                        None => translatable = false,
                    }
                }
            }
            if translatable {
                temp_vars.push(ScopeVar {
                    name: t.clone(),
                    expr: e,
                });
            }
        }
        let call_stmt = BStmt::Call {
            id: Some(id),
            dsts: temp_names,
            proc: callee.to_string(),
            args: actuals,
        };
        // E_u: local predicates of the caller that may have changed
        let local_names: Vec<String> = self.global_preds.iter().map(Pred::var_name).collect();
        let mut updated = Vec::new();
        let mut unchanged_vars: Vec<ScopeVar> = Vec::new();
        for sv in &scope {
            let is_global_pred = local_names.contains(&sv.name);
            if is_global_pred {
                // global predicates are updated inside the callee
                unchanged_vars.push(sv.clone());
                continue;
            }
            if self.pred_may_change_across_call(&sv.expr, dst, args, callee) {
                updated.push(sv.clone());
            } else {
                unchanged_vars.push(sv.clone());
            }
        }
        let mut hyp_vars = unchanged_vars;
        hyp_vars.extend(temp_vars);
        let mut targets = Vec::new();
        let mut values = Vec::new();
        for sv in &updated {
            let val = self.with_search(|cs| cs.choose_value(&hyp_vars, &sv.expr));
            targets.push(sv.name.clone());
            values.push(val);
        }
        let mut stmts = vec![call_stmt];
        if !targets.is_empty() {
            stmts.push(BStmt::Assign {
                id: Some(id),
                targets,
                values,
            });
        }
        BStmt::Seq(stmts)
    }

    /// Does `pred` mention the destination, a location reachable from an
    /// actual pointer argument, or an alias thereof? (conservative E_u
    /// membership test).
    fn pred_may_change_across_call(
        &mut self,
        pred: &Expr,
        dst: &Option<Expr>,
        args: &[Expr],
        callee: &str,
    ) -> bool {
        // mentions the destination lvalue (or an alias of it)?
        if let Some(d) = dst {
            let mut ctx = self.wp_ctx();
            for loc in crate::wp::locations(pred) {
                if ctx.alias_case(d, &loc) != AliasCase::Never {
                    return true;
                }
            }
        }
        // dereferences something an actual pointer argument may reach?
        let derefd = pred.derefd_vars();
        if !derefd.is_empty() {
            let mut arg_ptr_vars: Vec<String> = Vec::new();
            for a in args {
                for v in a.vars() {
                    let ty = self
                        .func
                        .var_type(&v)
                        .cloned()
                        .or_else(|| self.env.var_type(None, &v));
                    if ty.map(|t| t.is_pointer_like()).unwrap_or(true) {
                        arg_ptr_vars.push(v);
                    }
                }
            }
            // globals reachable by the callee can also be written through
            let fname = self.func.name.clone();
            for d in &derefd {
                for a in &arg_ptr_vars {
                    if self.pts.targets_may_intersect(&fname, d, &fname, a) {
                        return true;
                    }
                }
                // written through a global pointer inside the callee
                for (g, ty) in &self.program.globals {
                    if ty.is_pointer_like() && self.pts.targets_may_intersect(&fname, d, callee, g)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Havoc for calls whose callee we cannot see (intrinsics, externals):
    /// local predicates mentioning the destination are invalidated.
    fn havoc_for_unknown_call(&mut self, id: Option<cparse::StmtId>, dst: &Option<Expr>) -> BStmt {
        let Some(d) = dst else {
            return BStmt::Skip;
        };
        let scope = self.scope_vars.to_vec();
        let mut targets = Vec::new();
        for sv in &scope {
            let mut ctx = self.wp_ctx();
            let affected = crate::wp::locations(&sv.expr)
                .iter()
                .any(|loc| ctx.alias_case(d, loc) != AliasCase::Never);
            if affected {
                targets.push(sv.name.clone());
            }
        }
        if targets.is_empty() {
            BStmt::Skip
        } else {
            let values = vec![BExpr::unknown(); targets.len()];
            BStmt::Assign {
                id,
                targets,
                values,
            }
        }
    }
}

// -- merge phase ----------------------------------------------------------

/// Replays the plan-phase walk, consuming one [`LeafResult`] per leaf.
struct Merger<'r> {
    results: &'r [LeafResult],
    cursor: usize,
}

impl<'r> Merger<'r> {
    fn next(&mut self) -> &'r LeafResult {
        let r = &self.results[self.cursor];
        self.cursor += 1;
        r
    }

    fn next_stmt(&mut self) -> BStmt {
        match &self.next().out {
            LeafOut::Stmt(s) => s.clone(),
            other => unreachable!("statement task yielded {other:?}"),
        }
    }

    fn next_guards(&mut self) -> (BExpr, BExpr) {
        match &self.next().out {
            LeafOut::Guards { pos, neg } => (pos.clone(), neg.clone()),
            other => unreachable!("guard task yielded {other:?}"),
        }
    }

    fn stmt(&mut self, s: &Stmt, sig: &Signature) -> BStmt {
        match s {
            Stmt::Skip => BStmt::Skip,
            Stmt::Goto(l) => BStmt::Goto(l.clone()),
            Stmt::Label(l) => BStmt::Label(l.clone()),
            Stmt::Seq(ss) => BStmt::Seq(ss.iter().map(|st| self.stmt(st, sig)).collect()),
            Stmt::Assign { .. } | Stmt::Call { .. } | Stmt::Assume { .. } => self.next_stmt(),
            Stmt::If {
                id,
                then_branch,
                else_branch,
                ..
            } => {
                let (g_then, g_else) = self.next_guards();
                let tb = self.stmt(then_branch, sig);
                let eb = self.stmt(else_branch, sig);
                BStmt::If {
                    id: Some(*id),
                    cond: BExpr::Nondet,
                    then_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(true),
                            cond: g_then,
                        },
                        tb,
                    ])),
                    else_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(false),
                            cond: g_else,
                        },
                        eb,
                    ])),
                }
            }
            Stmt::While { id, body, .. } => {
                let (g_enter, g_exit) = self.next_guards();
                let b = self.stmt(body, sig);
                BStmt::Seq(vec![
                    BStmt::While {
                        id: Some(*id),
                        cond: BExpr::Nondet,
                        body: Box::new(BStmt::Seq(vec![
                            BStmt::Assume {
                                id: Some(*id),
                                branch: Some(true),
                                cond: g_enter,
                            },
                            b,
                        ])),
                    },
                    BStmt::Assume {
                        id: Some(*id),
                        branch: Some(false),
                        cond: g_exit,
                    },
                ])
            }
            Stmt::Assert { id, .. } => {
                let (g_ok, g_fail) = self.next_guards();
                BStmt::If {
                    id: Some(*id),
                    cond: BExpr::Nondet,
                    then_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(false),
                            cond: g_fail,
                        },
                        BStmt::Assert {
                            id: Some(*id),
                            cond: BExpr::Const(false),
                        },
                    ])),
                    else_branch: Box::new(BStmt::Assume {
                        id: Some(*id),
                        branch: Some(true),
                        cond: g_ok,
                    }),
                }
            }
            Stmt::Return { id, .. } => {
                let values: Vec<BExpr> = sig
                    .return_preds
                    .iter()
                    .map(|p| BExpr::var(p.var_name()))
                    .collect();
                BStmt::Return {
                    id: Some(*id),
                    values,
                }
            }
            Stmt::Break | Stmt::Continue => {
                unreachable!("break/continue rejected during planning")
            }
        }
    }
}

/// Substitutes actuals for formals: `e[a1/f1, ..., an/fn]`.
fn subst_formals(e: &Expr, formals: &[String], actuals: &[Expr]) -> Expr {
    let mut out = e.clone();
    for (f, a) in formals.iter().zip(actuals) {
        out = out.subst_var(f, a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preds::parse_pred_file;
    use cparse::parse_and_simplify;

    fn abstract_src(src: &str, preds: &str) -> Abstraction {
        let program = parse_and_simplify(src).unwrap();
        let preds = parse_pred_file(preds).unwrap();
        abstract_program(&program, &preds, &C2bpOptions::paper_defaults()).unwrap()
    }

    #[test]
    fn simple_assignment_updates_predicate() {
        let a = abstract_src("void f(int x) { x = 0; }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{x == 0} = true;"), "{text}");
    }

    #[test]
    fn increment_uses_weakest_precondition() {
        // after x = x + 1, {x == 0} is true iff x == -1 before: with only
        // {x == 0} tracked, the positive case is unprovable and the
        // negative case follows from x == 0 (0+1 != 0)
        let a = abstract_src("void f(int x) { x = x + 1; }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(
            text.contains("{x == 0} = choose(false, {x == 0});"),
            "{text}"
        );
    }

    #[test]
    fn irrelevant_assignment_becomes_skip() {
        let a = abstract_src("void f(int x, int y) { y = 3; }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("skip;"), "{text}");
        assert!(!text.contains("{x == 0} ="), "{text}");
    }

    #[test]
    fn conditionals_get_assumes() {
        let a = abstract_src(
            "void f(int x) { if (x == 0) { x = 1; } else { x = 0; } }",
            "f x == 0",
        );
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("if (*)"), "{text}");
        assert!(text.contains("assume({x == 0});"), "{text}");
        assert!(text.contains("assume(!{x == 0});"), "{text}");
    }

    #[test]
    fn swap_correlation_is_tracked() {
        // t = x; x = y; y = t with preds x==1, y==1: the assignments
        // should copy predicate values, not havoc them
        let a = abstract_src(
            r#"
            void swap(int x, int y) {
                int t;
                t = x;
                x = y;
                y = t;
            }
            "#,
            "swap x == 1, y == 1, t == 1",
        );
        let p = a.bprogram.proc("swap").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{t == 1} = {x == 1};"), "{text}");
        assert!(text.contains("{x == 1} = {y == 1};"), "{text}");
        assert!(text.contains("{y == 1} = {t == 1};"), "{text}");
    }

    #[test]
    fn enforce_invariant_excludes_contradictions() {
        let a = abstract_src("void f(int x) { x = 1; }", "f x == 1, x == 2");
        let p = a.bprogram.proc("f").unwrap();
        let inv = p.enforce.as_ref().expect("enforce");
        let text = bp::print::bexpr_to_string(inv);
        assert!(text.contains("x == 1") && text.contains("x == 2"), "{text}");
    }

    #[test]
    fn figure_2_call_abstraction() {
        let a = abstract_src(
            r#"
            int bar(int* q, int y) {
                int l1, l2;
                l1 = y;
                l2 = 0;
                return l1;
            }
            void foo(int* p, int x) {
                int r;
                if (*p <= x) { *p = x; } else { *p = *p + x; }
                r = bar(p, x);
            }
            "#,
            "bar y >= 0, *q <= y, y == l1, y > l2\nfoo *p <= 0, x == 0, r == 0",
        );
        let bar = a.bprogram.proc("bar").unwrap();
        // E_f = {y >= 0, *q <= y} become formals
        assert_eq!(bar.formals.len(), 2);
        assert_eq!(bar.n_returns, 2);
        let foo = a.bprogram.proc("foo").unwrap();
        let text = bp::print::bstmt_to_string(&foo.body, 0);
        // call with temporaries receiving both return predicates
        assert!(text.contains("= bar("), "{text}");
        assert!(text.contains("__t0"), "{text}");
        // *p <= 0 and r == 0 must be updated after the call
        assert!(text.contains("{*p <= 0}"), "{text}");
        let sig = &a.signatures["bar"];
        assert_eq!(sig.return_preds.len(), 2);
    }

    #[test]
    fn nondet_call_havocs_destination_predicates() {
        let a = abstract_src("void f(int x) { x = nondet(); }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{x == 0} = unknown();"), "{text}");
    }

    #[test]
    fn assert_splits_into_failure_branch() {
        let a = abstract_src("void f(int x) { assert(x == 0); }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("assert(false);"), "{text}");
        assert!(text.contains("assume(!{x == 0});"), "{text}");
    }

    #[test]
    fn stats_are_populated() {
        let a = abstract_src("void f(int x) { x = x + 1; }", "f x == 0");
        assert_eq!(a.stats.predicates, 1);
        assert!(a.stats.prover_calls > 0);
        assert!(a.stats.lines > 0);
        assert_eq!(a.stats.jobs, 1);
        assert!(a.stats.units > 0);
        assert!(a.stats.shared_cache.insertions > 0);
    }

    #[test]
    fn pruning_cuts_prover_calls_but_not_behavior() {
        // {y == 0} feeds no guard, return, or enforce clause: both its
        // updates are dead. Pruning must skip their cube searches yet
        // leave the liveness-normalized program identical.
        let src = r#"
            void f(int x, int y) {
                y = 0;
                y = y + 1;
                if (x == 0) { x = 1; }
                assert(x == 1);
            }
        "#;
        let preds = "f x == 0, x == 1, y == 0";
        let program = parse_and_simplify(src).unwrap();
        let preds = parse_pred_file(preds).unwrap();
        let unpruned = abstract_program(&program, &preds, &C2bpOptions::paper_defaults()).unwrap();
        assert_eq!(unpruned.stats.pruned_updates, 0);
        let options = C2bpOptions {
            prune_dead_preds: true,
            ..C2bpOptions::paper_defaults()
        };
        let pruned = abstract_program(&program, &preds, &options).unwrap();
        assert!(pruned.stats.pruned_updates > 0, "{:?}", pruned.stats);
        assert!(
            pruned.stats.prover_calls < unpruned.stats.prover_calls,
            "pruned {} vs unpruned {}",
            pruned.stats.prover_calls,
            unpruned.stats.prover_calls
        );
        assert_eq!(
            analysis::normalized_text(&pruned.bprogram),
            analysis::normalized_text(&unpruned.bprogram)
        );
        // pruning stays worker-count independent
        let four = abstract_program(
            &program,
            &preds,
            &C2bpOptions {
                jobs: 4,
                ..options.clone()
            },
        )
        .unwrap();
        assert_eq!(
            bp::program_to_string(&pruned.bprogram),
            bp::program_to_string(&four.bprogram)
        );
        assert_eq!(pruned.stats.prover_calls, four.stats.prover_calls);
    }

    const REUSE_SRC: &str = r#"
        void f(int x, int y) {
            x = 0;
            y = y + 1;
            if (x == 0) { x = 1; }
            assert(x == 1);
        }
    "#;

    #[test]
    fn reuse_session_replays_identical_runs_for_free() {
        let program = parse_and_simplify(REUSE_SRC).unwrap();
        let preds = parse_pred_file("f x == 0, x == 1").unwrap();
        let opts = C2bpOptions::paper_defaults();
        let mut session = ReuseSession::new();
        let first = abstract_program_reusing(&program, &preds, &opts, &mut session).unwrap();
        assert_eq!(first.stats.reused_units, 0);
        assert!(first.stats.prover_calls > 0);
        assert_eq!(session.memo_len(), first.stats.units);
        // nothing changed: every leaf replays, no prover runs at all
        let second = abstract_program_reusing(&program, &preds, &opts, &mut session).unwrap();
        assert_eq!(second.stats.reused_units, second.stats.units);
        assert_eq!(second.stats.prover_calls, 0);
        assert_eq!(
            bp::program_to_string(&first.bprogram),
            bp::program_to_string(&second.bprogram)
        );
        // the per-run cache delta attributes no insertions to the replay
        assert_eq!(second.stats.shared_cache.insertions, 0);
    }

    #[test]
    fn reuse_matches_scratch_as_predicates_grow() {
        let program = parse_and_simplify(REUSE_SRC).unwrap();
        let mut opts = C2bpOptions::paper_defaults();
        // keep the prover-call comparison meaningful in release builds,
        // where an interval-oracle hit skips the prover call entirely
        opts.cubes.numeric_oracle = false;
        let mut session = ReuseSession::new();
        let steps = ["f x == 0, x == 1", "f x == 0, x == 1, y > 0"];
        for (i, step) in steps.iter().enumerate() {
            let preds = parse_pred_file(step).unwrap();
            let scratch = abstract_program(&program, &preds, &opts).unwrap();
            let reused = abstract_program_reusing(&program, &preds, &opts, &mut session).unwrap();
            assert_eq!(
                bp::program_to_string(&scratch.bprogram),
                bp::program_to_string(&reused.bprogram),
                "step {i}: reuse changed the boolean program"
            );
            if i > 0 {
                // the x-cone statements replay; only the new y-cone work
                // (and the full-scope enforce invariant) is re-solved
                assert!(reused.stats.reused_units >= 3, "{:?}", reused.stats);
                assert!(
                    reused.stats.prover_calls < scratch.stats.prover_calls,
                    "reuse spent {} vs scratch {}",
                    reused.stats.prover_calls,
                    scratch.stats.prover_calls
                );
            }
        }
    }

    #[test]
    fn reuse_is_worker_count_invariant() {
        let program = parse_and_simplify(REUSE_SRC).unwrap();
        let steps = ["f x == 0, x == 1", "f x == 0, x == 1, y > 0"];
        let run = |jobs: usize| {
            let opts = C2bpOptions {
                jobs,
                ..C2bpOptions::paper_defaults()
            };
            let mut session = ReuseSession::new();
            steps
                .iter()
                .map(|step| {
                    let preds = parse_pred_file(step).unwrap();
                    abstract_program_reusing(&program, &preds, &opts, &mut session).unwrap()
                })
                .collect::<Vec<_>>()
        };
        for (one, four) in run(1).iter().zip(run(4)) {
            assert_eq!(
                bp::program_to_string(&one.bprogram),
                bp::program_to_string(&four.bprogram)
            );
            assert_eq!(one.stats.prover_calls, four.stats.prover_calls);
            assert_eq!(one.stats.reused_units, four.stats.reused_units);
            assert_eq!(one.stats.cubes, four.stats.cubes);
        }
    }

    #[test]
    fn reuse_respects_option_gates() {
        let program = parse_and_simplify(REUSE_SRC).unwrap();
        let preds = parse_pred_file("f x == 0, x == 1").unwrap();
        // reuse off: the session is ignored entirely
        let off = C2bpOptions {
            reuse: false,
            ..C2bpOptions::paper_defaults()
        };
        let mut session = ReuseSession::new();
        abstract_program_reusing(&program, &preds, &off, &mut session).unwrap();
        assert_eq!(session.memo_len(), 0);
        // an options change between runs drops the memo instead of
        // replaying outputs computed under a different configuration
        let on = C2bpOptions::paper_defaults();
        abstract_program_reusing(&program, &preds, &on, &mut session).unwrap();
        assert!(session.memo_len() > 0);
        let changed = C2bpOptions {
            compute_enforce: false,
            ..C2bpOptions::paper_defaults()
        };
        let r = abstract_program_reusing(&program, &preds, &changed, &mut session).unwrap();
        assert_eq!(r.stats.reused_units, 0);
    }

    #[test]
    fn worker_count_does_not_change_the_output() {
        let src = r#"
            void f(int x, int y) {
                while (x > 0) {
                    if (y > x) { y = y - 1; } else { x = x - 1; }
                }
                assert(x <= 0);
            }
        "#;
        let preds = "f x > 0, y > x, x <= 0";
        let program = parse_and_simplify(src).unwrap();
        let preds = parse_pred_file(preds).unwrap();
        let run = |jobs: usize| {
            let options = C2bpOptions {
                jobs,
                ..C2bpOptions::paper_defaults()
            };
            abstract_program(&program, &preds, &options).unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(
            bp::program_to_string(&one.bprogram),
            bp::program_to_string(&four.bprogram)
        );
        assert_eq!(one.stats.prover_calls, four.stats.prover_calls);
        assert_eq!(one.stats.prover_cache_hits, four.stats.prover_cache_hits);
        assert_eq!(one.stats.cubes, four.stats.cubes);
        assert_eq!(four.stats.jobs, 4);
    }
}
