//! The C2bp abstraction algorithm (§4): translating a simplified C
//! program plus predicates into a boolean program, statement by
//! statement.
//!
//! The boolean program has the same control structure as the C program.
//! Assignments become parallel `choose(F(WP(s,φ)), F(WP(s,¬φ)))` updates
//! (§4.3), conditionals become nondeterministic branches guarded by
//! `assume(G(cond))` / `assume(G(!cond))` (§4.4), and procedure calls use
//! the modular signature scheme of §4.5. Each procedure receives an
//! `enforce` invariant `¬F(false)` ruling out inconsistent predicate
//! combinations (§5.1).

use crate::cubes::{CubeOptions, CubeSearch, CubeStats, ScopeVar};
use crate::preds::{Pred, PredScope};
use crate::sig::{signature, Signature};
use crate::wp::{wp_assign, AliasCase, WpCtx};
use bp::ast::{BExpr, BProc, BProgram, BStmt};
use cparse::ast::{Expr, Function, Program, Stmt};
use cparse::typeck::TypeEnv;
use pointsto::PointsTo;
use prover::Prover;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Options controlling the abstraction.
#[derive(Debug, Clone, Default)]
pub struct C2bpOptions {
    /// Cube-search options (§5.2).
    pub cubes: CubeOptions,
    /// Skip variables syntactically unaffected by an assignment
    /// (optimization 2). Disable only for ablation measurements.
    pub skip_unaffected: bool,
    /// Compute `enforce` invariants (§5.1).
    pub compute_enforce: bool,
}

impl C2bpOptions {
    /// The configuration used for the paper's experiments.
    pub fn paper_defaults() -> C2bpOptions {
        C2bpOptions {
            cubes: CubeOptions::default(),
            skip_unaffected: true,
            compute_enforce: true,
        }
    }
}

/// Failure of the abstraction (ill-formed inputs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsError {
    /// Description.
    pub message: String,
}

impl fmt::Display for AbsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "abstraction error: {}", self.message)
    }
}

impl std::error::Error for AbsError {}

/// Summary counters for one abstraction run (the columns of the paper's
/// Tables 1 and 2).
#[derive(Debug, Clone, Default)]
pub struct AbsStats {
    /// Non-blank pretty-printed source lines of the C program.
    pub lines: usize,
    /// Number of input predicates.
    pub predicates: usize,
    /// Theorem-prover calls (uncached queries).
    pub prover_calls: u64,
    /// Prover cache hits.
    pub prover_cache_hits: u64,
    /// Cube-search counters.
    pub cubes: CubeStats,
    /// Wall-clock seconds spent abstracting.
    pub seconds: f64,
}

/// The result of abstracting a program.
#[derive(Debug, Clone)]
pub struct Abstraction {
    /// The boolean program `BP(P, E)`.
    pub bprogram: BProgram,
    /// Signatures computed for each procedure.
    pub signatures: HashMap<String, Signature>,
    /// Run statistics.
    pub stats: AbsStats,
}

/// Runs C2bp: abstracts `program` (already simplified) with respect to
/// `preds`.
///
/// # Errors
///
/// Returns [`AbsError`] if a predicate references an unknown scope or the
/// program is not in the simplified intermediate form.
pub fn abstract_program(
    program: &Program,
    preds: &[Pred],
    options: &C2bpOptions,
) -> Result<Abstraction, AbsError> {
    let start = Instant::now();
    let env = TypeEnv::new(program);
    let mut pts = PointsTo::analyze(program);
    let mut prover = Prover::new();
    // validate scopes and dedupe
    let mut preds_vec: Vec<Pred> = Vec::new();
    for p in preds {
        if let PredScope::Local(f) = &p.scope {
            if program.function(f).is_none() {
                return Err(AbsError {
                    message: format!("predicate scope `{f}` is not a function"),
                });
            }
        }
        if !preds_vec
            .iter()
            .any(|q| q.scope == p.scope && q.var_name() == p.var_name())
        {
            preds_vec.push(p.clone());
        }
    }
    let global_preds: Vec<Pred> = preds_vec
        .iter()
        .filter(|p| p.scope == PredScope::Global)
        .cloned()
        .collect();

    // pass 1: signatures
    let mut signatures = HashMap::new();
    for f in &program.functions {
        signatures.insert(f.name.clone(), signature(program, f, &preds_vec));
    }

    // pass 2: abstraction
    let mut bprogram = BProgram {
        globals: global_preds.iter().map(Pred::var_name).collect(),
        procs: Vec::new(),
    };
    let mut cube_stats = CubeStats::default();
    for f in &program.functions {
        let mut actx = ProcAbstractor::new(
            program,
            &env,
            &mut pts,
            &mut prover,
            &signatures,
            &global_preds,
            &preds_vec,
            f,
            options,
        );
        let bproc = actx.run()?;
        cube_stats.cubes_tested += actx.cube_stats.cubes_tested;
        cube_stats.cubes_pruned += actx.cube_stats.cubes_pruned;
        cube_stats.fast_path_hits += actx.cube_stats.fast_path_hits;
        bprogram.procs.push(bproc);
    }

    let stats = AbsStats {
        lines: program.line_count(),
        predicates: preds_vec.len(),
        prover_calls: prover.stats.queries,
        prover_cache_hits: prover.stats.cache_hits,
        cubes: cube_stats,
        seconds: start.elapsed().as_secs_f64(),
    };
    Ok(Abstraction {
        bprogram,
        signatures,
        stats,
    })
}

/// Per-procedure abstraction state.
struct ProcAbstractor<'a> {
    program: &'a Program,
    env: &'a TypeEnv,
    pts: &'a mut PointsTo,
    prover: &'a mut Prover,
    signatures: &'a HashMap<String, Signature>,
    global_preds: &'a [Pred],
    all_preds: &'a [Pred],
    func: &'a Function,
    options: &'a C2bpOptions,
    /// Scope: global preds then this function's local preds.
    scope_vars: Vec<ScopeVar>,
    /// Extra boolean temporaries introduced for call returns.
    temps: Vec<String>,
    temp_counter: u32,
    cube_stats: CubeStats,
}

impl<'a> ProcAbstractor<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        program: &'a Program,
        env: &'a TypeEnv,
        pts: &'a mut PointsTo,
        prover: &'a mut Prover,
        signatures: &'a HashMap<String, Signature>,
        global_preds: &'a [Pred],
        all_preds: &'a [Pred],
        func: &'a Function,
        options: &'a C2bpOptions,
    ) -> ProcAbstractor<'a> {
        let mut scope_vars: Vec<ScopeVar> =
            global_preds.iter().map(ScopeVar::of_pred).collect();
        scope_vars.extend(
            all_preds
                .iter()
                .filter(|p| p.scope == PredScope::Local(func.name.clone()))
                .map(ScopeVar::of_pred),
        );
        ProcAbstractor {
            program,
            env,
            pts,
            prover,
            signatures,
            global_preds,
            all_preds,
            func,
            options,
            scope_vars,
            temps: Vec::new(),
            temp_counter: 0,
            cube_stats: CubeStats::default(),
        }
    }

    fn local_preds(&self) -> Vec<&'a Pred> {
        self.all_preds
            .iter()
            .filter(|p| p.scope == PredScope::Local(self.func.name.clone()))
            .collect()
    }

    /// Runs a cube search over the given variable set.
    fn with_search<T>(
        &mut self,
        run: impl FnOnce(&mut CubeSearch<'_>) -> T,
    ) -> T {
        let lookup = {
            let func = self.func;
            let env = self.env;
            move |name: &str| {
                func.var_type(name)
                    .cloned()
                    .or_else(|| env.var_type(None, name))
            }
        };
        let mut cs = CubeSearch::new(
            self.prover,
            self.env,
            &lookup,
            self.options.cubes.clone(),
        );
        let out = run(&mut cs);
        self.cube_stats.cubes_tested += cs.stats.cubes_tested;
        self.cube_stats.cubes_pruned += cs.stats.cubes_pruned;
        self.cube_stats.fast_path_hits += cs.stats.fast_path_hits;
        out
    }

    fn wp_ctx(&mut self) -> WpCtx<'_> {
        let func = self.func;
        let env = self.env;
        WpCtx {
            env: self.env,
            pts: self.pts,
            func: self.func.name.clone(),
            lookup: Box::new(move |name| {
                func.var_type(name)
                    .cloned()
                    .or_else(|| env.var_type(None, name))
            }),
        }
    }

    fn fresh_temp(&mut self) -> String {
        let name = format!("__t{}", self.temp_counter);
        self.temp_counter += 1;
        self.temps.push(name.clone());
        name
    }

    fn run(&mut self) -> Result<BProc, AbsError> {
        let body = self.stmt(&self.func.body)?;
        let sig = &self.signatures[&self.func.name];
        let formal_names: Vec<String> =
            sig.formal_preds.iter().map(Pred::var_name).collect();
        let locals: Vec<String> = self
            .local_preds()
            .iter()
            .map(|p| p.var_name())
            .filter(|n| !formal_names.contains(n))
            .chain(self.temps.iter().cloned())
            .collect();
        let enforce = if self.options.compute_enforce {
            let vars = self.scope_vars.clone();
            self.with_search(|cs| cs.enforce_invariant(&vars))
        } else {
            None
        };
        Ok(BProc {
            name: self.func.name.clone(),
            formals: formal_names,
            n_returns: sig.return_preds.len(),
            locals,
            enforce,
            body,
        })
    }

    fn stmt(&mut self, s: &Stmt) -> Result<BStmt, AbsError> {
        match s {
            Stmt::Skip => Ok(BStmt::Skip),
            Stmt::Goto(l) => Ok(BStmt::Goto(l.clone())),
            Stmt::Label(l) => Ok(BStmt::Label(l.clone())),
            Stmt::Seq(ss) => {
                let mut out = Vec::new();
                for st in ss {
                    out.push(self.stmt(st)?);
                }
                Ok(BStmt::Seq(out))
            }
            Stmt::Assign { id, lhs, rhs } => Ok(self.assign(Some(*id), lhs, rhs)),
            Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            } => {
                let vars = self.scope_vars.clone();
                let g_then =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, cond));
                let neg = cond.negated();
                let g_else =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, &neg));
                let tb = self.stmt(then_branch)?;
                let eb = self.stmt(else_branch)?;
                Ok(BStmt::If {
                    id: Some(*id),
                    cond: BExpr::Nondet,
                    then_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(true),
                            cond: g_then,
                        },
                        tb,
                    ])),
                    else_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(false),
                            cond: g_else,
                        },
                        eb,
                    ])),
                })
            }
            Stmt::While { id, cond, body } => {
                let vars = self.scope_vars.clone();
                let g_enter =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, cond));
                let neg = cond.negated();
                let g_exit =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, &neg));
                let b = self.stmt(body)?;
                Ok(BStmt::Seq(vec![
                    BStmt::While {
                        id: Some(*id),
                        cond: BExpr::Nondet,
                        body: Box::new(BStmt::Seq(vec![
                            BStmt::Assume {
                                id: Some(*id),
                                branch: Some(true),
                                cond: g_enter,
                            },
                            b,
                        ])),
                    },
                    BStmt::Assume {
                        id: Some(*id),
                        branch: Some(false),
                        cond: g_exit,
                    },
                ]))
            }
            Stmt::Assert { id, cond } => {
                let vars = self.scope_vars.clone();
                let neg = cond.negated();
                let g_fail =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, &neg));
                let g_ok =
                    self.with_search(|cs| cs.strongest_implied_conjunction(&vars, cond));
                Ok(BStmt::If {
                    id: Some(*id),
                    cond: BExpr::Nondet,
                    then_branch: Box::new(BStmt::Seq(vec![
                        BStmt::Assume {
                            id: Some(*id),
                            branch: Some(false),
                            cond: g_fail,
                        },
                        BStmt::Assert {
                            id: Some(*id),
                            cond: BExpr::Const(false),
                        },
                    ])),
                    else_branch: Box::new(BStmt::Assume {
                        id: Some(*id),
                        branch: Some(true),
                        cond: g_ok,
                    }),
                })
            }
            Stmt::Assume { id, cond } => {
                let vars = self.scope_vars.clone();
                let g = self
                    .with_search(|cs| cs.strongest_implied_conjunction(&vars, cond));
                Ok(BStmt::Assume {
                    id: Some(*id),
                    branch: None,
                    cond: g,
                })
            }
            Stmt::Return { id, .. } => {
                let sig = &self.signatures[&self.func.name];
                let values: Vec<BExpr> = sig
                    .return_preds
                    .iter()
                    .map(|p| BExpr::var(p.var_name()))
                    .collect();
                Ok(BStmt::Return { id: Some(*id), values })
            }
            Stmt::Call { id, dst, func, args } => self.call(*id, dst, func, args),
            Stmt::Break | Stmt::Continue => Err(AbsError {
                message: "break/continue must be simplified away before c2bp".into(),
            }),
        }
    }

    /// §4.3: abstraction of an assignment.
    fn assign(&mut self, id: Option<cparse::StmtId>, lhs: &Expr, rhs: &Expr) -> BStmt {
        let scope = self.scope_vars.clone();
        let mut targets = Vec::new();
        let mut values = Vec::new();
        for sv in &scope {
            let (wp_pos, wp_neg) = {
                let mut ctx = self.wp_ctx();
                let pos = wp_assign(&mut ctx, lhs, rhs, &sv.expr);
                let neg_pred = sv.expr.negated();
                let neg = wp_assign(&mut ctx, lhs, rhs, &neg_pred);
                (pos, neg)
            };
            if self.options.skip_unaffected {
                if let Some(wp) = &wp_pos {
                    if *wp == sv.expr {
                        continue; // optimization 2: definitely unchanged
                    }
                }
            }
            let value = match (wp_pos, wp_neg) {
                (Some(p), Some(n)) => {
                    let fp = self
                        .with_search(|cs| cs.largest_implying_disjunction(&scope, &p));
                    let fn_ = self
                        .with_search(|cs| cs.largest_implying_disjunction(&scope, &n));
                    BExpr::choose(fp, fn_)
                }
                _ => BExpr::unknown(),
            };
            targets.push(sv.name.clone());
            values.push(value);
        }
        if targets.is_empty() {
            BStmt::Skip
        } else {
            BStmt::Assign { id, targets, values }
        }
    }

    /// §4.5.3: abstraction of a procedure call.
    fn call(
        &mut self,
        id: cparse::StmtId,
        dst: &Option<Expr>,
        callee: &str,
        args: &[Expr],
    ) -> Result<BStmt, AbsError> {
        let scope = self.scope_vars.clone();
        let Some(sig) = self.signatures.get(callee).cloned() else {
            // intrinsic (nondet/malloc) or external function: havoc
            // everything the destination might touch
            return Ok(self.havoc_for_unknown_call(Some(id), dst));
        };
        // actuals for the formal-parameter predicates
        let mut actuals = Vec::new();
        for fp in &sig.formal_preds {
            let e_translated = subst_formals(&fp.expr, &sig.formals, args);
            let val = self.with_search(|cs| cs.choose_value(&scope, &e_translated));
            actuals.push(val);
        }
        // temporaries receiving the return predicates
        let mut temp_names = Vec::new();
        let mut temp_vars: Vec<ScopeVar> = Vec::new();
        for rp in &sig.return_preds {
            let t = self.fresh_temp();
            temp_names.push(t.clone());
            // translate e_i to the calling context: e_i[v/r, a/f]
            let mut e = subst_formals(&rp.expr, &sig.formals, args);
            let mut translatable = true;
            if let Some(r) = &sig.ret_var {
                if e.vars().iter().any(|v| v == r) {
                    match dst {
                        Some(d) => e = e.subst_var(r, d),
                        None => translatable = false,
                    }
                }
            }
            if translatable {
                temp_vars.push(ScopeVar { name: t, expr: e });
            }
        }
        let call_stmt = BStmt::Call {
            id: Some(id),
            dsts: temp_names,
            proc: callee.to_string(),
            args: actuals,
        };
        // E_u: local predicates of the caller that may have changed
        let local_names: Vec<String> =
            self.global_preds.iter().map(Pred::var_name).collect();
        let mut updated = Vec::new();
        let mut unchanged_vars: Vec<ScopeVar> = Vec::new();
        for sv in &scope {
            let is_global_pred = local_names.contains(&sv.name);
            if is_global_pred {
                // global predicates are updated inside the callee
                unchanged_vars.push(sv.clone());
                continue;
            }
            if self.pred_may_change_across_call(&sv.expr, dst, args, callee) {
                updated.push(sv.clone());
            } else {
                unchanged_vars.push(sv.clone());
            }
        }
        let mut hyp_vars = unchanged_vars;
        hyp_vars.extend(temp_vars);
        let mut targets = Vec::new();
        let mut values = Vec::new();
        for sv in &updated {
            let val = self.with_search(|cs| cs.choose_value(&hyp_vars, &sv.expr));
            targets.push(sv.name.clone());
            values.push(val);
        }
        let mut stmts = vec![call_stmt];
        if !targets.is_empty() {
            stmts.push(BStmt::Assign {
                id: Some(id),
                targets,
                values,
            });
        }
        Ok(BStmt::Seq(stmts))
    }

    /// Does `pred` mention the destination, a location reachable from an
    /// actual pointer argument, or an alias thereof? (conservative E_u
    /// membership test).
    fn pred_may_change_across_call(
        &mut self,
        pred: &Expr,
        dst: &Option<Expr>,
        args: &[Expr],
        callee: &str,
    ) -> bool {
        // mentions the destination lvalue (or an alias of it)?
        if let Some(d) = dst {
            let mut ctx = self.wp_ctx();
            for loc in crate::wp::locations(pred) {
                if ctx.alias_case(d, &loc) != AliasCase::Never {
                    return true;
                }
            }
        }
        // dereferences something an actual pointer argument may reach?
        let derefd = pred.derefd_vars();
        if !derefd.is_empty() {
            let mut arg_ptr_vars: Vec<String> = Vec::new();
            for a in args {
                for v in a.vars() {
                    let ty = self
                        .func
                        .var_type(&v)
                        .cloned()
                        .or_else(|| self.env.var_type(None, &v));
                    if ty.map(|t| t.is_pointer_like()).unwrap_or(true) {
                        arg_ptr_vars.push(v);
                    }
                }
            }
            // globals reachable by the callee can also be written through
            let fname = self.func.name.clone();
            for d in &derefd {
                for a in &arg_ptr_vars {
                    if self.pts.targets_may_intersect(&fname, d, &fname, a) {
                        return true;
                    }
                }
                // written through a global pointer inside the callee
                for (g, ty) in &self.program.globals {
                    if ty.is_pointer_like()
                        && self.pts.targets_may_intersect(&fname, d, callee, g)
                    {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Havoc for calls whose callee we cannot see (intrinsics, externals):
    /// local predicates mentioning the destination are invalidated.
    fn havoc_for_unknown_call(
        &mut self,
        id: Option<cparse::StmtId>,
        dst: &Option<Expr>,
    ) -> BStmt {
        let Some(d) = dst else {
            return BStmt::Skip;
        };
        let scope = self.scope_vars.clone();
        let mut targets = Vec::new();
        for sv in &scope {
            let mut ctx = self.wp_ctx();
            let affected = crate::wp::locations(&sv.expr)
                .iter()
                .any(|loc| ctx.alias_case(d, loc) != AliasCase::Never);
            if affected {
                targets.push(sv.name.clone());
            }
        }
        if targets.is_empty() {
            BStmt::Skip
        } else {
            let values = vec![BExpr::unknown(); targets.len()];
            BStmt::Assign { id, targets, values }
        }
    }
}

/// Substitutes actuals for formals: `e[a1/f1, ..., an/fn]`.
fn subst_formals(e: &Expr, formals: &[String], actuals: &[Expr]) -> Expr {
    let mut out = e.clone();
    for (f, a) in formals.iter().zip(actuals) {
        out = out.subst_var(f, a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preds::parse_pred_file;
    use cparse::parse_and_simplify;

    fn abstract_src(src: &str, preds: &str) -> Abstraction {
        let program = parse_and_simplify(src).unwrap();
        let preds = parse_pred_file(preds).unwrap();
        abstract_program(&program, &preds, &C2bpOptions::paper_defaults()).unwrap()
    }

    #[test]
    fn simple_assignment_updates_predicate() {
        let a = abstract_src(
            "void f(int x) { x = 0; }",
            "f x == 0",
        );
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{x == 0} = true;"), "{text}");
    }

    #[test]
    fn increment_uses_weakest_precondition() {
        // after x = x + 1, {x == 0} is true iff x == -1 before: with only
        // {x == 0} tracked, the positive case is unprovable and the
        // negative case follows from x == 0 (0+1 != 0)
        let a = abstract_src("void f(int x) { x = x + 1; }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(
            text.contains("{x == 0} = choose(false, {x == 0});"),
            "{text}"
        );
    }

    #[test]
    fn irrelevant_assignment_becomes_skip() {
        let a = abstract_src("void f(int x, int y) { y = 3; }", "f x == 0");
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("skip;"), "{text}");
        assert!(!text.contains("{x == 0} ="), "{text}");
    }

    #[test]
    fn conditionals_get_assumes() {
        let a = abstract_src(
            "void f(int x) { if (x == 0) { x = 1; } else { x = 0; } }",
            "f x == 0",
        );
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("if (*)"), "{text}");
        assert!(text.contains("assume({x == 0});"), "{text}");
        assert!(text.contains("assume(!{x == 0});"), "{text}");
    }

    #[test]
    fn swap_correlation_is_tracked() {
        // t = x; x = y; y = t with preds x==1, y==1: the assignments
        // should copy predicate values, not havoc them
        let a = abstract_src(
            r#"
            void swap(int x, int y) {
                int t;
                t = x;
                x = y;
                y = t;
            }
            "#,
            "swap x == 1, y == 1, t == 1",
        );
        let p = a.bprogram.proc("swap").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{t == 1} = {x == 1};"), "{text}");
        assert!(text.contains("{x == 1} = {y == 1};"), "{text}");
        assert!(text.contains("{y == 1} = {t == 1};"), "{text}");
    }

    #[test]
    fn enforce_invariant_excludes_contradictions() {
        let a = abstract_src(
            "void f(int x) { x = 1; }",
            "f x == 1, x == 2",
        );
        let p = a.bprogram.proc("f").unwrap();
        let inv = p.enforce.as_ref().expect("enforce");
        let text = bp::print::bexpr_to_string(inv);
        assert!(text.contains("x == 1") && text.contains("x == 2"), "{text}");
    }

    #[test]
    fn figure_2_call_abstraction() {
        let a = abstract_src(
            r#"
            int bar(int* q, int y) {
                int l1, l2;
                l1 = y;
                l2 = 0;
                return l1;
            }
            void foo(int* p, int x) {
                int r;
                if (*p <= x) { *p = x; } else { *p = *p + x; }
                r = bar(p, x);
            }
            "#,
            "bar y >= 0, *q <= y, y == l1, y > l2\nfoo *p <= 0, x == 0, r == 0",
        );
        let bar = a.bprogram.proc("bar").unwrap();
        // E_f = {y >= 0, *q <= y} become formals
        assert_eq!(bar.formals.len(), 2);
        assert_eq!(bar.n_returns, 2);
        let foo = a.bprogram.proc("foo").unwrap();
        let text = bp::print::bstmt_to_string(&foo.body, 0);
        // call with temporaries receiving both return predicates
        assert!(text.contains("= bar("), "{text}");
        assert!(text.contains("__t0"), "{text}");
        // *p <= 0 and r == 0 must be updated after the call
        assert!(text.contains("{*p <= 0}"), "{text}");
        let sig = &a.signatures["bar"];
        assert_eq!(sig.return_preds.len(), 2);
    }

    #[test]
    fn nondet_call_havocs_destination_predicates() {
        let a = abstract_src(
            "void f(int x) { x = nondet(); }",
            "f x == 0",
        );
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("{x == 0} = unknown();"), "{text}");
    }

    #[test]
    fn assert_splits_into_failure_branch() {
        let a = abstract_src(
            "void f(int x) { assert(x == 0); }",
            "f x == 0",
        );
        let p = a.bprogram.proc("f").unwrap();
        let text = bp::print::bstmt_to_string(&p.body, 0);
        assert!(text.contains("assert(false);"), "{text}");
        assert!(text.contains("assume(!{x == 0});"), "{text}");
    }

    #[test]
    fn stats_are_populated() {
        let a = abstract_src("void f(int x) { x = x + 1; }", "f x == 0");
        assert_eq!(a.stats.predicates, 1);
        assert!(a.stats.prover_calls > 0);
        assert!(a.stats.lines > 0);
    }
}
