//! Alias-precision lint: assignments whose Morris-axiom `May` disjunct
//! is statically dead under the inclusion points-to analysis.
//!
//! The WP of an assignment guards each possibly-aliased location with a
//! runtime alias test (`*p == &x ? ... : ...`). When the unification
//! analysis reports `May` but the sharper inclusion analysis proves
//! `Never`, that guard — and the `decide`/constant-store update built
//! from it — can never fire: the abstraction is still sound, just
//! carrying provably unreachable alias cases. This lint enumerates those
//! sites so a precision regression (or a too-coarse analysis choice)
//! shows up as a warning instead of silent prover work.
//!
//! Warnings are advisory, never failures: both analyses are sound, and
//! under `--alias=unify` the extra disjuncts are the expected cost.

use crate::preds::{Pred, PredScope};
use crate::wp::{AliasCase, WpCtx};
use cparse::ast::{Expr, Program, Stmt};
use cparse::pretty::expr_to_string;
use cparse::typeck::TypeEnv;
use cparse::StmtId;
use pointsto::{AliasMode, AliasOracle};
use std::fmt;

/// One assignment × predicate-location pair whose alias disjunct the
/// inclusion analysis refutes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AliasLintWarning {
    /// Enclosing function.
    pub func: String,
    /// The assignment's statement id.
    pub stmt: StmtId,
    /// Pretty-printed assigned lvalue.
    pub lhs: String,
    /// Pretty-printed location from the predicate.
    pub location: String,
    /// The predicate mentioning the location.
    pub pred: String,
}

impl fmt::Display for AliasLintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} stmt {}: `{} = ...` may-aliases `{}` (predicate `{}`) only under \
             unification; the inclusion analysis proves the disjunct unreachable",
            self.func, self.stmt, self.lhs, self.location, self.pred
        )
    }
}

/// Runs both points-to analyses and reports, for every assignment and
/// every in-scope predicate location, the alias disjuncts the
/// unification analysis would emit but the inclusion analysis refutes.
/// Deterministic: functions, statements, predicates and locations are
/// visited in program order.
pub fn lint_alias_precision(program: &Program, preds: &[Pred]) -> Vec<AliasLintWarning> {
    let env = TypeEnv::new(program);
    let unify = pointsto::analyze_shared(program, AliasMode::Unify);
    let inclusion = pointsto::analyze_shared(program, AliasMode::Inclusion);
    let mut out = Vec::new();
    for f in &program.functions {
        let scope: Vec<&Pred> = preds
            .iter()
            .filter(|p| p.scope == PredScope::Global || p.scope == PredScope::Local(f.name.clone()))
            .collect();
        if scope.is_empty() {
            continue;
        }
        let mut assigns: Vec<(StmtId, &Expr)> = Vec::new();
        f.body.walk(&mut |s| {
            if let Stmt::Assign { id, lhs, .. } = s {
                assigns.push((*id, lhs));
            }
        });
        let case_of = |oracle: &dyn AliasOracle, lhs: &Expr, loc: &Expr| -> AliasCase {
            let mut ctx = WpCtx {
                env: &env,
                pts: oracle,
                may_disjuncts: 0,
                func: f.name.clone(),
                lookup: Box::new(|name| {
                    f.var_type(name)
                        .cloned()
                        .or_else(|| env.var_type(None, name))
                }),
            };
            ctx.alias_case(lhs, loc)
        };
        for (id, lhs) in assigns {
            for p in &scope {
                for loc in crate::wp::locations(&p.expr) {
                    let coarse = case_of(unify.as_ref(), lhs, &loc);
                    if matches!(coarse, AliasCase::Never | AliasCase::Must) {
                        continue; // no disjunct, or a certain alias
                    }
                    if case_of(inclusion.as_ref(), lhs, &loc) == AliasCase::Never {
                        out.push(AliasLintWarning {
                            func: f.name.clone(),
                            stmt: id,
                            lhs: expr_to_string(lhs),
                            location: expr_to_string(&loc),
                            pred: p.var_name(),
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preds::parse_pred_file;
    use cparse::parse_and_simplify;

    /// The seeded defect: `p` only ever points to `x`, but the
    /// unification analysis merges `p` and `q` (one equivalence class
    /// with `{x, y}`), so `*p = 3` drags a dead `p == &y` disjunct into
    /// the WP of `y == 0`.
    const SEEDED: &str = r#"
        void f(int x, int y) {
            int* p;
            int* q;
            p = &x;
            q = p;
            q = &y;
            *p = 3;
        }
    "#;

    #[test]
    fn directional_copy_defect_is_reported() {
        let program = parse_and_simplify(SEEDED).unwrap();
        let preds = parse_pred_file("f y == 0").unwrap();
        let warnings = lint_alias_precision(&program, &preds);
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        let w = &warnings[0];
        assert_eq!(w.func, "f");
        assert_eq!(w.lhs, "*p");
        assert_eq!(w.location, "y");
        assert_eq!(w.pred, "y == 0");
        assert!(w.to_string().contains("unreachable"), "{w}");
    }

    #[test]
    fn genuinely_reachable_disjuncts_stay_silent() {
        // Both analyses agree `p` may point at `x`: the disjunct is real.
        let program = parse_and_simplify(
            r#"
            void f(int x, int c) {
                int* p;
                p = &x;
                if (c > 0) { p = &c; }
                *p = 3;
            }
            "#,
        )
        .unwrap();
        let preds = parse_pred_file("f x == 0").unwrap();
        assert!(lint_alias_precision(&program, &preds).is_empty());
    }

    #[test]
    fn programs_without_pointers_never_warn() {
        let program = parse_and_simplify("void f(int x) { x = 1; }").unwrap();
        let preds = parse_pred_file("f x == 0").unwrap();
        assert!(lint_alias_precision(&program, &preds).is_empty());
    }
}
