//! The cube search: `F_V(φ)` and `G_V(φ)` (§4.1) with the optimizations
//! of §5.2.
//!
//! `F_V(φ)` is the largest disjunction of cubes `c` over the boolean
//! variables `V` such that `E(c) ⇒ φ`; it is the *weakest* expressible
//! strengthening of `φ`. `G_V(φ) = ¬F_V(¬φ)` is the strongest expressible
//! weakening. Each candidate cube costs a theorem-prover call, so the
//! search implements all five optimizations the paper describes:
//!
//! 1. cubes enumerated by increasing length, pruning supersets of found
//!    implicants (yielding only prime implicants) and supersets of cubes
//!    shown to imply `¬φ`;
//! 2. (in `abs.rs`) variables whose predicate is syntactically unaffected
//!    by an assignment are not updated at all;
//! 3. a syntactic cone-of-influence pre-pass restricts `V` to predicates
//!    sharing locations (or aliased locations) with `φ`;
//! 4. syntactic fast paths (`φ` literally equal to a predicate or its
//!    negation) answer without any prover call;
//! 5. prover-result caching (inside [`prover::Prover`]).
//!
//! Two precision-trading options are also implemented: the cube-length
//! bound `k` (the paper found `k = 3` sufficient) and recursive
//! distribution of `F` over `&&`/`||`.

use crate::preds::Pred;
use analysis::intervals::{decide_implication, NumericAnswer};
use bp::BExpr;
use cparse::ast::{BinOp, Expr, Program, Type, UnOp};
use cparse::typeck::TypeEnv;
use pointsto::AliasOracle;
use prover::{Formula, Prover, ProverSession, SatResult, SessionStats, Translator};
use std::collections::{HashMap, HashSet};

/// Which engine answers the per-goal `F_V`/`G_V` computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeEngine {
    /// The paper's cube search: enumerate cubes by increasing length with
    /// §5.2 superset pruning, one implication query per surviving cube.
    Search,
    /// AllSAT model enumeration: per goal polarity, enumerate the
    /// solver-accepted total sign patterns of the predicates in one
    /// incremental session (SAT → project the model onto the predicates →
    /// assert a blocking clause → repeat until UNSAT), then extract the
    /// prime implicants combinatorially with zero further prover calls.
    /// Falls back to `Search` for a goal on solver `Unknown`s or pattern
    /// blowup, so every goal is always answered; outputs are identical to
    /// `Search` (gated by `tests/enum_differential.rs`). Implies
    /// incremental sessions regardless of the `incremental` flag.
    Enumerate,
}

impl std::str::FromStr for CubeEngine {
    type Err = String;

    fn from_str(s: &str) -> Result<CubeEngine, String> {
        match s {
            "search" => Ok(CubeEngine::Search),
            "enumerate" => Ok(CubeEngine::Enumerate),
            other => Err(format!("unknown cube engine '{other}'")),
        }
    }
}

impl std::fmt::Display for CubeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CubeEngine::Search => "search",
            CubeEngine::Enumerate => "enumerate",
        })
    }
}

/// Tunable knobs for the cube search (see module docs).
#[derive(Debug, Clone)]
pub struct CubeOptions {
    /// Maximum cube length `k`; `None` means unbounded (exact).
    pub max_cube_len: Option<usize>,
    /// Enable the syntactic cone-of-influence restriction of `V`.
    pub cone_of_influence: bool,
    /// Enable syntactic fast paths.
    pub syntactic_fast_paths: bool,
    /// Distribute `F` through `&&` and `||` (loses precision on `||`).
    pub atomic_decomposition: bool,
    /// Answer cache-missed cube queries with a per-goal incremental
    /// [`ProverSession`] instead of from-scratch solving. Caching, query
    /// counting and results are identical either way; only wall time
    /// changes. Ignored by [`CubeEngine::Enumerate`], which always
    /// solves through sessions.
    pub incremental: bool,
    /// Consult the interval/constant numeric oracle
    /// ([`analysis::intervals::decide_implication`]) before each prover
    /// query. Oracle answers are exact (cross-checked against the prover
    /// in debug builds), so results are identical either way; only the
    /// prover-call count changes.
    pub numeric_oracle: bool,
    /// The engine answering each goal (see [`CubeEngine`]).
    pub engine: CubeEngine,
}

impl Default for CubeOptions {
    fn default() -> CubeOptions {
        CubeOptions {
            max_cube_len: Some(3),
            cone_of_influence: true,
            syntactic_fast_paths: true,
            atomic_decomposition: false,
            incremental: true,
            numeric_oracle: true,
            engine: CubeEngine::Enumerate,
        }
    }
}

/// Counters for the search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CubeStats {
    /// Cubes whose implication was actually checked.
    pub cubes_tested: u64,
    /// Cubes skipped by superset pruning.
    pub cubes_pruned: u64,
    /// Queries answered by the syntactic fast path.
    pub fast_path_hits: u64,
    /// Implications the numeric oracle settled as valid.
    pub numeric_proved: u64,
    /// Implications the numeric oracle settled as invalid.
    pub numeric_disproved: u64,
    /// Models accepted during AllSAT enumeration (enumerate engine).
    pub models_enumerated: u64,
    /// Goals where the enumerate engine fell back to the search.
    pub enum_fallbacks: u64,
}

/// One in-scope boolean variable: its BP name and its predicate.
#[derive(Debug, Clone)]
pub struct ScopeVar {
    /// Boolean-program variable name.
    pub name: String,
    /// The predicate `E(b)`.
    pub expr: Expr,
}

impl ScopeVar {
    /// Builds a scope variable from a predicate.
    pub fn of_pred(p: &Pred) -> ScopeVar {
        ScopeVar {
            name: p.var_name(),
            expr: p.expr.clone(),
        }
    }
}

/// The cube-search engine for one scope (one procedure's abstraction).
pub struct CubeSearch<'a> {
    /// The shared prover.
    pub prover: &'a mut Prover,
    /// Typing environment (for translation).
    pub env: &'a TypeEnv,
    /// Variable-type lookup of the enclosing scope.
    pub lookup: &'a dyn Fn(&str) -> Option<Type>,
    /// Options.
    pub options: CubeOptions,
    /// Counters.
    pub stats: CubeStats,
    /// Incremental-session counters, aggregated over all goals searched.
    /// Unlike [`CubeStats`] these depend on cache scheduling (a query
    /// served by the shared cache never reaches a session), so they are
    /// diagnostics, not deterministic outputs.
    pub session_stats: SessionStats,
    /// Alias groups of the enclosing function, refining the cone of
    /// influence (`None` keeps the legacy any-deref-links-any-deref
    /// behavior — the unification mode).
    pub groups: Option<&'a AliasGroups>,
}

impl<'a> CubeSearch<'a> {
    /// Creates a search engine.
    pub fn new(
        prover: &'a mut Prover,
        env: &'a TypeEnv,
        lookup: &'a dyn Fn(&str) -> Option<Type>,
        options: CubeOptions,
    ) -> CubeSearch<'a> {
        CubeSearch {
            prover,
            env,
            lookup,
            options,
            stats: CubeStats::default(),
            session_stats: SessionStats::default(),
            groups: None,
        }
    }

    fn translate(&mut self, e: &Expr) -> Option<Formula> {
        let mut t = Translator::new(&mut self.prover.store, self.env, self.lookup);
        t.formula(e).ok()
    }

    /// Asks the numeric oracle whether `⋀ hyps ⇒ goal`. `Some(true)` /
    /// `Some(false)` replace a prover call; `None` falls through to the
    /// prover. The oracle only fires on pure integer-scalar queries,
    /// where interval semantics coincides with the prover's linear
    /// arithmetic, so a definite answer is always the prover's answer
    /// (enforced by a debug-build cross-check at every call site).
    fn numeric_decide(&mut self, hyps: &[(&Expr, bool)], goal: &Expr) -> Option<bool> {
        if !self.options.numeric_oracle {
            return None;
        }
        let lookup = self.lookup;
        let is_int = |v: &str| matches!(lookup(v), Some(Type::Int));
        match decide_implication(hyps, goal, &is_int)? {
            NumericAnswer::Proved => {
                self.stats.numeric_proved += 1;
                Some(true)
            }
            NumericAnswer::Disproved => {
                self.stats.numeric_disproved += 1;
                Some(false)
            }
        }
    }

    /// `F_V(φ)`: the largest disjunction of cubes over `vars` implying
    /// `φ`, as a boolean-program expression.
    pub fn largest_implying_disjunction(&mut self, vars: &[ScopeVar], phi: &Expr) -> BExpr {
        if self.options.atomic_decomposition {
            match phi {
                Expr::Binary(BinOp::And, l, r) => {
                    let a = self.largest_implying_disjunction(vars, l);
                    let b = self.largest_implying_disjunction(vars, r);
                    return BExpr::and([a, b]);
                }
                Expr::Binary(BinOp::Or, l, r) => {
                    let a = self.largest_implying_disjunction(vars, l);
                    let b = self.largest_implying_disjunction(vars, r);
                    return BExpr::or([a, b]);
                }
                _ => {}
            }
        }
        // fast paths
        if self.options.syntactic_fast_paths {
            if let Some(b) = self.fast_path(vars, phi) {
                self.stats.fast_path_hits += 1;
                return b;
            }
        }
        let relevant: Vec<&ScopeVar> = if self.options.cone_of_influence {
            cone_of_influence(vars, phi, self.groups)
        } else {
            vars.iter().collect()
        };
        let Some(goal) = self.translate(phi) else {
            // untranslatable goal: nothing can be proven to imply it
            return BExpr::Const(false);
        };
        // trivial validity/unsatisfiability of φ itself; the numeric
        // oracle short-circuits the prover when intervals already decide
        // validity (cross-checked against the prover in debug builds)
        let trivially_valid = match self.numeric_decide(&[], phi) {
            Some(ans) => {
                debug_assert_eq!(
                    ans,
                    self.prover.implies(&Formula::True, &goal),
                    "numeric oracle diverged from prover on validity of {phi:?}"
                );
                ans
            }
            None => self.prover.implies(&Formula::True, &goal),
        };
        if trivially_valid {
            return BExpr::Const(true);
        }
        let lits: Vec<(usize, Formula)> = relevant
            .iter()
            .enumerate()
            .filter_map(|(i, v)| self.translate(&v.expr).map(|f| (i, f)))
            .collect();
        // both polarities of every literal, cloned once per goal instead
        // of once per cube
        let lits_neg: Vec<Formula> = lits.iter().map(|(_, f)| f.clone().negate()).collect();
        let max_len = self
            .options
            .max_cube_len
            .unwrap_or(lits.len())
            .min(lits.len());
        let neg_goal = goal.clone().negate();
        let neg_phi = phi.negated();
        // when computing F(false) for `enforce`, the "cube implies ¬φ"
        // pruning would block everything (every satisfiable cube implies
        // true); the unsatisfiable cubes are exactly what we are looking
        // for there
        let track_blocked = goal != Formula::False;
        let ctx = GoalLits {
            goal,
            neg_goal,
            lits,
            lits_neg,
            max_len,
            track_blocked,
        };
        let implicants = match self.options.engine {
            CubeEngine::Enumerate => {
                match self.enumerate_implicants(&relevant, phi, &neg_phi, &ctx) {
                    Some(implicants) => implicants,
                    None => {
                        self.stats.enum_fallbacks += 1;
                        self.search_implicants(&relevant, phi, &neg_phi, &ctx)
                    }
                }
            }
            CubeEngine::Search => self.search_implicants(&relevant, phi, &neg_phi, &ctx),
        };
        BExpr::or(implicants.into_iter().map(|cube| {
            BExpr::and(cube.into_iter().map(|(vi, pos)| {
                let var = BExpr::var(relevant[ctx.lits[vi].0].name.clone());
                if pos {
                    var
                } else {
                    var.negate()
                }
            }))
        }))
    }

    /// The paper's engine: enumerate cubes over `ctx.lits` by increasing
    /// length with superset pruning, one implication query per surviving
    /// cube. Returns the prime implicants in enumeration order.
    fn search_implicants(
        &mut self,
        relevant: &[&ScopeVar],
        phi: &Expr,
        neg_phi: &Expr,
        ctx: &GoalLits,
    ) -> Vec<Vec<(usize, bool)>> {
        let GoalLits {
            goal,
            neg_goal,
            lits,
            lits_neg,
            max_len,
            track_blocked,
        } = ctx;
        let (max_len, track_blocked) = (*max_len, *track_blocked);
        let mut implicants: Vec<Vec<(usize, bool)>> = Vec::new();
        let mut blocked: Vec<Vec<(usize, bool)>> = Vec::new();
        // Incremental mode: one session per implication direction, with
        // the goal side asserted once and every literal registered once.
        // Only cache-missed queries reach a session, and results, caching
        // and query counting are identical to from-scratch solving.
        let mut sessions = self.options.incremental.then(|| {
            let mut pos = ProverSession::new(neg_goal);
            let pos_ids: Vec<_> = lits
                .iter()
                .zip(lits_neg)
                .map(|((_, f), nf)| (pos.assume(f), pos.assume(nf)))
                .collect();
            let neg = track_blocked.then(|| {
                let base = neg_goal.clone().negate();
                let mut sess = ProverSession::new(&base);
                let ids: Vec<_> = lits
                    .iter()
                    .zip(lits_neg)
                    .map(|((_, f), nf)| (sess.assume(f), sess.assume(nf)))
                    .collect();
                (sess, ids)
            });
            (pos, pos_ids, neg)
        });
        // enumerate cubes by increasing length
        for len in 1..=max_len {
            let mut combo = CubeEnum::new(lits.len(), len);
            while let Some(cube_vars) = combo.next_combo() {
                'signs: for signs in 0..(1u32 << len) {
                    let cube: Vec<(usize, bool)> = cube_vars
                        .iter()
                        .enumerate()
                        .map(|(pos, &vi)| (vi, signs & (1 << pos) != 0))
                        .collect();
                    // superset pruning
                    for known in implicants.iter().chain(blocked.iter()) {
                        if known.iter().all(|l| cube.contains(l)) {
                            self.stats.cubes_pruned += 1;
                            continue 'signs;
                        }
                    }
                    self.stats.cubes_tested += 1;
                    let hyp_refs: Vec<&Formula> = cube
                        .iter()
                        .map(|&(vi, pos)| if pos { &lits[vi].1 } else { &lits_neg[vi] })
                        .collect();
                    let hyp_exprs: Vec<(&Expr, bool)> = cube
                        .iter()
                        .map(|&(vi, pos)| (&relevant[lits[vi].0].expr, pos))
                        .collect();
                    let numeric = self.numeric_decide(&hyp_exprs, phi);
                    // in debug builds an oracle hit still runs the prover
                    // path so the answers can be cross-checked; release
                    // builds skip the prover call entirely
                    let prover_implies =
                        (numeric.is_none() || cfg!(debug_assertions)).then(
                            || match &mut sessions {
                                Some((pos_sess, pos_ids, _)) => {
                                    let ids: Vec<_> = cube
                                        .iter()
                                        .map(
                                            |&(vi, pos)| {
                                                if pos {
                                                    pos_ids[vi].0
                                                } else {
                                                    pos_ids[vi].1
                                                }
                                            },
                                        )
                                        .collect();
                                    self.prover.implication_query(&hyp_refs, goal, |store| {
                                        pos_sess.solve_assuming(store, &ids)
                                    }) == prover::SatResult::Unsat
                                }
                                None => self.prover.implies_refs(&hyp_refs, goal),
                            },
                        );
                    let implies_goal = match numeric {
                        Some(ans) => {
                            if let Some(actual) = prover_implies {
                                assert_eq!(
                                    ans, actual,
                                    "numeric oracle diverged from prover on cube ⇒ {phi:?} \
                                     (hyps: {hyp_exprs:?})"
                                );
                            }
                            ans
                        }
                        None => prover_implies.expect("prover ran when the oracle abstained"),
                    };
                    if implies_goal {
                        implicants.push(cube);
                    } else if track_blocked {
                        let numeric_blocks = self.numeric_decide(&hyp_exprs, neg_phi);
                        let prover_blocks = (numeric_blocks.is_none() || cfg!(debug_assertions))
                            .then(|| match &mut sessions {
                                Some((_, _, Some((neg_sess, neg_ids)))) => {
                                    let ids: Vec<_> = cube
                                        .iter()
                                        .map(
                                            |&(vi, pos)| {
                                                if pos {
                                                    neg_ids[vi].0
                                                } else {
                                                    neg_ids[vi].1
                                                }
                                            },
                                        )
                                        .collect();
                                    self.prover.implication_query(&hyp_refs, neg_goal, |store| {
                                        neg_sess.solve_assuming(store, &ids)
                                    }) == prover::SatResult::Unsat
                                }
                                _ => self.prover.implies_refs(&hyp_refs, neg_goal),
                            });
                        let blocks = match numeric_blocks {
                            Some(ans) => {
                                if let Some(actual) = prover_blocks {
                                    assert_eq!(
                                        ans, actual,
                                        "numeric oracle diverged from prover on cube ⇒ ¬{phi:?}"
                                    );
                                }
                                ans
                            }
                            None => prover_blocks.expect("prover ran when the oracle abstained"),
                        };
                        if blocks {
                            blocked.push(cube);
                        }
                    }
                }
            }
        }
        if let Some((pos, _, neg)) = sessions {
            self.session_stats.absorb(&pos.stats);
            if let Some((neg, _)) = neg {
                self.session_stats.absorb(&neg.stats);
            }
        }
        implicants
    }

    /// The AllSAT engine: compute the same prime implicants as
    /// [`search_implicants`](Self::search_implicants) from two model
    /// enumerations instead of per-cube queries.
    ///
    /// A cube `c` implies the goal exactly when no theory-consistent
    /// total sign pattern of the predicates extends `c` under `¬goal` —
    /// so the patterns of `¬goal` (each one solver call, each blocked
    /// with a clause once seen) determine *implies goal* for every cube
    /// at once, and the patterns of `goal` likewise determine *implies
    /// ¬goal* (the search's blocked-cube pruning). The prime implicants
    /// are then extracted combinatorially by
    /// [`extract_prime_cubes`]. Cost: one solver run per consistent
    /// pattern per polarity plus one final UNSAT each, instead of one
    /// query per surviving cube.
    ///
    /// Returns `None` — fall back to the search — when a solve answers
    /// `Unknown`, a model leaves a predicate undetermined, the pattern
    /// count exceeds [`model_budget`] (past which enumeration has no
    /// advantage), or the extraction blows its node budget.
    ///
    /// The numeric oracle prefilters both per-polarity enumerations
    /// (same contract as on the search path: oracle answers are exact,
    /// debug builds cross-check them against the prover): a goal
    /// polarity whose base formula the oracle proves unsatisfiable is
    /// skipped outright in release builds, saving its counted final
    /// UNSAT query, and [`enumerate_patterns`](Self::enumerate_patterns)
    /// pre-asserts oracle-forced literals.
    fn enumerate_implicants(
        &mut self,
        relevant: &[&ScopeVar],
        phi: &Expr,
        neg_phi: &Expr,
        ctx: &GoalLits,
    ) -> Option<Vec<Vec<(usize, bool)>>> {
        let n = ctx.lits.len();
        if n == 0 || ctx.max_len == 0 {
            return Some(Vec::new());
        }
        let budget = model_budget(n, ctx.max_len);
        // (the symmetric prefilter for this polarity — ¬φ unsat, i.e. φ
        // valid — already returned `Const(true)` before engine dispatch)
        let neg_patterns =
            self.enumerate_patterns(&ctx.neg_goal, neg_phi, relevant, ctx, budget)?;
        let pos_patterns = if ctx.track_blocked {
            // `⊤ ⇒ ¬φ` valid means φ itself is unsatisfiable: the goal
            // polarity can have no consistent sign pattern
            let oracle_empty = self.numeric_decide(&[], neg_phi) == Some(true);
            if oracle_empty && !cfg!(debug_assertions) {
                Some(Vec::new())
            } else {
                let patterns = self.enumerate_patterns(&ctx.goal, phi, relevant, ctx, budget)?;
                if oracle_empty {
                    assert!(
                        patterns.is_empty(),
                        "numeric oracle diverged from AllSAT: {phi:?} proved unsatisfiable \
                         but {} consistent patterns found",
                        patterns.len()
                    );
                }
                Some(patterns)
            }
        } else {
            None
        };
        extract_prime_cubes(&neg_patterns, pos_patterns.as_deref(), n, ctx.max_len)
    }

    /// AllSAT over `base`: every theory-consistent total sign pattern of
    /// `ctx.lits` under `base`, found by one continuation enumeration
    /// ([`ProverSession::enumerate_models`]) — the DFS records each
    /// accepting leaf's pattern, asserts its blocking clause in place,
    /// and keeps searching, instead of restarting a solve per model.
    /// Terminates because each blocking clause excludes at least one
    /// pattern and there are finitely many. The work bypasses the prover
    /// caches (the blocked base mutates), so it is counted via
    /// [`Prover::count_uncached_query`] with solve-per-model parity: one
    /// query per accepted pattern plus one for the final answer, keeping
    /// the reported counts deterministic and independent of this
    /// implementation detail.
    fn enumerate_patterns(
        &mut self,
        base: &Formula,
        base_expr: &Expr,
        relevant: &[&ScopeVar],
        ctx: &GoalLits,
        budget: usize,
    ) -> Option<Vec<Vec<bool>>> {
        // forced-literal prefilter: a literal the numeric oracle proves
        // decided under the base (`base ⇒ lit` or `base ⇒ ¬lit`) is
        // conjoined into it, pruning the AllSAT DFS early. The pattern
        // set is provably unchanged — a pattern violating a forced
        // literal was theory-inconsistent already — so the counted
        // queries (one per accepted pattern plus one) are too; only wall
        // time drops. Debug builds enumerate the unpatched base instead
        // and cross-check that every pattern agrees with every forced
        // literal.
        let mut forced: Vec<(usize, bool)> = Vec::new();
        if self.options.numeric_oracle {
            for (i, (ri, _)) in ctx.lits.iter().enumerate() {
                let expr = &relevant[*ri].expr;
                if self.numeric_decide(&[(base_expr, true)], expr) == Some(true) {
                    forced.push((i, true));
                } else if self.numeric_decide(&[(base_expr, true)], &expr.negated()) == Some(true) {
                    forced.push((i, false));
                }
            }
        }
        let patched;
        let base = if forced.is_empty() || cfg!(debug_assertions) {
            base
        } else {
            patched = Formula::and(std::iter::once(base.clone()).chain(forced.iter().map(
                |&(i, sign)| {
                    if sign {
                        ctx.lits[i].1.clone()
                    } else {
                        ctx.lits_neg[i].clone()
                    }
                },
            )));
            &patched
        };
        let mut sess = ProverSession::new(base);
        let ids: Vec<_> = ctx.lits.iter().map(|(_, f)| sess.assume(f)).collect();
        let (r, mut patterns) = sess.enumerate_models(&self.prover.store, &ids, budget);
        if cfg!(debug_assertions) {
            for pattern in &patterns {
                for &(i, sign) in &forced {
                    assert_eq!(
                        pattern[i], sign,
                        "numeric oracle diverged from AllSAT: literal {i} proved forced to \
                         {sign} under {base_expr:?}"
                    );
                }
            }
        }
        // canonical pattern order, so the extraction walks the same
        // nodes whether or not the forced-literal patch reshaped the DFS
        patterns.sort();
        for _ in &patterns {
            self.prover.count_uncached_query(SatResult::Sat);
        }
        self.stats.models_enumerated += patterns.len() as u64;
        let result = match r {
            SatResult::Unsat => {
                self.prover.count_uncached_query(SatResult::Unsat);
                Some(patterns)
            }
            SatResult::Unknown => {
                self.prover.count_uncached_query(SatResult::Unknown);
                None
            }
            // more consistent patterns than the budget: the search
            // engine cannot be doing worse, give up on enumeration
            SatResult::Sat => None,
        };
        self.session_stats.absorb(&sess.stats);
        result
    }

    /// `G_V(φ) = ¬F_V(¬φ)`: the strongest expressible consequence of `φ`.
    pub fn strongest_implied_conjunction(&mut self, vars: &[ScopeVar], phi: &Expr) -> BExpr {
        let neg = phi.negated();
        self.largest_implying_disjunction(vars, &neg).negate()
    }

    /// The `choose(F(φ), F(¬φ))` pair used for assignments and call
    /// arguments (§4.3).
    pub fn choose_value(&mut self, vars: &[ScopeVar], phi: &Expr) -> BExpr {
        let pos = self.largest_implying_disjunction(vars, phi);
        let neg = self.largest_implying_disjunction(vars, &phi.negated());
        BExpr::choose(pos, neg)
    }

    /// The inconsistent-cube invariant for `enforce` (§5.1):
    /// `¬F_V(false)`, or `None` when every combination is consistent.
    pub fn enforce_invariant(&mut self, vars: &[ScopeVar]) -> Option<BExpr> {
        // `false` mentions no locations, so the cone of influence would be
        // empty; the search must consider all variables here
        let saved = self.options.cone_of_influence;
        self.options.cone_of_influence = false;
        let f = self.largest_implying_disjunction(vars, &Expr::IntLit(0));
        self.options.cone_of_influence = saved;
        match f {
            BExpr::Const(false) => None,
            other => Some(other.negate()),
        }
    }

    fn fast_path(&mut self, vars: &[ScopeVar], phi: &Expr) -> Option<BExpr> {
        if let Expr::IntLit(v) = phi {
            // `F(true) = true`; `F(false)` must run the cube search (it is
            // the set of inconsistent cubes used by `enforce`)
            if *v != 0 {
                return Some(BExpr::Const(true));
            }
        }
        for v in vars {
            if v.expr == *phi {
                return Some(BExpr::var(v.name.clone()));
            }
            if v.expr == phi.negated() || v.expr.negated() == *phi {
                return Some(BExpr::var(v.name.clone()).negate());
            }
        }
        None
    }
}

/// One goal's translated literal context, shared by both engines.
struct GoalLits {
    /// The translated goal `φ`.
    goal: Formula,
    /// `¬goal`, the base of implication queries / the S⁻ enumeration.
    neg_goal: Formula,
    /// Translatable predicates as `(index into relevant, formula)`.
    lits: Vec<(usize, Formula)>,
    /// The negation of each literal, index-aligned with `lits`.
    lits_neg: Vec<Formula>,
    /// Effective cube-length bound for this goal.
    max_len: usize,
    /// Whether cubes implying `¬φ` prune their supersets (off for
    /// `enforce`'s `F(false)`).
    track_blocked: bool,
}

/// The number of sign-assigned cubes of length ≤ `max_len` over `n`
/// literals — what the search engine could test for this goal — clamped
/// to a hard cap. Once AllSAT has accepted more patterns than this, the
/// search engine cannot be doing worse, so enumeration gives up. The
/// bound depends only on `(n, max_len)`, keeping the fallback decision
/// deterministic across worker counts and runs.
fn model_budget(n: usize, max_len: usize) -> usize {
    const CAP: usize = 2048;
    let mut total: usize = 0;
    let mut choose: usize = 1; // C(n, len), updated incrementally
    for len in 1..=max_len.min(n) {
        choose = choose.saturating_mul(n - len + 1) / len;
        total = total.saturating_add(choose.saturating_mul(1usize << len.min(20)));
        if total >= CAP {
            return CAP;
        }
    }
    total
}

/// Extracts the search engine's output from the two pattern sets: the
/// cubes of length ≤ `max_len` that no pattern in `neg` covers (they
/// imply the goal — no countermodel extends them), all of whose
/// immediate proper subcubes are covered by `neg` (prime: any shorter
/// cube has a countermodel) and, when `pos` is given, also covered by
/// `pos` (the search never tests a superset of a cube that implies
/// `¬φ`, so such cubes never enter its output). Cubes are returned in
/// the search's enumeration order: by length, then lexicographic
/// literal-index combination, then the sign integer with bit `p` set
/// when the combination's `p`-th literal is positive.
///
/// A pattern covers a cube when it agrees with every literal of it;
/// coverage is inherited by subcubes, which is what makes the immediate
/// subcube check sufficient. The search walks cubes top-down instead:
/// branch from the empty cube on the literals disagreeing with the
/// first covering pattern (any uncovered extension must flip one of
/// them), deduplicate, and post-filter. Returns `None` if more than
/// [`EXTRACT_NODE_BUDGET`] branch nodes are visited.
fn extract_prime_cubes(
    neg: &[Vec<bool>],
    pos: Option<&[Vec<bool>]>,
    n: usize,
    max_len: usize,
) -> Option<Vec<Vec<(usize, bool)>>> {
    if neg.is_empty() {
        // the base (¬goal ∧ blocked patterns) was unsat outright: every
        // cube implies the goal, so the search keeps exactly the
        // singletons — nothing shorter exists to prune them
        return Some(
            (0..n)
                .flat_map(|i| [vec![(i, false)], vec![(i, true)]])
                .collect(),
        );
    }
    const EXTRACT_NODE_BUDGET: usize = 200_000;
    let covers = |cube: &[(usize, bool)], sigma: &[bool]| cube.iter().all(|&(i, b)| sigma[i] == b);
    // Minimality prune (the classic minimal-hitting-set "critical
    // element" condition): literal `omit` of a cube is *critical* when
    // some pattern disagrees with it while agreeing with every other
    // literal — the witness that dropping it would re-cover the cube.
    // A literal's critical set only shrinks as the cube grows, and
    // every subcube of a minimal uncovered cube keeps all its literals
    // critical, so a candidate with a non-critical literal can be cut
    // without losing any output. Without this prune, covered
    // same-direction chains alone visit ~2^n nodes (measured: the k=15
    // predicate-scaling sweep blew the node budget and fell back).
    let critical = |cube: &[(usize, bool)], omit: usize| {
        neg.iter().any(|sigma| {
            cube.iter()
                .enumerate()
                .all(|(k, &(j, b))| (sigma[j] == b) != (k == omit))
        })
    };
    let mut found: Vec<Vec<(usize, bool)>> = Vec::new();
    let mut seen: HashSet<Vec<(usize, bool)>> = HashSet::new();
    let mut stack: Vec<Vec<(usize, bool)>> = vec![Vec::new()];
    let mut nodes = 0usize;
    while let Some(cube) = stack.pop() {
        nodes += 1;
        if nodes > EXTRACT_NODE_BUDGET {
            return None;
        }
        match neg.iter().find(|sigma| covers(&cube, sigma)) {
            None => found.push(cube),
            Some(sigma) => {
                if cube.len() == max_len {
                    continue;
                }
                for (i, &sig_i) in sigma.iter().enumerate().take(n) {
                    if cube.iter().any(|&(j, _)| j == i) {
                        continue;
                    }
                    let mut next = cube.clone();
                    next.push((i, !sig_i));
                    next.sort_unstable();
                    if seen.insert(next.clone())
                        && (0..next.len()).all(|omit| critical(&next, omit))
                    {
                        stack.push(next);
                    }
                }
            }
        }
    }
    let covered_by =
        |cube: &[(usize, bool)], pats: &[Vec<bool>]| pats.iter().any(|s| covers(cube, s));
    found.retain(|cube| {
        // singletons have no nonempty proper subcube; the search always
        // tests them
        cube.len() <= 1
            || (0..cube.len()).all(|omit| {
                let sub: Vec<(usize, bool)> = cube
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != omit)
                    .map(|(_, &l)| l)
                    .collect();
                covered_by(&sub, neg) && pos.is_none_or(|p| covered_by(&sub, p))
            })
    });
    found.sort_by_cached_key(|cube| {
        let indices: Vec<usize> = cube.iter().map(|&(i, _)| i).collect();
        let signs: u64 = cube
            .iter()
            .enumerate()
            .map(|(p, &(_, b))| if b { 1u64 << p } else { 0 })
            .sum();
        (cube.len(), indices, signs)
    });
    Some(found)
}

/// Per-function alias groups: variables are placed in the same group
/// when the storage they denote or point into may overlap according to
/// the active points-to analysis (pointers by `targets_may_intersect`,
/// pointer-vs-scalar by `may_point_to`). Influence tokens carry the
/// group of their base variable, so the cone of influence links `*p`
/// with `*q` (or `p->f` with `q->f`) only when `p` and `q` may reach
/// common storage. With no groups, every dereference links to every
/// other and any two same-named fields may alias — the legacy
/// over-approximation, kept verbatim for the unification mode.
#[derive(Debug, Clone, Default)]
pub struct AliasGroups {
    groups: HashMap<String, usize>,
}

impl AliasGroups {
    /// Computes alias groups over the variables visible in `func`.
    pub fn compute(program: &Program, oracle: &dyn AliasOracle, func: &str) -> AliasGroups {
        let mut names: Vec<String> = program.globals.iter().map(|(g, _)| g.clone()).collect();
        if let Some(f) = program.function(func) {
            names.extend(f.params.iter().map(|p| p.name.clone()));
            names.extend(f.locals.iter().map(|(l, _)| l.clone()));
        }
        names.sort();
        names.dedup();
        let is_ptr = |n: &str| {
            program
                .function(func)
                .and_then(|f| f.var_type(n))
                .or_else(|| program.global_type(n))
                .map(Type::is_pointer_like)
                .unwrap_or(false)
        };
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        let mut parent: Vec<usize> = (0..names.len()).collect();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let overlap = match (is_ptr(&names[i]), is_ptr(&names[j])) {
                    (true, true) => oracle.targets_may_intersect(func, &names[i], func, &names[j]),
                    (true, false) => oracle.may_point_to(func, &names[i], func, &names[j]),
                    (false, true) => oracle.may_point_to(func, &names[j], func, &names[i]),
                    // two non-pointers denote overlapping storage only
                    // when they are the same variable
                    (false, false) => false,
                };
                if overlap {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    // deterministic representative: the smaller index
                    let (lo, hi) = if ri <= rj { (ri, rj) } else { (rj, ri) };
                    parent[hi] = lo;
                }
            }
        }
        let groups = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), find(&mut parent, i)))
            .collect();
        AliasGroups { groups }
    }

    /// The group of `var`, when known.
    pub fn group(&self, var: &str) -> Option<usize> {
        self.groups.get(var).copied()
    }
}

/// A token over which influence is computed: variable names, accessed
/// field names, and dereferences, the latter two tagged with the alias
/// group of their base variable when groups are available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Token {
    /// A named variable.
    Var(String),
    /// A dereference or index through a pointer in the given group.
    Deref(Option<usize>),
    /// An access to the named field of an object in the given group.
    Field(String, Option<usize>),
}

impl Token {
    fn groups_touch(a: Option<usize>, b: Option<usize>) -> bool {
        match (a, b) {
            (Some(x), Some(y)) => x == y,
            // an unresolvable base may reach anything
            _ => true,
        }
    }

    /// May the storage these two tokens stand for overlap?
    pub(crate) fn matches(&self, other: &Token) -> bool {
        match (self, other) {
            (Token::Var(a), Token::Var(b)) => a == b,
            (Token::Deref(a), Token::Deref(b)) => Token::groups_touch(*a, *b),
            (Token::Field(f, a), Token::Field(g, b)) => f == g && Token::groups_touch(*a, *b),
            _ => false,
        }
    }
}

/// The syntactic cone of influence (§5.2, third optimization): starting
/// from the tokens of `φ`, repeatedly add predicates sharing a variable or
/// an accessed field (of a possibly-overlapping object), until a fixpoint.
pub(crate) fn cone_of_influence<'v>(
    vars: &'v [ScopeVar],
    phi: &Expr,
    groups: Option<&AliasGroups>,
) -> Vec<&'v ScopeVar> {
    let mut tokens = influence_tokens(phi, groups);
    let mut included = vec![false; vars.len()];
    loop {
        let mut changed = false;
        for (i, v) in vars.iter().enumerate() {
            if included[i] {
                continue;
            }
            let vt = influence_tokens(&v.expr, groups);
            if vt.iter().any(|t| tokens.iter().any(|u| u.matches(t))) {
                included[i] = true;
                changed = true;
                for t in vt {
                    if !tokens.contains(&t) {
                        tokens.push(t);
                    }
                }
            }
        }
        if !changed {
            return vars
                .iter()
                .enumerate()
                .filter_map(|(i, v)| included[i].then_some(v))
                .collect();
        }
    }
}

/// The alias group of the base variable of a dereference-shaped
/// subexpression, when groups are available and the base is resolvable.
fn base_group(base: &Expr, groups: Option<&AliasGroups>) -> Option<usize> {
    match base {
        Expr::Var(v) => groups?.group(v),
        _ => None,
    }
}

/// Tokens over which influence is computed (see [`Token`]).
pub(crate) fn influence_tokens(e: &Expr, groups: Option<&AliasGroups>) -> Vec<Token> {
    let mut out = Vec::new();
    e.walk(&mut |sub| {
        let t = match sub {
            Expr::Var(v) => Token::Var(v.clone()),
            Expr::Field(base, f) => {
                let g = match &**base {
                    Expr::Var(_) => base_group(base, groups),
                    Expr::Unary(UnOp::Deref, p) => base_group(p, groups),
                    Expr::Index(a, _) => base_group(a, groups),
                    _ => None,
                };
                Token::Field(f.clone(), g)
            }
            Expr::Unary(UnOp::Deref, p) => Token::Deref(base_group(p, groups)),
            Expr::Index(a, _) => Token::Deref(base_group(a, groups)),
            _ => return,
        };
        if !out.contains(&t) {
            out.push(t);
        }
    });
    out
}

/// Simple combination enumerator: k-subsets of 0..n in lexicographic
/// order.
struct CubeEnum {
    n: usize,
    k: usize,
    current: Vec<usize>,
    started: bool,
}

impl CubeEnum {
    fn new(n: usize, k: usize) -> CubeEnum {
        CubeEnum {
            n,
            k,
            current: (0..k).collect(),
            started: false,
        }
    }

    fn next_combo(&mut self) -> Option<Vec<usize>> {
        if self.k == 0 || self.k > self.n {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(self.current.clone());
        }
        // advance
        let mut i = self.k;
        loop {
            if i == 0 {
                return None;
            }
            i -= 1;
            if self.current[i] != i + self.n - self.k {
                break;
            }
        }
        self.current[i] += 1;
        for j in i + 1..self.k {
            self.current[j] = self.current[j - 1] + 1;
        }
        Some(self.current.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cparse::parser::{parse_expr, parse_program};

    fn scope_vars(preds: &[&str]) -> Vec<ScopeVar> {
        preds
            .iter()
            .map(|p| ScopeVar {
                name: (*p).to_string(),
                expr: parse_expr(p).unwrap(),
            })
            .collect()
    }

    fn search_env() -> (TypeEnv, impl Fn(&str) -> Option<Type>) {
        let p = parse_program(
            r#"
            struct cell { int val; struct cell* next; };
            int x, y, v;
            void holder(struct cell* curr, struct cell* prev, int* p) { ; }
        "#,
        )
        .unwrap();
        let env = TypeEnv::new(&p);
        let f = p.function("holder").unwrap().clone();
        let lookup = move |name: &str| {
            f.var_type(name).cloned().or(match name {
                "x" | "y" | "v" => Some(Type::Int),
                _ => None,
            })
        };
        (env, lookup)
    }

    #[test]
    fn paper_example_x_equals_2_implies_x_lt_4() {
        // E = {x < 5, x == 2}; F_V(x < 4) = {x == 2}
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x < 5", "x == 2"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let f = cs.largest_implying_disjunction(&vars, &parse_expr("x < 4").unwrap());
        assert_eq!(f, BExpr::var("x == 2"));
    }

    #[test]
    fn fast_path_answers_without_prover() {
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x < 5"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let f = cs.largest_implying_disjunction(&vars, &parse_expr("x < 5").unwrap());
        assert_eq!(f, BExpr::var("x < 5"));
        // negation fast path: F(x >= 5) = !{x < 5}
        let g = cs.largest_implying_disjunction(&vars, &parse_expr("x >= 5").unwrap());
        assert_eq!(g, BExpr::var("x < 5").negate());
        assert_eq!(cs.prover.stats.queries, 0);
        assert_eq!(cs.stats.fast_path_hits, 2);
    }

    #[test]
    fn prime_implicants_only() {
        // E = {x == 1, y == 1}; F(x >= 1) should be just {x == 1}, not
        // also the longer cube {x == 1 && y == 1}
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x == 1", "y == 1"]);
        let mut cs = CubeSearch::new(
            &mut prover,
            &env,
            &lookup,
            CubeOptions {
                cone_of_influence: false,
                // superset pruning is a search-path behavior
                engine: CubeEngine::Search,
                ..CubeOptions::default()
            },
        );
        let f = cs.largest_implying_disjunction(&vars, &parse_expr("x >= 1").unwrap());
        assert_eq!(f, BExpr::var("x == 1"));
        assert!(cs.stats.cubes_pruned > 0);
    }

    #[test]
    fn disjunction_of_multiple_implicants() {
        // E = {x == 1, x == 2}; F(x >= 1) = {x==1} || {x==2}
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x == 1", "x == 2"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let f = cs.largest_implying_disjunction(&vars, &parse_expr("x >= 1").unwrap());
        assert_eq!(f, BExpr::or([BExpr::var("x == 1"), BExpr::var("x == 2")]));
    }

    #[test]
    fn g_is_dual_of_f() {
        // G(x == 2) over {x < 5}: strongest consequence is {x < 5}
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x < 5"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let g = cs.strongest_implied_conjunction(&vars, &parse_expr("x == 2").unwrap());
        assert_eq!(g, BExpr::var("x < 5"));
    }

    #[test]
    fn enforce_finds_mutual_exclusion() {
        // {x == 1} and {x == 2} cannot hold together
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x == 1", "x == 2"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let inv = cs.enforce_invariant(&vars).expect("should find invariant");
        // invariant is !( {x==1} && {x==2} )
        assert_eq!(
            inv,
            BExpr::and([BExpr::var("x == 1"), BExpr::var("x == 2")]).negate()
        );
    }

    #[test]
    fn enforce_absent_when_consistent() {
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["x < 5", "y < 5"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        assert!(cs.enforce_invariant(&vars).is_none());
    }

    #[test]
    fn cone_of_influence_reduces_queries() {
        let (env, lookup) = search_env();
        let vars = scope_vars(&["x == 1", "y == 7", "v == 3"]);
        let phi = parse_expr("x >= 1").unwrap();
        let mut p1 = Prover::new();
        let mut with_coi = CubeSearch::new(&mut p1, &env, &lookup, CubeOptions::default());
        let f1 = with_coi.largest_implying_disjunction(&vars, &phi);
        let q_with = with_coi.prover.stats.queries;
        let mut p2 = Prover::new();
        let mut without = CubeSearch::new(
            &mut p2,
            &env,
            &lookup,
            CubeOptions {
                cone_of_influence: false,
                ..CubeOptions::default()
            },
        );
        let f2 = without.largest_implying_disjunction(&vars, &phi);
        let q_without = without.prover.stats.queries;
        assert_eq!(f1, f2, "cone of influence must not change the result");
        assert!(q_with < q_without, "{q_with} !< {q_without}");
    }

    #[test]
    fn cube_length_cap_trades_precision() {
        // proving x+y+v >= 3 requires the length-3 cube
        let (env, lookup) = search_env();
        let vars = scope_vars(&["x == 1", "y == 1", "v == 1"]);
        let phi = parse_expr("x + y + v >= 3").unwrap();
        let mut p1 = Prover::new();
        let mut full = CubeSearch::new(&mut p1, &env, &lookup, CubeOptions::default());
        let f_full = full.largest_implying_disjunction(&vars, &phi);
        assert_ne!(f_full, BExpr::Const(false));
        let mut p2 = Prover::new();
        let mut capped = CubeSearch::new(
            &mut p2,
            &env,
            &lookup,
            CubeOptions {
                max_cube_len: Some(2),
                ..CubeOptions::default()
            },
        );
        let f_capped = capped.largest_implying_disjunction(&vars, &phi);
        assert_eq!(f_capped, BExpr::Const(false));
    }

    #[test]
    fn pointer_predicates_from_figure_2() {
        // abstracting *p = *p + x over {*p <= 0, x == 0, r == 0}:
        // F(WP) where WP(s, *p <= 0) = *p + x <= 0 gives {*p <= 0} && {x == 0}
        let (env, lookup) = search_env();
        let mut prover = Prover::new();
        let vars = scope_vars(&["*p <= 0", "x == 0", "r == 0"]);
        let mut cs = CubeSearch::new(&mut prover, &env, &lookup, CubeOptions::default());
        let f = cs.largest_implying_disjunction(&vars, &parse_expr("*p + x <= 0").unwrap());
        assert_eq!(f, BExpr::and([BExpr::var("*p <= 0"), BExpr::var("x == 0")]));
    }

    fn enum_options() -> CubeOptions {
        CubeOptions {
            engine: CubeEngine::Enumerate,
            ..CubeOptions::default()
        }
    }

    fn search_options() -> CubeOptions {
        CubeOptions {
            engine: CubeEngine::Search,
            ..CubeOptions::default()
        }
    }

    #[test]
    fn enumerate_matches_search_on_unit_scenarios() {
        let (env, lookup) = search_env();
        let scenarios: &[(&[&str], &str)] = &[
            (&["x < 5", "x == 2"], "x < 4"),
            (&["x == 1", "y == 1"], "x >= 1"),
            (&["x == 1", "x == 2"], "x >= 1"),
            (&["*p <= 0", "x == 0", "r == 0"], "*p + x <= 0"),
            (&["x == 1", "y == 1", "v == 1"], "x + y + v >= 3"),
            (&["x < 5", "y < 5"], "x + y < 10"),
        ];
        for &(preds, phi) in scenarios {
            let vars = scope_vars(preds);
            let phi = parse_expr(phi).unwrap();
            let mut p1 = Prover::new();
            let mut search = CubeSearch::new(&mut p1, &env, &lookup, search_options());
            let want = search.largest_implying_disjunction(&vars, &phi);
            let mut p2 = Prover::new();
            let mut enumerate = CubeSearch::new(&mut p2, &env, &lookup, enum_options());
            let got = enumerate.largest_implying_disjunction(&vars, &phi);
            assert_eq!(got, want, "engines diverged on F({phi:?}) over {preds:?}");
            assert_eq!(enumerate.stats.enum_fallbacks, 0, "unexpected fallback");
        }
    }

    #[test]
    fn enumerate_matches_search_on_enforce_and_dual() {
        let (env, lookup) = search_env();
        for preds in [
            &["x == 1", "x == 2"][..],
            &["x < 5", "y < 5"][..],
            &["x < 5", "x == 2", "y == 1"][..],
        ] {
            let vars = scope_vars(preds);
            let mut p1 = Prover::new();
            let mut search = CubeSearch::new(&mut p1, &env, &lookup, search_options());
            let mut p2 = Prover::new();
            let mut enumerate = CubeSearch::new(&mut p2, &env, &lookup, enum_options());
            assert_eq!(
                enumerate.enforce_invariant(&vars),
                search.enforce_invariant(&vars),
                "enforce diverged over {preds:?}"
            );
            let phi = parse_expr("x == 2").unwrap();
            assert_eq!(
                enumerate.strongest_implied_conjunction(&vars, &phi),
                search.strongest_implied_conjunction(&vars, &phi),
                "G diverged over {preds:?}"
            );
        }
    }

    #[test]
    fn enumerate_spends_fewer_queries_on_chain_predicates() {
        // chain x < 1 .. x < 6 with goal x + y < 0: every consistent
        // cube stays undetermined (y is unconstrained), so the search
        // pays for the whole cube lattice while enumeration pays one
        // solve per consistent pattern (k + 1 of them) per polarity
        let (env, lookup) = search_env();
        let preds: Vec<String> = (1..=6).map(|i| format!("x < {i}")).collect();
        let pred_refs: Vec<&str> = preds.iter().map(String::as_str).collect();
        let vars = scope_vars(&pred_refs);
        let phi = parse_expr("x + y < 0").unwrap();
        let opts = CubeOptions {
            cone_of_influence: false,
            numeric_oracle: false,
            max_cube_len: None,
            engine: CubeEngine::Search,
            ..CubeOptions::default()
        };
        let mut p1 = Prover::new();
        let mut search = CubeSearch::new(&mut p1, &env, &lookup, opts.clone());
        let want = search.largest_implying_disjunction(&vars, &phi);
        let search_queries = search.prover.stats.queries;
        let mut p2 = Prover::new();
        let mut enumerate = CubeSearch::new(
            &mut p2,
            &env,
            &lookup,
            CubeOptions {
                engine: CubeEngine::Enumerate,
                ..opts
            },
        );
        let got = enumerate.largest_implying_disjunction(&vars, &phi);
        let enum_queries = enumerate.prover.stats.queries;
        assert_eq!(got, want, "engines diverged on the chain goal");
        assert_ne!(want, BExpr::Const(false), "chain goal found no implicants");
        assert!(
            enumerate.stats.models_enumerated > 0,
            "no models enumerated"
        );
        assert_eq!(enumerate.stats.enum_fallbacks, 0, "unexpected fallback");
        assert!(
            enum_queries * 4 < search_queries,
            "expected a >4x query saving: enumerate {enum_queries}, search {search_queries}"
        );
    }

    #[test]
    fn extract_prime_cubes_matches_hand_computation() {
        // patterns over 3 literals: {TTF, FTT}. Minimal uncovered cubes:
        // every cube must disagree with both patterns somewhere.
        let neg = vec![vec![true, true, false], vec![false, true, true]];
        let out = extract_prime_cubes(&neg, None, 3, 3).unwrap();
        // singletons: (1,false) disagrees with both (σ₁ = T twice);
        // pairs from branching: (0,F)+(1,F) is non-minimal (contains
        // (1,F)); (0,F)+(2,F) kills TTF via 0 and FTT via 2; etc.
        assert!(out.contains(&vec![(1, false)]));
        assert!(out.contains(&vec![(0, false), (2, false)]));
        assert!(out.contains(&vec![(0, true), (2, true)]));
        // nothing in the output is covered or non-minimal
        for cube in &out {
            for sigma in &neg {
                assert!(
                    !cube.iter().all(|&(i, b)| sigma[i] == b),
                    "covered cube {cube:?} in output"
                );
            }
            assert!(
                !(cube.len() > 1 && cube.contains(&(1, false))),
                "non-minimal cube {cube:?} in output"
            );
        }
        // ordering: lengths ascending, lexicographic combos within
        for pair in out.windows(2) {
            assert!(pair[0].len() <= pair[1].len(), "out of order: {out:?}");
        }
        // empty pattern set: all singletons, negative sign first
        let all = extract_prime_cubes(&[], None, 2, 3).unwrap();
        assert_eq!(
            all,
            vec![
                vec![(0, false)],
                vec![(0, true)],
                vec![(1, false)],
                vec![(1, true)]
            ]
        );
    }

    #[test]
    fn extraction_stays_output_sensitive_on_threshold_chains() {
        // the k-sweep shape: patterns are the k + 1 threshold valuations
        // of the chain x < 1 .. x < k, and the minimal uncovered cubes
        // are exactly the C(k, 2) inconsistent pairs {x < j+1, !(x <
        // i+1)} with j < i. Before the criticality prune the walk blew
        // its node budget near k = 15 (covered all-negative chains are
        // ~2^k nodes on their own) and fell back to the search.
        let k = 16;
        let neg: Vec<Vec<bool>> = (0..=k).map(|v| (1..=k).map(|i| v < i).collect()).collect();
        let out = extract_prime_cubes(&neg, None, k, k).expect("extraction blew its node budget");
        assert_eq!(out.len(), k * (k - 1) / 2);
        for cube in &out {
            let (&(j, bj), &(i, bi)) = (&cube[0], &cube[1]);
            assert!(j < i && bj && !bi, "unexpected cube {cube:?}");
        }
    }

    #[test]
    fn combination_enumerator() {
        let mut e = CubeEnum::new(4, 2);
        let mut combos = Vec::new();
        while let Some(c) = e.next_combo() {
            combos.push(c);
        }
        assert_eq!(combos.len(), 6);
        assert_eq!(combos[0], vec![0, 1]);
        assert_eq!(combos[5], vec![2, 3]);
    }
}
