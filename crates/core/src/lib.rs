//! C2bp: automatic predicate abstraction of C programs.
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Automatic Predicate Abstraction of C Programs* (Ball, Majumdar,
//! Millstein, Rajamani — PLDI 2001). Given a C program `P` (parsed and
//! simplified by [`cparse`]) and a set `E` of pure boolean C expressions,
//! it constructs a boolean program `BP(P, E)` ([`bp`]) that is a sound
//! abstraction of `P`: every feasible execution path of `P` is feasible
//! in `BP(P, E)`, with predicate valuations matching the concrete states
//! (§4.6).
//!
//! # Example
//!
//! ```
//! use c2bp::{abstract_program, parse_pred_file, C2bpOptions};
//! use cparse::parse_and_simplify;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_and_simplify("void f(int x) { x = 0; }")?;
//! let preds = parse_pred_file("f x == 0")?;
//! let abs = abstract_program(&program, &preds, &C2bpOptions::paper_defaults())?;
//! let text = bp::program_to_string(&abs.bprogram);
//! assert!(text.contains("{x == 0} = true;"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod abs;
pub mod aliaslint;
pub mod cubes;
mod live;
mod persist;
pub mod preds;
pub mod sig;
pub mod wp;

pub use abs::{
    abstract_program, abstract_program_reusing, reuse_signature, AbsError, AbsStats, Abstraction,
    C2bpOptions, PhaseSeconds, ReuseSession,
};
pub use aliaslint::{lint_alias_precision, AliasLintWarning};
pub use cubes::{AliasGroups, CubeEngine, CubeOptions, CubeStats, ScopeVar};
pub use pointsto::AliasMode;
pub use preds::{parse_pred_file, Pred, PredScope};
pub use sig::{signature, Signature};
