//! Predicate liveness: a backward dataflow over the C control flow that
//! decides, per assignment, which predicates can still influence anything
//! downstream — a later guard, assert, assume, call, return predicate, or
//! the `enforce` invariant. Updates to dead predicates are pruned from
//! the abstraction: their cube searches (and prover calls) are skipped
//! and the predicate is simply not assigned, which the boolean program
//! reads as "unconstrained" — a sound weakening that, by construction,
//! nothing downstream observes.
//!
//! # Why the gen sets are sound
//!
//! The liveness computed here must *over*-approximate the liveness of the
//! boolean program that phase 2b will emit — before that program exists.
//! Two facts make this possible:
//!
//! * Guards, assumes, calls and enforce invariants are solved first
//!   (phase 2a), so their exact mention sets are known.
//! * An assignment's update `{φ} = choose(F(WP), F(¬WP))` only mentions
//!   predicates inside `cone_of_influence(WP)`: the cube search restricts
//!   its candidate variables to the cone (see [`crate::cubes`]), and the
//!   syntactic fast paths return predicates sharing all tokens with the
//!   goal. Pruning is therefore gated on `CubeOptions::cone_of_influence`
//!   being enabled; with the cone disabled the analysis reports
//!   everything live.
//!
//! The transfer mirrors the faint-variable (strong liveness) analysis the
//! boolean-program normalizer runs, so the differential suite can compare
//! pruned and unpruned abstractions byte-for-byte after normalization.

use crate::abs::C2bpOptions;
use crate::cubes::{cone_of_influence, AliasGroups, ScopeVar};
use crate::wp::{wp_assign, WpCtx};
use analysis::{solve, BitSet, Cfg, Direction};
use cparse::ast::Function;
use cparse::flow::{flatten_function, Instr};
use cparse::typeck::TypeEnv;
use cparse::StmtId;
use pointsto::AliasOracle;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Live-after predicate names per assignment statement.
pub(crate) type LiveMap = HashMap<StmtId, BTreeSet<String>>;

/// Everything the per-function analysis needs, fixed after phase 2a.
pub(crate) struct LiveInputs<'a> {
    pub env: &'a TypeEnv,
    pub func: &'a Function,
    /// The procedure's predicate scope, in plan order.
    pub scope_vars: &'a [ScopeVar],
    /// Names of the global predicates (live across calls and returns).
    pub global_pred_names: &'a [String],
    /// Names of this procedure's return predicates (`E_r`).
    pub return_pred_names: &'a [String],
    /// Variables mentioned by the solved `enforce` invariant; live at
    /// every program point (the invariant is an implicit assume between
    /// every pair of statements).
    pub enforce_vars: &'a [String],
    /// Predicate names mentioned by each solved phase-2a output, keyed by
    /// statement id: branch/assert guard pairs, assume conditions, and
    /// complete call translations (actuals and update values).
    pub mentions: &'a HashMap<StmtId, Vec<String>>,
    /// Alias groups of the function, so the cones computed here agree
    /// with the ones the cube search will use (`None` under the
    /// unification mode — the legacy field/deref over-approximation).
    pub groups: Option<&'a AliasGroups>,
    pub options: &'a C2bpOptions,
}

/// Computes live-after sets for every assignment of the function.
///
/// Returns `None` when the function cannot be analyzed precisely —
/// un-flattenable body, duplicated or unassigned statement ids, shadowed
/// predicate names — in which case the caller must treat every predicate
/// as live (no pruning, exactly the unpruned abstraction).
pub(crate) fn function_liveness(inp: &LiveInputs<'_>, pts: &dyn AliasOracle) -> Option<LiveMap> {
    if !inp.options.cubes.cone_of_influence {
        return None; // cube search may mention anything: nothing is dead
    }
    let flat = flatten_function(inp.func).ok()?;
    let bits = inp.scope_vars.len();
    let mut index: HashMap<&str, usize> = HashMap::new();
    for (i, sv) in inp.scope_vars.iter().enumerate() {
        if index.insert(sv.name.as_str(), i).is_some() {
            return None; // shadowed predicate name: bit would be ambiguous
        }
    }
    // Assignment ids key the result map; bail out if they cannot.
    let mut seen_assign_ids = HashSet::new();
    for instr in &flat.instrs {
        if let Instr::Assign { id, .. } = instr {
            if *id == StmtId::UNASSIGNED || !seen_assign_ids.insert(*id) {
                return None;
            }
        }
    }

    let bitset_of = |names: &[String]| {
        let mut s = BitSet::empty(bits);
        for n in names {
            if let Some(&i) = index.get(n.as_str()) {
                s.insert(i);
            }
        }
        s
    };
    let always = bitset_of(inp.enforce_vars);
    let global_bits = bitset_of(inp.global_pred_names);
    let full = BitSet::full(bits);

    // Per-node transfers, precomputed so the fixpoint loop is pure bitset
    // work. WP computation happens once per (assignment, predicate) pair.
    enum Node {
        Identity,
        /// Unconditional gens (guards, assumes, calls, returns).
        Gen(BitSet),
        /// Parallel assignment: kill every written predicate, then gen
        /// the cone of its new value for each one that is live after.
        Assign {
            kills: BitSet,
            rewritten: Vec<(usize, BitSet)>,
        },
    }
    let gen_of = |id: &StmtId, extra: Option<&BitSet>| -> Node {
        // A missing mention set (unassigned or colliding id) means we
        // cannot tell what the solved output reads: everything is.
        let mut s = match inp.mentions.get(id) {
            Some(names) => bitset_of(names),
            None => full.clone(),
        };
        if let Some(e) = extra {
            s.union_with(e);
        }
        Node::Gen(s)
    };
    let nodes: Vec<Node> = flat
        .instrs
        .iter()
        .map(|instr| match instr {
            Instr::Jump(_) | Instr::Nop => Node::Identity,
            Instr::Branch { id, .. } | Instr::Assert { id, .. } | Instr::Assume { id, .. } => {
                gen_of(id, None)
            }
            // The callee may read or write any global predicate.
            Instr::Call { id, .. } => gen_of(id, Some(&global_bits)),
            Instr::Return { .. } => {
                let mut s = bitset_of(inp.return_pred_names);
                s.union_with(&global_bits);
                Node::Gen(s)
            }
            Instr::Assign { lhs, rhs, .. } => {
                let mut kills = BitSet::empty(bits);
                let mut rewritten = Vec::new();
                for (bit, sv) in inp.scope_vars.iter().enumerate() {
                    // Mirror of `LeafSolver::assign`, classifying instead
                    // of solving.
                    let (wp_pos, wp_neg) = {
                        let func = inp.func;
                        let env = inp.env;
                        let mut ctx = WpCtx {
                            env,
                            pts,
                            may_disjuncts: 0,
                            func: func.name.clone(),
                            lookup: Box::new(move |name| {
                                func.var_type(name)
                                    .cloned()
                                    .or_else(|| env.var_type(None, name))
                            }),
                        };
                        let pos = wp_assign(&mut ctx, lhs, rhs, &sv.expr);
                        let neg = wp_assign(&mut ctx, lhs, rhs, &sv.expr.negated());
                        (pos, neg)
                    };
                    if inp.options.skip_unaffected && wp_pos.as_ref() == Some(&sv.expr) {
                        continue; // optimization 2: solver emits nothing
                    }
                    kills.insert(bit);
                    if let (Some(p), Some(n)) = (wp_pos, wp_neg) {
                        // The solved value `choose(F(p), F(n))` mentions
                        // only predicates in the cones of p and n.
                        let mut cone = BitSet::empty(bits);
                        for v in cone_of_influence(inp.scope_vars, &p, inp.groups) {
                            cone.insert(index[v.name.as_str()]);
                        }
                        for v in cone_of_influence(inp.scope_vars, &n, inp.groups) {
                            cone.insert(index[v.name.as_str()]);
                        }
                        rewritten.push((bit, cone));
                    }
                    // else: value is `unknown()` — mentions nothing
                }
                Node::Assign { kills, rewritten }
            }
        })
        .collect();

    let mut succs = vec![Vec::new(); flat.instrs.len()];
    for (i, instr) in flat.instrs.iter().enumerate() {
        match instr {
            Instr::Branch {
                target_true,
                target_false,
                ..
            } => {
                succs[i].push(*target_true);
                if target_false != target_true {
                    succs[i].push(*target_false);
                }
            }
            Instr::Jump(t) => succs[i].push(*t),
            Instr::Return { .. } => {}
            _ => {
                if i + 1 < flat.instrs.len() {
                    succs[i].push(i + 1);
                }
            }
        }
    }
    let cfg = Cfg::new(succs);
    let mut transfer = |n: usize, live_after: &BitSet| -> BitSet {
        let mut out = live_after.clone();
        match &nodes[n] {
            Node::Identity => {}
            Node::Gen(g) => {
                out.union_with(g);
            }
            Node::Assign { kills, rewritten } => {
                let mut gens = BitSet::empty(bits);
                for (bit, cone) in rewritten {
                    if live_after.contains(*bit) {
                        gens.union_with(cone);
                    }
                }
                out.subtract(kills);
                out.union_with(&gens);
            }
        }
        out.union_with(&always);
        out
    };
    let sol = solve(
        &cfg,
        Direction::Backward,
        &BitSet::empty(bits),
        &mut transfer,
    );

    let mut live = LiveMap::new();
    for (i, instr) in flat.instrs.iter().enumerate() {
        if let Instr::Assign { id, .. } = instr {
            let names: BTreeSet<String> = sol.exit[i]
                .iter()
                .map(|b| inp.scope_vars[b].name.clone())
                .collect();
            live.insert(*id, names);
        }
    }
    Some(live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preds::{parse_pred_file, Pred, PredScope};
    use cparse::parse_and_simplify;
    use pointsto::PointsTo;

    fn liveness_of(src: &str, preds: &str, func: &str) -> Option<LiveMap> {
        let program = parse_and_simplify(src).unwrap();
        let preds = parse_pred_file(preds).unwrap();
        let env = TypeEnv::new(&program);
        let pts = PointsTo::analyze(&program);
        let f = program.function(func).unwrap();
        let scope_vars: Vec<ScopeVar> = preds
            .iter()
            .filter(|p| {
                p.scope == PredScope::Global || p.scope == PredScope::Local(func.to_string())
            })
            .map(ScopeVar::of_pred)
            .collect();
        let global_names: Vec<String> = preds
            .iter()
            .filter(|p| p.scope == PredScope::Global)
            .map(Pred::var_name)
            .collect();
        // Exact mention sets for the solved guards: the tests use guard
        // expressions that are themselves predicates, so the solved
        // output mentions exactly that predicate.
        let mut mentions = HashMap::new();
        f.body.walk(&mut |s| {
            use cparse::ast::Stmt;
            let (id, cond) = match s {
                Stmt::If { id, cond, .. }
                | Stmt::While { id, cond, .. }
                | Stmt::Assert { id, cond }
                | Stmt::Assume { id, cond } => (*id, cond),
                _ => return,
            };
            let names: Vec<String> = scope_vars
                .iter()
                .filter(|sv| sv.expr == *cond || sv.expr == cond.negated())
                .map(|sv| sv.name.clone())
                .collect();
            mentions.insert(id, names);
        });
        let options = C2bpOptions::paper_defaults();
        let inp = LiveInputs {
            env: &env,
            func: f,
            scope_vars: &scope_vars,
            global_pred_names: &global_names,
            return_pred_names: &[],
            enforce_vars: &[],
            mentions: &mentions,
            groups: None,
            options: &options,
        };
        function_liveness(&inp, &pts)
    }

    fn assign_lives(src: &str, preds: &str, func: &str) -> Vec<BTreeSet<String>> {
        let program = parse_and_simplify(src).unwrap();
        let f = program.function(func).unwrap();
        let flat = flatten_function(f).unwrap();
        let live = liveness_of(src, preds, func).expect("analyzable");
        flat.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Assign { id, .. } => Some(live[id].clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn predicate_never_observed_is_dead() {
        // y == 0 feeds nothing: no guard, no return, no global.
        let lives = assign_lives(
            "void f(int x, int y) { y = 0; if (x == 0) { x = 1; } }",
            "f x == 0, y == 0",
            "f",
        );
        assert!(!lives[0].contains("y == 0"), "{lives:?}");
        assert!(lives[0].contains("x == 0"), "{lives:?}");
    }

    #[test]
    fn predicate_feeding_a_later_guard_is_live() {
        let lives = assign_lives(
            "void f(int x) { x = 0; if (x == 0) { x = 1; } }",
            "f x == 0",
            "f",
        );
        assert!(lives[0].contains("x == 0"), "{lives:?}");
    }

    #[test]
    fn liveness_flows_through_copy_chains() {
        // y = x; z = y; assert(z == 0): the later copy's update reads
        // {y == 0} (cone of WP(z = y, z == 0)), so {y == 0} stays live
        // after the first assignment even though no guard mentions it.
        let lives = assign_lives(
            "void f(int x, int y, int z) { y = x; z = y; assert(z == 0); }",
            "f x == 0, y == 0, z == 0",
            "f",
        );
        assert!(lives[0].contains("y == 0"), "{lives:?}");
        assert!(lives[1].contains("z == 0"), "{lives:?}");
    }

    #[test]
    fn dead_copy_chain_stays_dead() {
        // y = 0; z = y; and nothing ever looks at y or z.
        let lives = assign_lives(
            "void f(int x, int y, int z) { y = 0; z = y; assert(x == 0); }",
            "f x == 0, y == 0, z == 0",
            "f",
        );
        assert!(!lives[0].contains("y == 0"), "{lives:?}");
        assert!(!lives[1].contains("z == 0"), "{lives:?}");
    }

    #[test]
    fn global_predicates_are_live_at_returns() {
        let lives = assign_lives("int g; void f() { g = 1; }", "global g == 0", "f");
        assert!(lives[0].contains("g == 0"), "{lives:?}");
    }

    #[test]
    fn cone_disabled_reports_nothing_analyzable() {
        let program = parse_and_simplify("void f(int x) { x = 0; }").unwrap();
        let preds = parse_pred_file("f x == 0").unwrap();
        let env = TypeEnv::new(&program);
        let pts = PointsTo::analyze(&program);
        let f = program.function("f").unwrap();
        let scope_vars: Vec<ScopeVar> = preds.iter().map(ScopeVar::of_pred).collect();
        let mut options = C2bpOptions::paper_defaults();
        options.cubes.cone_of_influence = false;
        let inp = LiveInputs {
            env: &env,
            func: f,
            scope_vars: &scope_vars,
            global_pred_names: &[],
            return_pred_names: &[],
            enforce_vars: &[],
            mentions: &HashMap::new(),
            groups: None,
            options: &options,
        };
        assert!(function_liveness(&inp, &pts).is_none());
    }

    #[test]
    fn enforce_variables_are_live_everywhere() {
        let program = parse_and_simplify("void f(int x, int y) { y = 0; }").unwrap();
        let preds = parse_pred_file("f y == 0").unwrap();
        let env = TypeEnv::new(&program);
        let pts = PointsTo::analyze(&program);
        let f = program.function("f").unwrap();
        let scope_vars: Vec<ScopeVar> = preds.iter().map(ScopeVar::of_pred).collect();
        let options = C2bpOptions::paper_defaults();
        let enforce = vec!["y == 0".to_string()];
        let inp = LiveInputs {
            env: &env,
            func: f,
            scope_vars: &scope_vars,
            global_pred_names: &[],
            return_pred_names: &[],
            enforce_vars: &enforce,
            mentions: &HashMap::new(),
            groups: None,
            options: &options,
        };
        let live = function_liveness(&inp, &pts).unwrap();
        assert!(live.values().all(|s| s.contains("y == 0")));
    }
}
