//! Exact binary serialization of memoized leaf outputs.
//!
//! The reuse session's transfer-function memo maps a leaf fingerprint to
//! a [`LeafOut`] — a fragment of the emitted boolean program. Persisting
//! it across *processes* (the disk cache) needs an encoding that
//! round-trips every field exactly: the `bp` textual printer is not
//! enough, because it drops the originating [`StmtId`]s and branch tags
//! that the model checker's trace extraction depends on.
//!
//! The encoding is a plain tagged pre-order walk with LE fixed-width
//! lengths. Decoding is total: any malformed input returns `None`, which
//! the persistence layer treats as a cache miss — a damaged or
//! version-skewed record can cost a re-solve, never an error and never a
//! wrong program.

use crate::abs::LeafOut;
use bp::{BExpr, BStmt};
use cparse::ast::StmtId;

// LeafOut tags.
const L_STMT: u8 = 0;
const L_GUARDS: u8 = 1;
const L_ENFORCE_NONE: u8 = 2;
const L_ENFORCE_SOME: u8 = 3;

// BExpr tags.
const E_FALSE: u8 = 0;
const E_TRUE: u8 = 1;
const E_NONDET: u8 = 2;
const E_VAR: u8 = 3;
const E_NOT: u8 = 4;
const E_AND: u8 = 5;
const E_OR: u8 = 6;
const E_CHOOSE: u8 = 7;

// BStmt tags.
const S_SKIP: u8 = 0;
const S_ASSIGN: u8 = 1;
const S_ASSUME: u8 = 2;
const S_ASSERT: u8 = 3;
const S_IF: u8 = 4;
const S_WHILE: u8 = 5;
const S_GOTO: u8 = 6;
const S_LABEL: u8 = 7;
const S_CALL: u8 = 8;
const S_RETURN: u8 = 9;
const S_SEQ: u8 = 10;

pub(crate) fn encode_leaf_out(out: &LeafOut) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match out {
        LeafOut::Stmt(s) => {
            buf.push(L_STMT);
            stmt(&mut buf, s);
        }
        LeafOut::Guards { pos, neg } => {
            buf.push(L_GUARDS);
            expr(&mut buf, pos);
            expr(&mut buf, neg);
        }
        LeafOut::Enforce(None) => buf.push(L_ENFORCE_NONE),
        LeafOut::Enforce(Some(e)) => {
            buf.push(L_ENFORCE_SOME);
            expr(&mut buf, e);
        }
    }
    buf
}

/// Decodes an encoded leaf output; `None` on any malformation, including
/// trailing bytes.
pub(crate) fn decode_leaf_out(bytes: &[u8]) -> Option<LeafOut> {
    let mut c = Cursor { buf: bytes, at: 0 };
    let out = match c.u8()? {
        L_STMT => LeafOut::Stmt(c.stmt()?),
        L_GUARDS => LeafOut::Guards {
            pos: c.expr()?,
            neg: c.expr()?,
        },
        L_ENFORCE_NONE => LeafOut::Enforce(None),
        L_ENFORCE_SOME => LeafOut::Enforce(Some(c.expr()?)),
        _ => return None,
    };
    (c.at == bytes.len()).then_some(out)
}

fn u32v(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn strv(buf: &mut Vec<u8>, s: &str) {
    u32v(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn strs(buf: &mut Vec<u8>, ss: &[String]) {
    u32v(buf, ss.len() as u32);
    for s in ss {
        strv(buf, s);
    }
}

fn opt_id(buf: &mut Vec<u8>, id: &Option<StmtId>) {
    match id {
        None => buf.push(0),
        Some(StmtId(n)) => {
            buf.push(1);
            u32v(buf, *n);
        }
    }
}

fn opt_bool(buf: &mut Vec<u8>, b: &Option<bool>) {
    buf.push(match b {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
}

fn exprs(buf: &mut Vec<u8>, es: &[BExpr]) {
    u32v(buf, es.len() as u32);
    for e in es {
        expr(buf, e);
    }
}

fn expr(buf: &mut Vec<u8>, e: &BExpr) {
    match e {
        BExpr::Const(false) => buf.push(E_FALSE),
        BExpr::Const(true) => buf.push(E_TRUE),
        BExpr::Nondet => buf.push(E_NONDET),
        BExpr::Var(v) => {
            buf.push(E_VAR);
            strv(buf, v);
        }
        BExpr::Not(inner) => {
            buf.push(E_NOT);
            expr(buf, inner);
        }
        BExpr::And(es) => {
            buf.push(E_AND);
            exprs(buf, es);
        }
        BExpr::Or(es) => {
            buf.push(E_OR);
            exprs(buf, es);
        }
        BExpr::Choose(p, n) => {
            buf.push(E_CHOOSE);
            expr(buf, p);
            expr(buf, n);
        }
    }
}

fn stmt(buf: &mut Vec<u8>, s: &BStmt) {
    match s {
        BStmt::Skip => buf.push(S_SKIP),
        BStmt::Assign {
            id,
            targets,
            values,
        } => {
            buf.push(S_ASSIGN);
            opt_id(buf, id);
            strs(buf, targets);
            exprs(buf, values);
        }
        BStmt::Assume { id, branch, cond } => {
            buf.push(S_ASSUME);
            opt_id(buf, id);
            opt_bool(buf, branch);
            expr(buf, cond);
        }
        BStmt::Assert { id, cond } => {
            buf.push(S_ASSERT);
            opt_id(buf, id);
            expr(buf, cond);
        }
        BStmt::If {
            id,
            cond,
            then_branch,
            else_branch,
        } => {
            buf.push(S_IF);
            opt_id(buf, id);
            expr(buf, cond);
            stmt(buf, then_branch);
            stmt(buf, else_branch);
        }
        BStmt::While { id, cond, body } => {
            buf.push(S_WHILE);
            opt_id(buf, id);
            expr(buf, cond);
            stmt(buf, body);
        }
        BStmt::Goto(l) => {
            buf.push(S_GOTO);
            strv(buf, l);
        }
        BStmt::Label(l) => {
            buf.push(S_LABEL);
            strv(buf, l);
        }
        BStmt::Call {
            id,
            dsts,
            proc,
            args,
        } => {
            buf.push(S_CALL);
            opt_id(buf, id);
            strs(buf, dsts);
            strv(buf, proc);
            exprs(buf, args);
        }
        BStmt::Return { id, values } => {
            buf.push(S_RETURN);
            opt_id(buf, id);
            exprs(buf, values);
        }
        BStmt::Seq(ss) => {
            buf.push(S_SEQ);
            u32v(buf, ss.len() as u32);
            for st in ss {
                stmt(buf, st);
            }
        }
    }
}

struct Cursor<'b> {
    buf: &'b [u8],
    at: usize,
}

impl Cursor<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.at)?;
        self.at += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// A length prefix, sanity-bounded by the bytes actually remaining
    /// so a corrupt length cannot drive huge preallocations.
    fn len(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        (n <= self.buf.len().saturating_sub(self.at)).then_some(n)
    }

    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        let bytes = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn strs(&mut self) -> Option<Vec<String>> {
        let n = self.len()?;
        (0..n).map(|_| self.str()).collect()
    }

    fn opt_id(&mut self) -> Option<Option<StmtId>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(StmtId(self.u32()?))),
            _ => None,
        }
    }

    fn opt_bool(&mut self) -> Option<Option<bool>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(false)),
            2 => Some(Some(true)),
            _ => None,
        }
    }

    fn exprs(&mut self) -> Option<Vec<BExpr>> {
        let n = self.len()?;
        (0..n).map(|_| self.expr()).collect()
    }

    fn expr(&mut self) -> Option<BExpr> {
        Some(match self.u8()? {
            E_FALSE => BExpr::Const(false),
            E_TRUE => BExpr::Const(true),
            E_NONDET => BExpr::Nondet,
            E_VAR => BExpr::Var(self.str()?),
            E_NOT => BExpr::Not(Box::new(self.expr()?)),
            E_AND => BExpr::And(self.exprs()?),
            E_OR => BExpr::Or(self.exprs()?),
            E_CHOOSE => BExpr::Choose(Box::new(self.expr()?), Box::new(self.expr()?)),
            _ => return None,
        })
    }

    fn stmt(&mut self) -> Option<BStmt> {
        Some(match self.u8()? {
            S_SKIP => BStmt::Skip,
            S_ASSIGN => BStmt::Assign {
                id: self.opt_id()?,
                targets: self.strs()?,
                values: self.exprs()?,
            },
            S_ASSUME => BStmt::Assume {
                id: self.opt_id()?,
                branch: self.opt_bool()?,
                cond: self.expr()?,
            },
            S_ASSERT => BStmt::Assert {
                id: self.opt_id()?,
                cond: self.expr()?,
            },
            S_IF => BStmt::If {
                id: self.opt_id()?,
                cond: self.expr()?,
                then_branch: Box::new(self.stmt()?),
                else_branch: Box::new(self.stmt()?),
            },
            S_WHILE => BStmt::While {
                id: self.opt_id()?,
                cond: self.expr()?,
                body: Box::new(self.stmt()?),
            },
            S_GOTO => BStmt::Goto(self.str()?),
            S_LABEL => BStmt::Label(self.str()?),
            S_CALL => BStmt::Call {
                id: self.opt_id()?,
                dsts: self.strs()?,
                proc: self.str()?,
                args: self.exprs()?,
            },
            S_RETURN => BStmt::Return {
                id: self.opt_id()?,
                values: self.exprs()?,
            },
            S_SEQ => {
                let n = self.len()?;
                BStmt::Seq((0..n).map(|_| self.stmt()).collect::<Option<_>>()?)
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(out: &LeafOut) {
        let enc = encode_leaf_out(out);
        let dec = decode_leaf_out(&enc).expect("decodes");
        // LeafOut has no PartialEq; the Debug form covers every field
        assert_eq!(format!("{out:?}"), format!("{dec:?}"));
    }

    #[test]
    fn all_variants_roundtrip_exactly() {
        let guard = BExpr::Choose(
            Box::new(BExpr::And(vec![
                BExpr::var("{x == 0}"),
                BExpr::Not(Box::new(BExpr::var("{y < z}"))),
            ])),
            Box::new(BExpr::Or(vec![BExpr::Const(true), BExpr::Nondet])),
        );
        roundtrip(&LeafOut::Guards {
            pos: guard.clone(),
            neg: BExpr::Const(false),
        });
        roundtrip(&LeafOut::Enforce(None));
        roundtrip(&LeafOut::Enforce(Some(guard.clone())));
        // statement ids and branch polarity must survive: the model
        // checker's trace extraction reads them
        roundtrip(&LeafOut::Stmt(BStmt::Seq(vec![
            BStmt::Skip,
            BStmt::Assign {
                id: Some(StmtId(7)),
                targets: vec!["{a}".into(), "{b}".into()],
                values: vec![guard.clone(), BExpr::unknown()],
            },
            BStmt::Assume {
                id: Some(StmtId(9)),
                branch: Some(false),
                cond: BExpr::var("{a}"),
            },
            BStmt::Assume {
                id: None,
                branch: Some(true),
                cond: BExpr::Const(true),
            },
            BStmt::Assert {
                id: Some(StmtId(u32::MAX - 1)),
                cond: BExpr::var("{b}"),
            },
            BStmt::If {
                id: Some(StmtId(0)),
                cond: BExpr::Nondet,
                then_branch: Box::new(BStmt::Goto("L1".into())),
                else_branch: Box::new(BStmt::Label("L2".into())),
            },
            BStmt::While {
                id: None,
                cond: BExpr::Nondet,
                body: Box::new(BStmt::Call {
                    id: Some(StmtId(3)),
                    dsts: vec!["__t0".into()],
                    proc: "helper".into(),
                    args: vec![BExpr::var("{a}")],
                }),
            },
            BStmt::Return {
                id: Some(StmtId(11)),
                values: vec![BExpr::Const(false)],
            },
        ])));
    }

    #[test]
    fn malformed_inputs_decode_to_none() {
        let good = encode_leaf_out(&LeafOut::Guards {
            pos: BExpr::var("{x == 0}"),
            neg: BExpr::Not(Box::new(BExpr::var("{x == 0}"))),
        });
        assert!(decode_leaf_out(&good).is_some());
        // empty, truncated, trailing garbage, bad tag, corrupt length
        assert!(decode_leaf_out(&[]).is_none());
        for cut in 1..good.len() {
            // any strict prefix must fail cleanly, never panic
            let _ = decode_leaf_out(&good[..cut]);
        }
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_leaf_out(&trailing).is_none());
        assert!(decode_leaf_out(&[99]).is_none());
        let mut huge_len = vec![L_STMT, S_SEQ];
        huge_len.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_leaf_out(&huge_len).is_none());
    }
}
