//! Predicates and the predicate input file format.
//!
//! The paper feeds C2bp a *predicate input file* like:
//!
//! ```text
//! partition curr == NULL, prev == NULL,
//!           curr->val > v, prev->val > v
//! global    locked == 1
//! ```
//!
//! Each entry names a scope — a procedure, or the keyword `global` — and
//! lists pure boolean C expressions separated by commas. A list continues
//! onto the next line after a trailing comma.

use cparse::ast::Expr;
use cparse::parser::parse_expr;
use cparse::ParseError;
use std::fmt;

/// Where a predicate's boolean variable lives (§4.5.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PredScope {
    /// Global to the boolean program; may only mention C globals.
    Global,
    /// Local to the named procedure.
    Local(String),
}

impl fmt::Display for PredScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredScope::Global => write!(f, "global"),
            PredScope::Local(p) => write!(f, "{p}"),
        }
    }
}

/// A predicate to track: a pure boolean C expression with a scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Pred {
    /// Scope of the corresponding boolean variable.
    pub scope: PredScope,
    /// The C expression.
    pub expr: Expr,
}

impl Pred {
    /// A predicate local to `proc`.
    pub fn local(proc: impl Into<String>, expr: Expr) -> Pred {
        Pred {
            scope: PredScope::Local(proc.into()),
            expr,
        }
    }

    /// A global predicate.
    pub fn global(expr: Expr) -> Pred {
        Pred {
            scope: PredScope::Global,
            expr,
        }
    }

    /// The boolean variable name C2bp uses for this predicate: the
    /// pretty-printed expression (quoted as `{...}` when printed).
    pub fn var_name(&self) -> String {
        cparse::pretty::expr_to_string(&self.expr)
    }
}

/// An error in a predicate input file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredFileError {
    /// 1-based line of the offending entry.
    pub line: u32,
    /// Description.
    pub message: String,
}

impl fmt::Display for PredFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "predicate file error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for PredFileError {}

impl From<(u32, ParseError)> for PredFileError {
    fn from((line, e): (u32, ParseError)) -> PredFileError {
        PredFileError {
            line,
            message: e.message,
        }
    }
}

/// Parses a predicate input file.
///
/// # Errors
///
/// Returns a [`PredFileError`] on malformed entries or unparsable
/// predicate expressions.
pub fn parse_pred_file(src: &str) -> Result<Vec<Pred>, PredFileError> {
    let mut out = Vec::new();
    // group lines into entries: a new entry starts on a line that is not a
    // continuation (previous line ended with a comma)
    let mut entries: Vec<(u32, String)> = Vec::new();
    let mut continuing = false;
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if continuing {
            let last = entries.last_mut().expect("continuation has a start");
            last.1.push(' ');
            last.1.push_str(line);
        } else {
            entries.push((line_no, line.to_string()));
        }
        continuing = line.ends_with(',');
    }
    for (line_no, entry) in entries {
        let Some((scope_word, rest)) = split_scope(&entry) else {
            return Err(PredFileError {
                line: line_no,
                message: format!("entry `{entry}` has no scope name"),
            });
        };
        let scope = if scope_word == "global" {
            PredScope::Global
        } else {
            PredScope::Local(scope_word.to_string())
        };
        for piece in rest.split(',') {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            let expr = parse_expr(piece).map_err(|e| PredFileError {
                line: line_no,
                message: format!("cannot parse predicate `{piece}`: {}", e.message),
            })?;
            out.push(Pred {
                scope: scope.clone(),
                expr,
            });
        }
    }
    Ok(out)
}

/// Splits `name rest` or `name: rest`.
fn split_scope(entry: &str) -> Option<(&str, &str)> {
    let entry = entry.trim();
    let end = entry.find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))?;
    if end == 0 {
        return None;
    }
    let (name, rest) = entry.split_at(end);
    let rest = rest.trim_start().strip_prefix(':').unwrap_or(rest).trim();
    Some((name, rest))
}

/// Renders predicates back into the input-file format (one per line).
pub fn preds_to_string(preds: &[Pred]) -> String {
    let mut out = String::new();
    for p in preds {
        out.push_str(&format!("{} {}\n", p.scope, p.var_name()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_partition_file() {
        let src = "partition curr == NULL, prev == NULL, curr->val > v, prev->val > v";
        let preds = parse_pred_file(src).unwrap();
        assert_eq!(preds.len(), 4);
        assert!(preds
            .iter()
            .all(|p| p.scope == PredScope::Local("partition".into())));
        assert_eq!(preds[2].var_name(), "curr->val > v");
    }

    #[test]
    fn continuation_lines_after_commas() {
        let src =
            "mark h == 0, prev == h, this == h,\n     this->next == hnext,\n     prev == this";
        let preds = parse_pred_file(src).unwrap();
        assert_eq!(preds.len(), 5);
    }

    #[test]
    fn global_scope_and_comments() {
        let src = "// spec state\nglobal locked == 1, locked == 0\nfoo x == 0";
        let preds = parse_pred_file(src).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[0].scope, PredScope::Global);
        assert_eq!(preds[2].scope, PredScope::Local("foo".into()));
    }

    #[test]
    fn bad_expression_is_reported_with_line() {
        let err = parse_pred_file("foo x ==").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn round_trip_rendering() {
        let src = "foo *p <= 0, x == 0";
        let preds = parse_pred_file(src).unwrap();
        let text = preds_to_string(&preds);
        let again = parse_pred_file(&text).unwrap();
        assert_eq!(preds, again);
    }
}
