//! Procedure signatures for modular abstraction (§4.5.2).
//!
//! The signature of a procedure `R` is `(F_R, r, E_f, E_r)`: its formals,
//! its return variable, the *formal parameter predicates* (predicates of
//! `R` mentioning no locals — they become the formals of the abstracted
//! procedure), and the *return predicates* (predicates whose post-call
//! value callers receive, covering both the return value and side effects
//! on globals and by-reference parameters).

use crate::preds::{Pred, PredScope};
use analysis::ModRef;
use cparse::ast::{Expr, Function, Program, Stmt};
use pointsto::AliasOracle;

/// The signature of one procedure's abstraction.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    /// Procedure name.
    pub name: String,
    /// Formal parameter names of the C procedure (`F_R`).
    pub formals: Vec<String>,
    /// The return variable `r`, if the procedure returns a value.
    pub ret_var: Option<String>,
    /// `E_f`: predicates that become formals of the boolean procedure.
    pub formal_preds: Vec<Pred>,
    /// `E_r`: predicates whose values the boolean procedure returns.
    pub return_preds: Vec<Pred>,
}

/// The return variable of a simplified function: the variable in its
/// single `return` statement.
pub fn return_var(f: &Function) -> Option<String> {
    let mut out = None;
    f.body.walk(&mut |s| {
        if let Stmt::Return {
            value: Some(Expr::Var(v)),
            ..
        } = s
        {
            out = Some(v.clone());
        }
    });
    out
}

/// Formal parameters whose value may change inside the body. Predicates
/// in `E_r` mentioning these are dropped (footnote 4: the formal may no
/// longer equal its actual at the end of the call).
///
/// The MOD set comes from the interprocedural [`ModRef`] summaries: a
/// formal counts as modified if it is assigned directly, or if some
/// pointer written through (here or in a callee) may point at it. This
/// is strictly more precise than the old syntactic walk, which treated
/// every address-taken formal as modified even when the escaping pointer
/// was only ever read.
pub fn modified_formals(
    modref: &ModRef,
    pts: &dyn AliasOracle,
    program: &Program,
    f: &Function,
) -> Vec<String> {
    modref.modified_formals(pts, program, &f.name)
}

/// Computes the signature of `func` with respect to the predicates `E`,
/// consulting the MOD/REF summaries for footnote 4.
pub fn signature(
    program: &Program,
    func: &Function,
    preds: &[Pred],
    modref: &ModRef,
    pts: &dyn AliasOracle,
) -> Signature {
    let local_preds: Vec<&Pred> = preds
        .iter()
        .filter(|p| p.scope == PredScope::Local(func.name.clone()))
        .collect();
    let locals: Vec<&str> = func.locals.iter().map(|(n, _)| n.as_str()).collect();
    let formals: Vec<String> = func.params.iter().map(|p| p.name.clone()).collect();
    let globals: Vec<&str> = program.globals.iter().map(|(n, _)| n.as_str()).collect();
    let r = return_var(func);
    let modified = modified_formals(modref, pts, program, func);

    let mentions_local = |e: &Expr| e.vars().iter().any(|v| locals.contains(&v.as_str()));
    let formal_preds: Vec<Pred> = local_preds
        .iter()
        .filter(|p| !mentions_local(&p.expr))
        .map(|p| (*p).clone())
        .collect();

    let mut return_preds: Vec<Pred> = Vec::new();
    for p in &local_preds {
        let vars = p.expr.vars();
        let mentions_r = r.as_deref().map(|rv| vars.iter().any(|v| v == rv));
        // clause 1: mentions r and no *other* locals
        let clause1 = mentions_r == Some(true)
            && vars
                .iter()
                .filter(|v| Some(v.as_str()) != r.as_deref())
                .all(|v| !locals.contains(&v.as_str()));
        // clause 2: a formal predicate that observes a global or
        // dereferences a formal (side-effect visibility)
        let in_formals = formal_preds.iter().any(|fp| fp.expr == p.expr);
        let clause2 = in_formals
            && (vars.iter().any(|v| globals.contains(&v.as_str()))
                || p.expr.derefd_vars().iter().any(|v| formals.contains(v)));
        if clause1 || clause2 {
            // footnote 4: drop if a mentioned formal is modified
            let mentions_modified = vars.iter().any(|v| modified.contains(v));
            if !mentions_modified && !return_preds.iter().any(|rp| rp.expr == p.expr) {
                return_preds.push((*p).clone());
            }
        }
    }

    Signature {
        name: func.name.clone(),
        formals,
        ret_var: r,
        formal_preds,
        return_preds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preds::parse_pred_file;
    use cparse::parse_and_simplify;
    use pointsto::PointsTo;

    fn sig_of(program: &Program, func: &str, preds: &[Pred]) -> Signature {
        let modref = ModRef::analyze(program);
        let pts = PointsTo::analyze(program);
        signature(
            program,
            program.function(func).unwrap(),
            preds,
            &modref,
            &pts,
        )
    }

    /// The paper's Figure 2 program.
    const FIG2: &str = r#"
        int bar(int* q, int y) {
            int l1, l2;
            l1 = y;
            l2 = 0;
            return l1;
        }
        void foo(int* p, int x) {
            int r;
            if (*p <= x) { *p = x; } else { *p = *p + x; }
            r = bar(p, x);
        }
    "#;

    #[test]
    fn figure_2_signature_of_bar() {
        let program = parse_and_simplify(FIG2).unwrap();
        let preds =
            parse_pred_file("bar y >= 0, *q <= y, y == l1, y > l2\nfoo *p <= 0, x == 0, r == 0")
                .unwrap();
        let sig = sig_of(&program, "bar", &preds);
        assert_eq!(sig.ret_var.as_deref(), Some("l1"));
        let ef: Vec<String> = sig.formal_preds.iter().map(Pred::var_name).collect();
        assert_eq!(ef, vec!["y >= 0", "*q <= y"]);
        let er: Vec<String> = sig.return_preds.iter().map(Pred::var_name).collect();
        // paper: E_r = { y == l1, *q <= y }
        assert!(er.contains(&"y == l1".to_string()), "er = {er:?}");
        assert!(er.contains(&"*q <= y".to_string()), "er = {er:?}");
        assert_eq!(er.len(), 2);
    }

    #[test]
    fn modified_formals_are_dropped_from_returns() {
        let program = parse_and_simplify(
            r#"
            int bar(int y) {
                int l1;
                y = y + 1;
                l1 = y;
                return l1;
            }
        "#,
        )
        .unwrap();
        let preds = parse_pred_file("bar y >= 0, y == l1").unwrap();
        let sig = sig_of(&program, "bar", &preds);
        assert!(sig.return_preds.is_empty(), "{:?}", sig.return_preds);
        let modref = ModRef::analyze(&program);
        let pts = PointsTo::analyze(&program);
        let bar = program.function("bar").unwrap();
        assert!(modified_formals(&modref, &pts, &program, bar).contains(&"y".to_string()));
    }

    #[test]
    fn observed_but_unmodified_formal_keeps_return_preds() {
        // `q` escapes into `observe`, which only *reads* through it. The
        // old syntactic walk counted the `&`-escape as a modification and
        // dropped `y == l1` from E_r; MOD/REF keeps it.
        let program = parse_and_simplify(
            r#"
            int g;
            void observe(int* p) { g = *p; }
            int bar(int y) {
                int l1;
                observe(&y);
                l1 = y;
                return l1;
            }
        "#,
        )
        .unwrap();
        let preds = parse_pred_file("bar y == l1").unwrap();
        let sig = sig_of(&program, "bar", &preds);
        let er: Vec<String> = sig.return_preds.iter().map(Pred::var_name).collect();
        assert!(er.contains(&"y == l1".to_string()), "er = {er:?}");
    }

    #[test]
    fn globals_make_formal_preds_returnable() {
        let program = parse_and_simplify(
            r#"
            int g;
            void setg(int v) { g = v; }
        "#,
        )
        .unwrap();
        let preds = parse_pred_file("setg g == 0, v == 0").unwrap();
        let sig = sig_of(&program, "setg", &preds);
        let er: Vec<String> = sig.return_preds.iter().map(Pred::var_name).collect();
        assert!(er.contains(&"g == 0".to_string()));
        assert!(!er.contains(&"v == 0".to_string()));
    }

    #[test]
    fn return_var_found_after_simplification() {
        let program =
            parse_and_simplify("int f(int x) { if (x > 0) { return 1; } return 0; }").unwrap();
        let f = program.function("f").unwrap();
        assert_eq!(return_var(f).as_deref(), Some(cparse::simplify::RET_VAR));
    }
}
