//! Weakest preconditions with Morris' general axiom of assignment (§4.2).
//!
//! `WP(x = e, φ)` is `φ[e/x]` only in the absence of pointers. With
//! pointers, every location `y` mentioned in `φ` may or may not alias the
//! assigned location `x`:
//!
//! ```text
//! φ[x, e, y] = (&x == &y && φ[e/y]) || (&x != &y && φ)
//! ```
//!
//! applied in sequence for each `y`. This module classifies each pair of
//! lvalues as [`AliasCase::Never`] / [`AliasCase::Must`] /
//! [`AliasCase::May`] using types, shapes (a named variable is never a
//! struct field), and the points-to analysis, generating the residual
//! disjuncts only for genuine `May` pairs — the paper's alias-pruning
//! optimization.

use cparse::ast::{BinOp, Expr, Type, UnOp};
use cparse::typeck::TypeEnv;
use pointsto::AliasOracle;

/// Can two memory cells of these types be the same cell? Stricter than
/// expression-level compatibility: an `int` cell is never a pointer cell
/// (the `0`-as-null-literal rule does not apply to locations).
fn cells_compatible(a: &Type, b: &Type) -> bool {
    let decay = |t: &Type| match t {
        Type::Array(elem, _) => Type::Ptr(elem.clone()),
        other => other.clone(),
    };
    match (decay(a), decay(b)) {
        (Type::Int, Type::Int) => true,
        (Type::Ptr(x), Type::Ptr(y)) => *x == Type::Void || *y == Type::Void || x == y,
        (Type::Struct(x), Type::Struct(y)) => x == y,
        _ => false,
    }
}

/// How two lvalues may relate.
#[derive(Debug, Clone, PartialEq)]
pub enum AliasCase {
    /// The lvalues never denote the same location.
    Never,
    /// The lvalues always denote the same location (syntactically equal).
    Must,
    /// They alias exactly when the given (pure, C-expressible) condition
    /// holds at runtime.
    May(Expr),
    /// They may alias but the condition is not expressible in the
    /// predicate language; the caller must give up precision.
    Unknown,
}

/// Scope information for WP computation inside one function.
pub struct WpCtx<'a> {
    /// Typing environment.
    pub env: &'a TypeEnv,
    /// The points-to analysis results (whichever mode is selected).
    pub pts: &'a dyn AliasOracle,
    /// Alias-case `May` disjuncts emitted by [`wp_assign`] through this
    /// context (the quantity sharper points-to facts reduce).
    pub may_disjuncts: u64,
    /// Enclosing function name.
    pub func: String,
    /// Variable-type lookup for the enclosing scope.
    pub lookup: VarLookup<'a>,
}

/// A scope-local variable-type lookup.
pub type VarLookup<'a> = Box<dyn Fn(&str) -> Option<Type> + 'a>;

impl WpCtx<'_> {
    fn type_of(&self, e: &Expr) -> Option<Type> {
        self.env.type_of_with(&*self.lookup, e).ok()
    }

    /// The base pointer variable of a dereference-shaped lvalue, if it is
    /// a plain variable (after simplification it almost always is).
    fn base_var(e: &Expr) -> Option<&str> {
        match e {
            Expr::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Classifies the relation between assigned location `x` and mentioned
    /// location `y`.
    pub fn alias_case(&mut self, x: &Expr, y: &Expr) -> AliasCase {
        if x == y {
            return AliasCase::Must;
        }
        // type pruning: different cell types never alias
        if let (Some(tx), Some(ty)) = (self.type_of(x), self.type_of(y)) {
            if !cells_compatible(&tx, &ty) {
                return AliasCase::Never;
            }
        }
        let func = self.func.clone();
        match (shape(x), shape(y)) {
            (Shape::Var(a), Shape::Var(b)) => {
                if a == b {
                    AliasCase::Must
                } else {
                    AliasCase::Never
                }
            }
            // a named variable is a whole object; fields/elements are
            // interior locations of struct/array objects
            (Shape::Var(_), Shape::Field(_, _)) | (Shape::Field(_, _), Shape::Var(_)) => {
                AliasCase::Never
            }
            (Shape::Var(v), Shape::DirectField(s, _))
            | (Shape::DirectField(s, _), Shape::Var(v)) => {
                if v == s {
                    // whole-object assignment rewrites the interior field;
                    // not expressible as a substitution on the field lvalue
                    AliasCase::Unknown
                } else {
                    AliasCase::Never
                }
            }
            (Shape::Var(v), Shape::Deref(p)) | (Shape::Deref(p), Shape::Var(v)) => {
                if let Some(pv) = Self::base_var(p) {
                    if !self.pts.may_point_to(&func, pv, &func, v) {
                        return AliasCase::Never;
                    }
                }
                AliasCase::May(Expr::bin(
                    BinOp::Eq,
                    p.clone(),
                    Expr::Var(v.to_string()).addr_of(),
                ))
            }
            (Shape::Var(v), Shape::Index(a, _)) | (Shape::Index(a, _), Shape::Var(v)) => {
                // a[i] can only be the scalar v if a points at v itself
                if let Some(av) = Self::base_var(a) {
                    if !self.pts.may_point_to(&func, av, &func, v) {
                        return AliasCase::Never;
                    }
                }
                AliasCase::May(Expr::bin(
                    BinOp::Eq,
                    a.clone(),
                    Expr::Var(v.to_string()).addr_of(),
                ))
            }
            (Shape::Deref(p), Shape::Deref(q)) => {
                if let (Some(pv), Some(qv)) = (Self::base_var(p), Self::base_var(q)) {
                    if !self.pts.targets_may_intersect(&func, pv, &func, qv) {
                        return AliasCase::Never;
                    }
                }
                AliasCase::May(Expr::bin(BinOp::Eq, p.clone(), q.clone()))
            }
            (Shape::Deref(p), Shape::Field(q, f)) => self.deref_vs_field(p, q, f),
            (Shape::Field(q, f), Shape::Deref(p)) => self.deref_vs_field(p, q, f),
            (Shape::Deref(p), Shape::DirectField(s, f))
            | (Shape::DirectField(s, f), Shape::Deref(p)) => {
                // *p aliases s.f iff p == &s.f; the oracle knows whether p
                // can reach the object s at all
                if let Some(pv) = Self::base_var(p) {
                    if !self.pts.may_point_to(&func, pv, &func, s) {
                        return AliasCase::Never;
                    }
                }
                let field_lv = Expr::Var(s.to_string()).field(f.to_string());
                AliasCase::May(Expr::bin(BinOp::Eq, (*p).clone(), field_lv.addr_of()))
            }
            (Shape::Field(q, g), Shape::DirectField(s, f))
            | (Shape::DirectField(s, f), Shape::Field(q, g)) => {
                // q->g aliases s.f only for the same field, with q == &s
                if f != g {
                    return AliasCase::Never;
                }
                if let Some(qv) = Self::base_var(q) {
                    if !self.pts.may_point_to(&func, qv, &func, s) {
                        return AliasCase::Never;
                    }
                }
                AliasCase::May(Expr::bin(
                    BinOp::Eq,
                    (*q).clone(),
                    Expr::Var(s.to_string()).addr_of(),
                ))
            }
            (Shape::DirectField(s, f), Shape::DirectField(t, g)) => {
                // distinct named objects have disjoint interiors; distinct
                // fields of one object never overlap (syntactic equality
                // was already Must above)
                let _ = (s, f, t, g);
                AliasCase::Never
            }
            (Shape::DirectField(_, _), Shape::Index(_, _))
            | (Shape::Index(_, _), Shape::DirectField(_, _)) => AliasCase::Unknown,
            (Shape::Field(p, f), Shape::Field(q, g)) => {
                if f != g {
                    return AliasCase::Never;
                }
                if let (Some(pv), Some(qv)) = (Self::base_var(p), Self::base_var(q)) {
                    if !self.pts.targets_may_intersect(&func, pv, &func, qv) {
                        return AliasCase::Never;
                    }
                }
                AliasCase::May(Expr::bin(BinOp::Eq, p.clone(), q.clone()))
            }
            (Shape::Deref(p), Shape::Index(a, i)) => self.deref_vs_index(p, a, i),
            (Shape::Index(a, i), Shape::Deref(p)) => self.deref_vs_index(p, a, i),
            (Shape::Index(a, i), Shape::Index(b, j)) => {
                if let (Some(av), Some(bv)) = (Self::base_var(a), Self::base_var(b)) {
                    if av != bv && !self.pts.targets_may_intersect(&func, av, &func, bv) {
                        return AliasCase::Never;
                    }
                }
                let same_base = a == b;
                let idx_eq = Expr::bin(BinOp::Eq, (*i).clone(), (*j).clone());
                if same_base {
                    if i == j {
                        AliasCase::Must
                    } else {
                        AliasCase::May(idx_eq)
                    }
                } else {
                    AliasCase::May(Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Eq, a.clone(), b.clone()),
                        idx_eq,
                    ))
                }
            }
            // fields vs array elements: expressible only via interior
            // addresses we do not model — give up precision, stay sound
            (Shape::Field(_, _), Shape::Index(_, _)) | (Shape::Index(_, _), Shape::Field(_, _)) => {
                AliasCase::Unknown
            }
            (Shape::Other, _) | (_, Shape::Other) => AliasCase::Unknown,
        }
    }

    fn deref_vs_field(&mut self, p: &Expr, q: &Expr, f: &str) -> AliasCase {
        // *p aliases q->f iff p == &(q->f)
        let func = self.func.clone();
        if let (Some(pv), Some(qv)) = (Self::base_var(p), Self::base_var(q)) {
            if !self.pts.targets_may_intersect(&func, pv, &func, qv) {
                return AliasCase::Never;
            }
        }
        let field_lv = q.clone().deref().field(f.to_string());
        AliasCase::May(Expr::bin(BinOp::Eq, p.clone(), field_lv.addr_of()))
    }

    fn deref_vs_index(&mut self, p: &Expr, a: &Expr, i: &Expr) -> AliasCase {
        let func = self.func.clone();
        if let (Some(pv), Some(av)) = (Self::base_var(p), Self::base_var(a)) {
            if !self.pts.targets_may_intersect(&func, pv, &func, av) {
                return AliasCase::Never;
            }
        }
        let elem_lv = Expr::Index(Box::new(a.clone()), Box::new(i.clone()));
        AliasCase::May(Expr::bin(BinOp::Eq, p.clone(), elem_lv.addr_of()))
    }
}

/// The shape of an lvalue for alias classification.
enum Shape<'a> {
    Var(&'a str),
    Deref(&'a Expr),
    /// `base_ptr->field` (base is the *pointer*, not the struct value).
    Field(&'a Expr, &'a str),
    /// `object.field` — a field of a *named* struct object.
    DirectField(&'a str, &'a str),
    Index(&'a Expr, &'a Expr),
    Other,
}

fn shape(e: &Expr) -> Shape<'_> {
    match e {
        Expr::Var(v) => Shape::Var(v),
        Expr::Unary(UnOp::Deref, p) => Shape::Deref(p),
        Expr::Field(base, f) => match &**base {
            Expr::Unary(UnOp::Deref, p) => Shape::Field(p, f),
            // x.f: a field of the named object x
            Expr::Var(s) => Shape::DirectField(s, f),
            _ => Shape::Other,
        },
        Expr::Index(a, i) => Shape::Index(a, i),
        _ => Shape::Other,
    }
}

/// All distinct lvalue subexpressions of `φ` (the paper's "locations
/// mentioned in φ"), outermost first.
pub fn locations(phi: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    phi.walk(&mut |e| {
        if e.is_lvalue() && !out.contains(e) {
            out.push(e.clone());
        }
    });
    out
}

/// Would [`WpCtx::alias_case`] reach a *decisive* answer (`Never`,
/// `Must`, or points-to-prunable `May`) for this location against an
/// assigned plain variable whose address is never taken? Shapes with
/// unresolvable bases (`Shape::Other`, non-variable pointer bases) fall
/// through to unconditional `May`/`Unknown` regardless of points-to
/// facts, so the aliasing-possible gates in `abs.rs` must not treat
/// them as refutable.
pub(crate) fn decisive_against_unaliased_var(loc: &Expr) -> bool {
    match loc {
        Expr::Var(_) => true,
        Expr::Unary(UnOp::Deref, p) => matches!(&**p, Expr::Var(_)),
        // p->f is Shape::Field (Never against a variable); s.f is
        // Shape::DirectField, which is Unknown against the object s
        // itself (whole-struct assignment), so it stays non-decisive
        Expr::Field(base, _) => matches!(&**base, Expr::Unary(UnOp::Deref, _)),
        Expr::Index(a, _) => matches!(&**a, Expr::Var(_)),
        _ => false,
    }
}

/// `WP(lhs = rhs, φ)` under Morris' axiom with alias pruning.
///
/// Returns `None` when some may-alias pair has no expressible alias
/// condition; the abstraction then treats the predicate's new value as
/// unknown (sound).
pub fn wp_assign(ctx: &mut WpCtx<'_>, lhs: &Expr, rhs: &Expr, phi: &Expr) -> Option<Expr> {
    let mut wp = phi.clone();
    for y in locations(phi) {
        match ctx.alias_case(lhs, &y) {
            AliasCase::Never => {}
            AliasCase::Must => {
                wp = wp.subst_expr(&y, rhs);
            }
            AliasCase::May(cond) => {
                ctx.may_disjuncts += 1;
                let hit = Expr::bin(BinOp::And, cond.clone(), wp.subst_expr(&y, rhs));
                let miss = Expr::bin(BinOp::And, Expr::un(UnOp::Not, cond), wp.clone());
                wp = Expr::bin(BinOp::Or, hit, miss);
            }
            AliasCase::Unknown => return None,
        }
    }
    Some(wp)
}

/// Syntactic check: does the assignment certainly leave `φ` unchanged
/// (the paper's second optimization)? True when `WP(s, φ) == φ`.
pub fn unaffected(ctx: &mut WpCtx<'_>, lhs: &Expr, rhs: &Expr, phi: &Expr) -> bool {
    match wp_assign(ctx, lhs, rhs, phi) {
        Some(wp) => wp == *phi,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cparse::parser::{parse_expr, parse_program};
    use cparse::simplify::simplify_program;
    use pointsto::PointsTo;

    fn setup(src: &str, func: &str) -> (cparse::Program, TypeEnv, PointsTo, String) {
        let p = parse_program(src).unwrap();
        let p = simplify_program(&p).unwrap();
        let env = TypeEnv::new(&p);
        let pts = PointsTo::analyze(&p);
        (p, env, pts, func.to_string())
    }

    fn wp_str(
        program: &cparse::Program,
        env: &TypeEnv,
        pts: &PointsTo,
        func: &str,
        lhs: &str,
        rhs: &str,
        phi: &str,
    ) -> Option<String> {
        let f = program.function(func).unwrap();
        let mut ctx = WpCtx {
            env,
            pts,
            may_disjuncts: 0,
            func: func.to_string(),
            lookup: Box::new(move |n| f.var_type(n).cloned()),
        };
        let lhs = parse_expr(lhs).unwrap();
        let rhs = parse_expr(rhs).unwrap();
        let phi = parse_expr(phi).unwrap();
        wp_assign(&mut ctx, &lhs, &rhs, &phi).map(|e| cparse::pretty::expr_to_string(&e))
    }

    const SCALARS: &str = r#"
        void f(int x, int y) {
            int* p; int* q;
            p = &x;
            x = 3;
        }
    "#;

    #[test]
    fn plain_substitution_without_pointers() {
        // WP(x = x + 1, x < 5) = x + 1 < 5
        let (p, env, pts, f) = setup("void f(int x) { x = x + 1; }", "f");
        let wp = wp_str(&p, &env, &pts, &f, "x", "x + 1", "x < 5").unwrap();
        assert_eq!(wp, "x + 1 < 5");
    }

    #[test]
    fn morris_axiom_for_possible_alias() {
        // WP(x = 3, *p > 5) with p possibly pointing to x:
        // (p == &x && 3 > 5) || (!(p == &x) && *p > 5)
        let (p, env, pts, f) = setup(SCALARS, "f");
        let wp = wp_str(&p, &env, &pts, &f, "x", "3", "*p > 5").unwrap();
        assert!(wp.contains("p == &x"), "wp = {wp}");
        assert!(wp.contains("3 > 5"), "wp = {wp}");
        assert!(wp.contains("*p > 5"), "wp = {wp}");
    }

    #[test]
    fn alias_analysis_prunes_impossible_aliases() {
        // q never points to x, so WP(x = 3, *q > 5) = *q > 5
        let src = r#"
            void f(int x, int y) {
                int* q;
                q = &y;
                x = 3;
            }
        "#;
        let (p, env, pts, f) = setup(src, "f");
        let wp = wp_str(&p, &env, &pts, &f, "x", "3", "*q > 5").unwrap();
        assert_eq!(wp, "*q > 5");
    }

    #[test]
    fn distinct_fields_never_alias() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            void f(list curr, list prev, list nextcurr, int v) {
                prev->next = nextcurr;
            }
        "#;
        let (p, env, pts, f) = setup(src, "f");
        // assignment to prev->next leaves curr->val alone
        let wp = wp_str(
            &p,
            &env,
            &pts,
            &f,
            "prev->next",
            "nextcurr",
            "curr->val > v",
        )
        .unwrap();
        assert_eq!(wp, "curr->val > v");
    }

    #[test]
    fn same_field_may_alias_with_pointer_equality_condition() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            void f(list curr, list prev, int v) {
                curr->val = v;
            }
        "#;
        let (p, env, pts, f) = setup(src, "f");
        let wp = wp_str(&p, &env, &pts, &f, "curr->val", "0", "prev->val > v").unwrap();
        assert!(
            wp.contains("curr == prev") || wp.contains("prev == curr"),
            "wp={wp}"
        );
    }

    #[test]
    fn var_assignment_to_pointer_substitutes_in_field_access() {
        // WP(prev = curr, prev->val > v) = curr->val > v
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            void f(list curr, list prev, int v) {
                prev = curr;
            }
        "#;
        let (p, env, pts, f) = setup(src, "f");
        let wp = wp_str(&p, &env, &pts, &f, "prev", "curr", "prev->val > v").unwrap();
        assert_eq!(wp, "curr->val > v");
    }

    #[test]
    fn var_never_aliases_field() {
        // assignment to int variable leaves any p->val untouched
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            void f(list p, int v) { v = 3; }
        "#;
        let (prog, env, pts, f) = setup(src, "f");
        let wp = wp_str(&prog, &env, &pts, &f, "v", "3", "p->val > 0").unwrap();
        assert_eq!(wp, "p->val > 0");
    }

    #[test]
    fn array_elements_use_index_condition() {
        let src = r#"
            int a[10];
            void f(int i, int j) { a[i] = 0; }
        "#;
        let (p, env, pts, f) = setup(src, "f");
        let wp = wp_str(&p, &env, &pts, &f, "a[i]", "0", "a[j] > 1").unwrap();
        assert!(wp.contains("i == j") || wp.contains("j == i"), "wp={wp}");
        // and identical indices substitute outright
        let wp2 = wp_str(&p, &env, &pts, &f, "a[i]", "0", "a[i] > 1").unwrap();
        assert_eq!(wp2, "0 > 1");
    }

    #[test]
    fn unaffected_detects_identity() {
        let (p, env, pts, f) = setup("void f(int x, int y) { x = 1; }", "f");
        let fun = p.function(&f).unwrap();
        let mut ctx = WpCtx {
            env: &env,
            pts: &pts,
            may_disjuncts: 0,
            func: f.clone(),
            lookup: Box::new(move |n| fun.var_type(n).cloned()),
        };
        assert!(unaffected(
            &mut ctx,
            &parse_expr("x").unwrap(),
            &parse_expr("1").unwrap(),
            &parse_expr("y > 0").unwrap()
        ));
        assert!(!unaffected(
            &mut ctx,
            &parse_expr("x").unwrap(),
            &parse_expr("1").unwrap(),
            &parse_expr("x > 0").unwrap()
        ));
    }

    #[test]
    fn locations_enumerates_lvalues() {
        let phi = parse_expr("curr->val > v && *p == a[i]").unwrap();
        let locs = locations(&phi);
        let strs: Vec<String> = locs.iter().map(cparse::pretty::expr_to_string).collect();
        assert!(strs.contains(&"curr->val".to_string()));
        assert!(strs.contains(&"curr".to_string()));
        assert!(strs.contains(&"v".to_string()));
        assert!(strs.contains(&"*p".to_string()));
        assert!(strs.contains(&"a[i]".to_string()));
    }
}
