//! Emits the checked-in sample of the generated corpus to
//! `corpus/generated/`, with a `MANIFEST.md` recording each file's
//! family, seed, parameters and ground truth.
//!
//! ```sh
//! cargo run -p corpusgen --bin corpus-emit
//! ```
//!
//! The sample is a fixed slice of the matrix workload: every spec
//! family at two seeds, safe and defect variants, plus a counter-shape
//! variant per family (bounded ascending loops and arithmetic bracket
//! guards — the interval-oracle workload). `tests/corpus_sanity.rs`
//! regenerates each file from its header comment and byte-compares, so
//! editing these files by hand (or changing the generator) without
//! re-running this bin fails CI.

use corpusgen::{generate, params_for_index, GenParams, GroundTruth, FAMILIES};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The checked-in seeds: two per family, picked to exercise different
/// parameter ladder rungs (sizes, depths, pointer usage).
pub const SAMPLE_SEEDS: [u64; 2] = [0, 7];

/// The counter-shape sample params (mirrored by the `slice_ab` bench
/// and `counter_params()` in the corpusgen unit tests).
fn counter_params() -> GenParams {
    GenParams {
        statements: 5,
        depth: 2,
        pressure: 2,
        pointers: false,
        loops: true,
        counter: true,
    }
}

fn main() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let dir = root.join("corpus/generated");
    std::fs::create_dir_all(&dir).expect("create corpus/generated");

    let mut manifest = String::from(
        "# Generated corpus sample\n\n\
         A fixed slice of the matrix workload (see `crates/corpusgen` and\n\
         `bench --bin matrix`): every spec family at two seeds, safe and\n\
         seeded-defect variants, plus one counter-shape pair per family\n\
         (bounded ascending loops and `nK > 0` arithmetic bracket guards,\n\
         the workload the interval numeric oracle targets). Regenerate\n\
         with:\n\n\
         ```sh\n\
         cargo run -p corpusgen --bin corpus-emit\n\
         ```\n\n\
         `tests/corpus_sanity.rs` regenerates each file from its header\n\
         comment and byte-compares, so these files must not be edited by\n\
         hand.\n\n\
         | file | family | shape | seed | ground truth |\n\
         |------|--------|-------|------|--------------|\n",
    );
    let mut count = 0usize;
    let mut emit = |manifest: &mut String, family: &str, params: &GenParams, seed: u64| {
        let shape = if params.counter {
            "counter"
        } else {
            "straight"
        };
        for want_defect in [false, true] {
            let d = generate(family, params, seed, want_defect);
            let file = format!("{}.c", d.name);
            let truth = match d.truth {
                GroundTruth::Safe => "safe".to_string(),
                GroundTruth::Defect { kind, line } => {
                    format!("{} at line {line}", kind.as_str())
                }
            };
            writeln!(
                manifest,
                "| `{file}` | {family} | {shape} | {seed} | {truth} |"
            )
            .unwrap();
            std::fs::write(dir.join(&file), &d.source).expect("write driver");
            count += 1;
        }
    };
    for &family in FAMILIES {
        for seed in SAMPLE_SEEDS {
            let params = params_for_index(seed as usize);
            emit(&mut manifest, family, &params, seed);
        }
        emit(&mut manifest, family, &counter_params(), 0);
    }
    std::fs::write(dir.join("MANIFEST.md"), &manifest).expect("write manifest");
    eprintln!(
        "corpus-emit: wrote {count} drivers + MANIFEST.md to {}",
        dir.display()
    );
}
