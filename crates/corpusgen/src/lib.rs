//! Seeded generator of C driver corpora with known ground-truth verdicts.
//!
//! The paper's evaluation is eight hand-written drivers against one
//! locking specification — too small and too uniform for optimisation
//! work to register. This crate manufactures the missing workload: for
//! every family in the [`slam::SpecRegistry`](https://docs.rs) it emits
//! syntactically-valid C drivers from a seeded xorshift stream
//! ([`testutil::Rng`]), each with an exact, constructive ground truth:
//!
//! * **safe** drivers follow the family's protocol on every path, and
//! * **defective** drivers are the same body with one protocol-violating
//!   call spliced in at a recorded site (marked `/* DEFECT: ... */` in
//!   the source), chosen so the violating call *aborts on its first
//!   arrival* — downstream state corruption can never mask it.
//!
//! Ground truth is exact because every branch condition in a generated
//! driver tests a **fresh entry parameter** (`b0`, `b1`, …) and every
//! loop bound is a fresh parameter (`n0`, …): all paths are feasible, so
//! a defect site is always reachable and a safe driver has no
//! unreachable-protocol excuse. The generator never branches on computed
//! values.
//!
//! Shape is controlled by [`GenParams`]: statement budget, nesting
//! depth, predicate pressure (flag-guarded protocol brackets, each of
//! which forces the CEGAR loop to discover a `bK > 0` predicate),
//! pointer noise, loops, and the `counter` shape (bounded ascending
//! loops and arithmetic bracket guards — the workload the interval
//! numeric oracle is measured on).
//!
//! One deliberate restriction: the `refcount` family (the only one whose
//! spec state is a counter, not a bit) emits exactly one
//! reference/dereference bracket per driver. The abstraction cannot
//! carry a predicate forward across the arithmetic store
//! `refs = refs + 1` (no cube implies the weakest precondition of an
//! increment), so nested or repeated brackets are semantically safe but
//! unprovable — the generator sticks to the shapes the tool can close.
//! Re-measured when the AllSAT enumeration engine landed: both cube
//! engines give up identically on nested and sequential two-bracket
//! drivers ("refinement produced no new predicates" at iteration 2,
//! with or without the cube-length bound), because the blocker is
//! Newton's refinement — it never proposes a predicate that survives
//! the second increment — not the cube engines, which are
//! output-identical by construction. See `EXPERIMENTS.md`.

#![warn(missing_docs)]

use testutil::Rng;

/// Spec-family names this generator can emit drivers for, in registry
/// order. Matches `slam::SpecRegistry::builtin()`.
pub const FAMILIES: &[&str] = &[
    "lock", "irql", "irp", "dfree", "uaclose", "refcount", "apiorder",
];

/// Generator shape knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenParams {
    /// Top-level construct budget after the mandatory first bracket.
    pub statements: usize,
    /// Maximum nesting depth of state-preserving `if` blocks.
    pub depth: usize,
    /// Flag-guarded brackets to allow (each adds a predicate the
    /// refinement loop must discover).
    pub pressure: usize,
    /// Emit pointer noise (`sp = &scratch; *sp = *sp + 1;`).
    pub pointers: bool,
    /// Emit counted loops.
    pub loops: bool,
    /// Counter shape: guarded brackets test arithmetic over fresh count
    /// parameters (`nK > 0`) instead of flags, and loops run the bounded
    /// ascending form `iK = 0; while (iK < nK) { …; iK = iK + 1; }` with
    /// spec events under (invariantly true) arithmetic guards on the
    /// live counter. Every guard still tests a fresh parameter or a
    /// loop-invariant fact, so ground truth stays exact; the shape
    /// exists to give the interval/constant numeric oracle a corpus
    /// family whose cube queries are pure integer arithmetic.
    pub counter: bool,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            statements: 6,
            depth: 2,
            pressure: 1,
            pointers: false,
            loops: true,
            counter: false,
        }
    }
}

/// A deterministic parameter ladder for matrix runs: driver index `i`
/// maps to a fixed shape, cycling through sizes, depths, pressure
/// levels, pointer use, and loops.
pub fn params_for_index(i: usize) -> GenParams {
    GenParams {
        statements: 3 + (i % 5) * 2,
        depth: 1 + (i % 3),
        pressure: i % 3,
        pointers: i % 2 == 1,
        loops: i % 4 != 3,
        counter: false,
    }
}

/// The kind of protocol violation a defective driver contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefectKind {
    /// The opening event repeated while its bit is already set
    /// (double acquire, double raise, double complete).
    DoubleOpen,
    /// The closing event issued while the bit is clear (release without
    /// acquire, double free, dereference at zero).
    CloseAtZero,
    /// A use event issued while the bit is clear (read after close,
    /// check before complete, submit before start).
    UseAtZero,
    /// The opening event issued before the family's mandatory prelude
    /// (start before init).
    OpenBeforePrelude,
}

impl DefectKind {
    /// A stable slug for reports and file names.
    pub fn as_str(self) -> &'static str {
        match self {
            DefectKind::DoubleOpen => "double-open",
            DefectKind::CloseAtZero => "close-at-zero",
            DefectKind::UseAtZero => "use-at-zero",
            DefectKind::OpenBeforePrelude => "open-before-prelude",
        }
    }

    /// The inverse of [`as_str`](DefectKind::as_str).
    pub fn from_slug(s: &str) -> Option<DefectKind> {
        Some(match s {
            "double-open" => DefectKind::DoubleOpen,
            "close-at-zero" => DefectKind::CloseAtZero,
            "use-at-zero" => DefectKind::UseAtZero,
            "open-before-prelude" => DefectKind::OpenBeforePrelude,
            _ => return None,
        })
    }
}

/// The generator's verdict oracle for one driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundTruth {
    /// Every path respects the protocol: SLAM must validate.
    Safe,
    /// One reachable violating call: SLAM must find an error.
    Defect {
        /// What was spliced in.
        kind: DefectKind,
        /// 1-based line of the `/* DEFECT */` marker in `source`.
        line: usize,
    },
}

/// One generated driver.
#[derive(Debug, Clone)]
pub struct Driver {
    /// Stable name: `<family>[_counter]_s<seed>_<safe|defect-slug>`.
    pub name: String,
    /// Spec-registry family this driver exercises.
    pub family: &'static str,
    /// Entry function for `slam::verify`.
    pub entry: &'static str,
    /// The seed it was generated from.
    pub seed: u64,
    /// The shape knobs it was generated with.
    pub params: GenParams,
    /// Complete C source (event stubs + entry function).
    pub source: String,
    /// The verdict SLAM must reach.
    pub truth: GroundTruth,
}

/// The protocol skeleton behind one spec family: which event opens the
/// tracked bit, which closes it, which merely require it, and what the
/// spec punishes.
struct Protocol {
    family: &'static str,
    entry: &'static str,
    /// Event that must run once before `open` is legal (apiorder).
    prelude: Option<&'static str>,
    open: &'static str,
    /// `None` for one-shot protocols (irp: a request is completed once
    /// and never un-completed).
    close: Option<&'static str>,
    /// Events legal only while the bit is set.
    uses: &'static [&'static str],
    /// Whether `open` aborts when the bit is already set.
    reopen_aborts: bool,
    /// At most one bracket per driver (irp: no close; refcount: the
    /// abstraction cannot track repeated counter increments).
    single_bracket: bool,
}

const PROTOCOLS: &[Protocol] = &[
    Protocol {
        family: "lock",
        entry: "DispatchLock",
        prelude: None,
        open: "KeAcquireSpinLock",
        close: Some("KeReleaseSpinLock"),
        uses: &[],
        reopen_aborts: true,
        single_bracket: false,
    },
    Protocol {
        family: "irql",
        entry: "DispatchIrql",
        prelude: None,
        open: "KeRaiseIrql",
        close: Some("KeLowerIrql"),
        uses: &[],
        reopen_aborts: true,
        single_bracket: false,
    },
    Protocol {
        family: "irp",
        entry: "DispatchIrp",
        prelude: None,
        open: "IoCompleteRequest",
        close: None,
        uses: &["IoCheckCompleted"],
        reopen_aborts: true,
        single_bracket: true,
    },
    Protocol {
        family: "dfree",
        entry: "DispatchPool",
        prelude: None,
        open: "ExAllocatePool",
        close: Some("ExFreePool"),
        uses: &[],
        reopen_aborts: false,
        single_bracket: false,
    },
    Protocol {
        family: "uaclose",
        entry: "DispatchFile",
        prelude: None,
        open: "ZwOpenFile",
        close: Some("ZwClose"),
        uses: &["ZwReadFile"],
        reopen_aborts: false,
        single_bracket: false,
    },
    Protocol {
        family: "refcount",
        entry: "DispatchObject",
        prelude: None,
        open: "ObReferenceObject",
        close: Some("ObDereferenceObject"),
        uses: &[],
        reopen_aborts: false,
        single_bracket: true,
    },
    Protocol {
        family: "apiorder",
        entry: "DispatchDevice",
        prelude: Some("IoInitDevice"),
        open: "IoStartDevice",
        close: Some("IoStopDevice"),
        uses: &["IoSubmitRequest"],
        reopen_aborts: false,
        single_bracket: false,
    },
];

fn protocol(family: &str) -> &'static Protocol {
    PROTOCOLS
        .iter()
        .find(|p| p.family == family)
        .unwrap_or_else(|| panic!("corpusgen: unknown spec family `{family}`"))
}

/// The defect kinds a family's spec can punish (what [`generate`] may
/// splice in when asked for a defective driver).
pub fn defect_kinds(family: &str) -> Vec<DefectKind> {
    let p = protocol(family);
    let mut kinds = Vec::new();
    if p.reopen_aborts {
        kinds.push(DefectKind::DoubleOpen);
    }
    if p.close.is_some() {
        kinds.push(DefectKind::CloseAtZero);
    }
    if !p.uses.is_empty() {
        kinds.push(DefectKind::UseAtZero);
    }
    if p.prelude.is_some() {
        kinds.push(DefectKind::OpenBeforePrelude);
    }
    kinds
}

/// The entry function name for a family's generated drivers.
pub fn entry_for(family: &str) -> &'static str {
    protocol(family).entry
}

/// Tracked-bit state at an emission point, as known on *all* paths
/// reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Zero,
    One,
    /// Path-dependent (between the halves of a flag-guarded bracket):
    /// no defect may be spliced here and no protocol call emitted.
    Cond,
}

/// An eligible defect-insertion site: a position in the body where the
/// tracked state is definite.
struct Point {
    idx: usize,
    state: St,
    after_prelude: bool,
    indent: usize,
}

struct Emitter {
    proto: &'static Protocol,
    params: GenParams,
    rng: Rng,
    lines: Vec<String>,
    points: Vec<Point>,
    flags: usize,
    count_params: usize,
    loop_vars: usize,
    uses_pointers: bool,
    state: St,
    after_prelude: bool,
    brackets: usize,
    guarded: usize,
}

impl Emitter {
    fn new(proto: &'static Protocol, params: GenParams, rng: Rng) -> Emitter {
        Emitter {
            proto,
            params,
            rng,
            lines: Vec::new(),
            points: Vec::new(),
            flags: 0,
            count_params: 0,
            loop_vars: 0,
            uses_pointers: false,
            state: St::Zero,
            after_prelude: proto.prelude.is_none(),
            brackets: 0,
            guarded: 0,
        }
    }

    fn push(&mut self, indent: usize, text: &str) {
        self.lines
            .push(format!("{:width$}{text}", "", width = indent * 4));
    }

    fn point(&mut self, indent: usize) {
        if self.state == St::Cond {
            return;
        }
        self.points.push(Point {
            idx: self.lines.len(),
            state: self.state,
            after_prelude: self.after_prelude,
            indent,
        });
    }

    fn fresh_flag(&mut self) -> String {
        let f = format!("b{}", self.flags);
        self.flags += 1;
        f
    }

    /// The guard condition for a correlated bracket: a fresh flag test
    /// (`bK > 0`), or in counter mode an arithmetic test of a fresh
    /// count parameter (`nK > 0`) — same feasibility (the parameter is
    /// unconstrained), but the predicate the refinement loop must
    /// discover is an integer comparison the numeric oracle can decide.
    fn fresh_guard(&mut self) -> String {
        if self.params.counter {
            let n = format!("n{}", self.count_params);
            self.count_params += 1;
            format!("{n} > 0")
        } else {
            format!("{} > 0", self.fresh_flag())
        }
    }

    /// A protocol-neutral statement. Never branches on computed values.
    fn work_stmt(&mut self, indent: usize, record: bool) {
        if record {
            self.point(indent);
        }
        match self.rng.index(4) {
            0 => self.push(indent, "t0 = t0 + 1;"),
            1 => self.push(indent, "t1 = t1 + t0;"),
            2 => self.push(indent, "t0 = t0 - 1;"),
            _ => {
                if self.params.pointers {
                    self.uses_pointers = true;
                    self.push(indent, "sp = &scratch;");
                    self.push(indent, "*sp = *sp + 1;");
                } else {
                    self.push(indent, "t1 = 0;");
                }
            }
        }
    }

    /// Work, possibly wrapped in a state-preserving guard nest
    /// (`if (bK > 0)`, or `if (nK > 0)` in counter mode).
    fn work_block(&mut self, indent: usize, depth: usize, record: bool) {
        if depth == 0 || self.rng.ratio(2, 3) {
            self.work_stmt(indent, record);
            return;
        }
        let guard = self.fresh_guard();
        if record {
            self.point(indent);
        }
        self.push(indent, &format!("if ({guard}) {{"));
        let n = 1 + self.rng.index(2);
        for _ in 0..n {
            self.work_block(indent + 1, depth - 1, record);
        }
        self.push(indent, "}");
    }

    fn use_call(&mut self, indent: usize) {
        let u = *self.rng.pick(self.proto.uses);
        self.push(indent, &format!("{u}();"));
    }

    /// Statements legal while the bit is set: work and use events.
    fn bracket_interior(&mut self, indent: usize, record: bool) {
        let n = 1 + self.rng.index(2);
        for _ in 0..n {
            if !self.proto.uses.is_empty() && self.rng.gen_bool() {
                if record {
                    self.point(indent);
                }
                self.use_call(indent);
            } else {
                self.work_stmt(indent, record);
            }
        }
    }

    /// `open(); ...; close();` (close omitted for one-shot protocols).
    fn plain_bracket(&mut self, indent: usize, record: bool) {
        self.brackets += 1;
        if record {
            self.point(indent);
        }
        self.push(indent, &format!("{}();", self.proto.open));
        self.state = St::One;
        self.bracket_interior(indent, record);
        if let Some(close) = self.proto.close {
            if record {
                self.point(indent);
            }
            self.push(indent, &format!("{close}();"));
            self.state = St::Zero;
        }
    }

    /// The classic correlated shape: open under a fresh flag, work,
    /// close under the same flag. Forces the CEGAR loop to discover the
    /// flag predicate. Between the halves the tracked state is
    /// path-dependent, so nothing is recorded there.
    fn guarded_bracket(&mut self, indent: usize) {
        self.brackets += 1;
        self.guarded += 1;
        let guard = self.fresh_guard();
        self.point(indent);
        self.push(indent, &format!("if ({guard}) {{"));
        self.push(indent + 1, &format!("{}();", self.proto.open));
        self.state = St::One;
        self.bracket_interior(indent + 1, true);
        self.state = St::Cond;
        self.push(indent, "}");
        let n = 1 + self.rng.index(2);
        for _ in 0..n {
            self.work_block(indent, self.params.depth, false);
        }
        match self.proto.close {
            Some(close) => {
                self.push(indent, &format!("if ({guard}) {{"));
                // paths entering the guard hold the bit
                self.state = St::One;
                self.point(indent + 1);
                self.push(indent + 1, &format!("{close}();"));
                self.push(indent, "}");
                self.state = St::Zero;
            }
            None => {
                // one-shot protocol: optionally use under the same flag
                if !self.proto.uses.is_empty() && self.rng.gen_bool() {
                    self.push(indent, &format!("if ({guard}) {{"));
                    let u = *self.rng.pick(self.proto.uses);
                    self.push(indent + 1, &format!("{u}();"));
                    self.push(indent, "}");
                }
                self.state = St::Cond;
            }
        }
    }

    /// `iK = nK; while (iK > 0) { ...; iK = iK - 1; }` — body is
    /// state-preserving (work, or a full bracket for multi-bracket
    /// families). In counter mode the loop runs the bounded ascending
    /// form `iK = 0; while (iK < nK) { ...; iK = iK + 1; }` and any
    /// bracket sits under an arithmetic guard on the live counter that
    /// is invariantly true inside the body (`iK >= 0`): the bracket is
    /// balanced, so the tracked state is preserved whether or not the
    /// abstraction can see through the guard.
    fn loop_item(&mut self, indent: usize) {
        let n = format!("n{}", self.count_params);
        self.count_params += 1;
        let i = format!("i{}", self.loop_vars);
        self.loop_vars += 1;
        let record = self.state != St::Cond;
        let wants_bracket = |e: &mut Emitter| {
            e.state == St::Zero
                && !e.proto.single_bracket
                && e.proto.close.is_some()
                && e.rng.gen_bool()
        };
        if self.params.counter {
            self.push(indent, &format!("{i} = 0;"));
            self.push(indent, &format!("while ({i} < {n}) {{"));
            self.work_block(indent + 1, self.params.depth.saturating_sub(1), record);
            if wants_bracket(self) {
                self.push(indent + 1, &format!("if ({i} >= 0) {{"));
                self.plain_bracket(indent + 2, record);
                self.push(indent + 1, "}");
            }
            self.push(indent + 1, &format!("{i} = {i} + 1;"));
        } else {
            self.push(indent, &format!("{i} = {n};"));
            self.push(indent, &format!("while ({i} > 0) {{"));
            self.work_block(indent + 1, self.params.depth.saturating_sub(1), record);
            if wants_bracket(self) {
                self.plain_bracket(indent + 1, record);
            }
            self.push(indent + 1, &format!("{i} = {i} - 1;"));
        }
        self.push(indent, "}");
    }

    fn top_item(&mut self, indent: usize) {
        let single_spent = self.proto.single_bracket && self.brackets > 0;
        let can_bracket = self.state == St::Zero && !single_spent;
        let can_guarded = can_bracket && self.guarded < self.params.pressure;
        let can_use = self.state == St::One && !self.proto.uses.is_empty();
        let record = self.state != St::Cond;
        let mut choices: Vec<u8> = vec![0, 0];
        if self.params.loops {
            choices.push(1);
        }
        if can_bracket {
            choices.push(2);
        }
        if can_guarded {
            choices.push(3);
        }
        if can_use {
            choices.push(4);
        }
        match *self.rng.pick(&choices) {
            0 => self.work_block(indent, self.params.depth, record),
            1 => self.loop_item(indent),
            2 => self.plain_bracket(indent, true),
            3 => self.guarded_bracket(indent),
            _ => {
                self.point(indent);
                self.use_call(indent);
            }
        }
    }

    fn build(&mut self) {
        let ind = 1;
        // a definite Zero site at function start (before any prelude)
        self.work_stmt(ind, true);
        if let Some(pre) = self.proto.prelude {
            self.point(ind);
            self.push(ind, &format!("{pre}();"));
            self.after_prelude = true;
        }
        // mandatory first bracket: every driver exercises its protocol,
        // and every defect kind has an eligible site
        if self.params.pressure > 0 && self.rng.gen_bool() {
            self.guarded_bracket(ind);
        } else {
            self.plain_bracket(ind, true);
        }
        for _ in 0..self.params.statements {
            self.top_item(ind);
        }
    }

    fn eligible(&self, p: &Point, kind: DefectKind) -> bool {
        // keep defects at most one branch deep: counterexample
        // extraction enumerates low-weight choice deviations, and a
        // defect buried under many fresh-flag branches would need one
        // `true` choice per enclosing branch to reach
        if p.indent > 2 {
            return false;
        }
        match kind {
            DefectKind::DoubleOpen => p.state == St::One,
            DefectKind::CloseAtZero => p.state == St::Zero,
            DefectKind::UseAtZero => p.state == St::Zero && p.after_prelude,
            DefectKind::OpenBeforePrelude => !p.after_prelude,
        }
    }

    /// Splices one violating call into the recorded body. The chosen
    /// site aborts on first arrival, so reachability (guaranteed by
    /// fresh-parameter branching) is the whole ground truth.
    fn inject(&mut self) -> DefectKind {
        let kinds: Vec<DefectKind> = defect_kinds(self.proto.family)
            .into_iter()
            .filter(|k| self.points.iter().any(|p| self.eligible(p, *k)))
            .collect();
        assert!(
            !kinds.is_empty(),
            "corpusgen: no eligible defect site in `{}` driver",
            self.proto.family
        );
        let kind = *self.rng.pick(&kinds);
        let sites: Vec<usize> = (0..self.points.len())
            .filter(|&i| self.eligible(&self.points[i], kind))
            .collect();
        let site = &self.points[*self.rng.pick(&sites)];
        let call = match kind {
            DefectKind::DoubleOpen | DefectKind::OpenBeforePrelude => self.proto.open,
            DefectKind::CloseAtZero => self.proto.close.expect("close-at-zero needs a close"),
            DefectKind::UseAtZero => self.rng.pick(self.proto.uses),
        };
        let text = format!(
            "{:width$}{call}(); /* DEFECT: {} */",
            "",
            kind.as_str(),
            width = site.indent * 4
        );
        self.lines.insert(site.idx, text);
        kind
    }
}

/// Generates one driver for `family` from `seed`. With `want_defect`
/// the safe body gets one violating call spliced in (same seed ⇒ same
/// body as the safe variant).
pub fn generate(family: &str, params: &GenParams, seed: u64, want_defect: bool) -> Driver {
    let proto = protocol(family);
    let mut e = Emitter::new(proto, *params, Rng::new(seed));
    e.build();
    let kind = want_defect.then(|| e.inject());

    let mut events: Vec<&str> = Vec::new();
    if let Some(pre) = proto.prelude {
        events.push(pre);
    }
    events.push(proto.open);
    if let Some(close) = proto.close {
        events.push(close);
    }
    events.extend(proto.uses);

    let suffix = kind.map_or("safe", |k| k.as_str());
    let shape = if params.counter { "_counter" } else { "" };
    let name = format!("{family}{shape}_s{seed}_{suffix}");

    let mut src = String::new();
    src.push_str(&format!(
        "// corpusgen: family={family} seed={seed} statements={} depth={} pressure={} \
         pointers={} loops={} counter={} truth={suffix}\n",
        params.statements,
        params.depth,
        params.pressure,
        params.pointers,
        params.loops,
        params.counter
    ));
    for ev in &events {
        src.push_str(&format!("void {ev}(void) {{ ; }}\n"));
    }
    src.push('\n');
    let args: Vec<String> = (0..e.flags)
        .map(|k| format!("int b{k}"))
        .chain((0..e.count_params).map(|k| format!("int n{k}")))
        .collect();
    let sig = if args.is_empty() {
        "void".to_string()
    } else {
        args.join(", ")
    };
    src.push_str(&format!("void {}({sig}) {{\n", proto.entry));
    src.push_str("    int t0;\n    int t1;\n");
    for k in 0..e.loop_vars {
        src.push_str(&format!("    int i{k};\n"));
    }
    if e.uses_pointers {
        src.push_str("    int scratch;\n    int *sp;\n");
    }
    src.push_str("    t0 = 0;\n    t1 = 0;\n");
    if e.uses_pointers {
        src.push_str("    scratch = 0;\n");
    }
    for line in &e.lines {
        src.push_str(line);
        src.push('\n');
    }
    src.push_str("}\n");

    let truth = match kind {
        None => GroundTruth::Safe,
        Some(kind) => {
            let line = src
                .lines()
                .position(|l| l.contains("/* DEFECT:"))
                .expect("defect marker present")
                + 1;
            GroundTruth::Defect { kind, line }
        }
    };

    Driver {
        name,
        family: proto.family,
        entry: proto.entry,
        seed,
        params: *params,
        source: src,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_bytes() {
        for &family in FAMILIES {
            for seed in [0u64, 1, 7, 1234] {
                for want_defect in [false, true] {
                    let p = GenParams::default();
                    let a = generate(family, &p, seed, want_defect);
                    let b = generate(family, &p, seed, want_defect);
                    assert_eq!(a.source, b.source, "{family} seed {seed}");
                    assert_eq!(a.truth, b.truth, "{family} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn determinism_holds_across_random_params() {
        testutil::run_cases(
            "corpusgen-deterministic",
            40,
            |rng| {
                let params = GenParams {
                    statements: rng.gen_range(1, 12) as usize,
                    depth: rng.gen_range(0, 4) as usize,
                    pressure: rng.gen_range(0, 3) as usize,
                    pointers: rng.gen_bool(),
                    loops: rng.gen_bool(),
                    counter: rng.gen_bool(),
                };
                let family = *rng.pick(FAMILIES);
                let seed = rng.next_u64();
                let defect = rng.gen_bool();
                (family, params, seed, defect)
            },
            |&(family, params, seed, defect)| {
                let a = generate(family, &params, seed, defect);
                let b = generate(family, &params, seed, defect);
                assert_eq!(a.source, b.source);
            },
        );
    }

    #[test]
    fn seed_sweep_produces_distinct_sources() {
        for &family in FAMILIES {
            let mut hashes = HashSet::new();
            for seed in 0..100u64 {
                let d = generate(family, &GenParams::default(), seed, false);
                hashes.insert(d.source);
            }
            assert!(
                hashes.len() >= 95,
                "{family}: only {} distinct sources in a 100-seed sweep",
                hashes.len()
            );
        }
    }

    #[test]
    fn defect_variant_shares_the_safe_body() {
        for &family in FAMILIES {
            let p = GenParams::default();
            let safe = generate(family, &p, 42, false);
            let bad = generate(family, &p, 42, true);
            let marker_gone: Vec<&str> = bad
                .source
                .lines()
                .filter(|l| !l.contains("/* DEFECT:"))
                .collect();
            let safe_body: Vec<&str> = safe
                .source
                .lines()
                .filter(|l| !l.starts_with("// corpusgen:"))
                .collect();
            let bad_body: Vec<&str> = marker_gone
                .iter()
                .copied()
                .filter(|l| !l.starts_with("// corpusgen:"))
                .collect();
            assert_eq!(
                safe_body, bad_body,
                "{family}: defect must be a pure splice"
            );
        }
    }

    #[test]
    fn defect_marker_line_is_exact() {
        for &family in FAMILIES {
            for seed in 0..20u64 {
                let d = generate(family, &GenParams::default(), seed, true);
                let GroundTruth::Defect { kind, line } = d.truth else {
                    panic!("{family}: expected a defect");
                };
                let text = d.source.lines().nth(line - 1).unwrap();
                assert!(
                    text.contains(&format!("/* DEFECT: {} */", kind.as_str())),
                    "{family} seed {seed}: line {line} is `{text}`"
                );
                assert!(defect_kinds(family).contains(&kind));
            }
        }
    }

    #[test]
    fn refcount_emits_one_bracket_only() {
        for seed in 0..50u64 {
            let p = GenParams {
                statements: 10,
                pressure: 2,
                ..GenParams::default()
            };
            let d = generate("refcount", &p, seed, false);
            let refs = d
                .source
                .lines()
                .filter(|l| l.trim() == "ObReferenceObject();")
                .count();
            assert_eq!(refs, 1, "seed {seed}:\n{}", d.source);
        }
    }

    /// The counter-shape params used by the checked-in corpus sample
    /// and the `slice_ab` bench.
    fn counter_params() -> GenParams {
        GenParams {
            statements: 5,
            depth: 2,
            pressure: 2,
            pointers: false,
            loops: true,
            counter: true,
        }
    }

    #[test]
    fn counter_shape_emits_ascending_loops_and_arithmetic_guards() {
        let mut saw_loop = false;
        let mut saw_guard = false;
        for seed in 0..20u64 {
            let d = generate("lock", &counter_params(), seed, false);
            assert!(d.name.starts_with("lock_counter_s"), "{}", d.name);
            assert!(
                !d.source.contains("int b"),
                "counter shape must not fall back to flag guards:\n{}",
                d.source
            );
            saw_loop |= d.source.contains("while (i0 < n");
            saw_guard |= d.source.contains("if (n0 > 0)");
            // descending loops belong to the straight shape only
            for line in d.source.lines() {
                assert!(!line.trim_start().starts_with("i0 = n"), "{}", d.source);
            }
        }
        assert!(saw_loop, "no ascending bounded loop in 20 seeds");
        assert!(saw_guard, "no arithmetic bracket guard in 20 seeds");
    }

    #[test]
    fn counter_shape_is_deterministic_and_splices_defects() {
        for &family in FAMILIES {
            let p = counter_params();
            let a = generate(family, &p, 3, true);
            let b = generate(family, &p, 3, true);
            assert_eq!(a.source, b.source, "{family}");
            let GroundTruth::Defect { kind, line } = a.truth else {
                panic!("{family}: expected a defect");
            };
            let text = a.source.lines().nth(line - 1).unwrap();
            assert!(
                text.contains(&format!("/* DEFECT: {} */", kind.as_str())),
                "{family}: line {line} is `{text}`"
            );
        }
    }

    #[test]
    fn params_ladder_is_stable() {
        let p0 = params_for_index(0);
        assert_eq!(p0.statements, 3);
        assert_eq!(p0.depth, 1);
        assert_eq!(p0.pressure, 0);
        assert!(!p0.pointers);
        assert!(p0.loops);
        // the ladder cycles — index 60 repeats index 0
        assert_eq!(params_for_index(60), p0);
    }

    #[test]
    #[should_panic(expected = "unknown spec family")]
    fn unknown_family_panics() {
        generate("nosuch", &GenParams::default(), 0, false);
    }
}
