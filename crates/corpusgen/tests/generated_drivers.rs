//! Generated drivers are real inputs: they parse, instrument, and — on
//! a small sample — verify to exactly their ground-truth verdict. The
//! full-scale check lives in the bench matrix runner; this is the fast
//! per-crate gate.

use corpusgen::{generate, GenParams, GroundTruth, FAMILIES};
use slam::{SlamOptions, SlamVerdict, SpecRegistry};

#[test]
fn every_family_parses_across_a_seed_sweep() {
    for &family in FAMILIES {
        for seed in 0..12u64 {
            let params = corpusgen::params_for_index(seed as usize);
            for want_defect in [false, true] {
                let d = generate(family, &params, seed, want_defect);
                let program = cparse::parse_program(&d.source)
                    .unwrap_or_else(|e| panic!("{}: parse error {e}\n{}", d.name, d.source));
                cparse::check_program(&program)
                    .unwrap_or_else(|e| panic!("{}: check error {e}\n{}", d.name, d.source));
            }
        }
    }
}

#[test]
fn sample_drivers_verify_to_ground_truth() {
    let registry = SpecRegistry::builtin();
    let options = SlamOptions {
        lint: true,
        ..SlamOptions::default()
    };
    for &family in FAMILIES {
        let spec = registry.get(family).expect("family registered").spec();
        for seed in [3u64, 11] {
            let params = corpusgen::params_for_index(seed as usize);
            for want_defect in [false, true] {
                let d = generate(family, &params, seed, want_defect);
                let run = slam::verify(&d.source, &spec, d.entry, &options)
                    .unwrap_or_else(|e| panic!("{}: slam error {e}\n{}", d.name, d.source));
                match (&d.truth, &run.verdict) {
                    (GroundTruth::Safe, SlamVerdict::Validated) => {}
                    (GroundTruth::Defect { .. }, SlamVerdict::ErrorFound { .. }) => {}
                    (truth, verdict) => panic!(
                        "{}: ground truth {truth:?} but verdict {verdict:?}\n{}",
                        d.name, d.source
                    ),
                }
            }
        }
    }
}

#[test]
fn counter_shape_verifies_to_ground_truth() {
    // the interval-oracle workload: bounded ascending loops and
    // arithmetic bracket guards must not cost the generator its exact
    // ground truth
    let params = GenParams {
        statements: 5,
        depth: 2,
        pressure: 2,
        pointers: false,
        loops: true,
        counter: true,
    };
    let registry = SpecRegistry::builtin();
    let mut options = SlamOptions {
        lint: true,
        ..SlamOptions::default()
    };
    // counter drivers end in the same nondeterministic loop tails as the
    // matrix workload; hand over to the low-weight fallback quickly
    options.trace_runs = 2_000;
    for &family in FAMILIES {
        let spec = registry.get(family).expect("family registered").spec();
        for seed in [0u64, 7] {
            for want_defect in [false, true] {
                let d = generate(family, &params, seed, want_defect);
                let run = slam::verify(&d.source, &spec, d.entry, &options)
                    .unwrap_or_else(|e| panic!("{}: slam error {e}\n{}", d.name, d.source));
                match (&d.truth, &run.verdict) {
                    (GroundTruth::Safe, SlamVerdict::Validated) => {}
                    (GroundTruth::Defect { .. }, SlamVerdict::ErrorFound { .. }) => {}
                    (truth, verdict) => panic!(
                        "{}: ground truth {truth:?} but verdict {verdict:?}\n{}",
                        d.name, d.source
                    ),
                }
            }
        }
    }
}

#[test]
fn pointer_noise_does_not_break_verification() {
    let params = GenParams {
        statements: 6,
        depth: 2,
        pressure: 1,
        pointers: true,
        loops: true,
        counter: false,
    };
    let spec = SpecRegistry::builtin().get("lock").unwrap().spec();
    for seed in 0..3u64 {
        let d = generate("lock", &params, seed, false);
        let run = slam::verify(&d.source, &spec, d.entry, &SlamOptions::default())
            .unwrap_or_else(|e| panic!("{}: slam error {e}\n{}", d.name, d.source));
        assert_eq!(
            run.verdict,
            SlamVerdict::Validated,
            "{}:\n{}",
            d.name,
            d.source
        );
    }
}
