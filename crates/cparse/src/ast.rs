//! Abstract syntax for the C subset analyzed by the SLAM toolkit.
//!
//! The language covers everything the paper exercises: integers, named
//! structs, pointers, (logically modeled) arrays, procedures with
//! call-by-value parameters, `if`/`while`/`goto` control flow, and the
//! statement forms of the paper's intermediate representation.
//!
//! Expressions are *pure*: assignment is a statement, there are no `++`
//! operators, and after [simplification](crate::simplify) function calls
//! appear only at statement level and no expression contains more than one
//! pointer dereference on any access path.

use std::fmt;

/// A source position (1-based line and column) used in diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pos {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Types of the C subset.
///
/// Arrays and pointers follow the paper's *logical model of memory*:
/// `p + i` yields a pointer to the same object as `p`, and `a[i]` denotes
/// the logical element `i` of array object `a`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The `void` type (function returns only).
    Void,
    /// The `int` type. All integral types of the subset collapse to `int`.
    Int,
    /// A named struct type, e.g. `struct cell`.
    Struct(String),
    /// A pointer type `T*`.
    Ptr(Box<Type>),
    /// An array type `T[n]`; `n` is `None` for unsized array parameters.
    Array(Box<Type>, Option<usize>),
}

impl Type {
    /// Returns the pointee type if `self` is a pointer (or decayed array).
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// True if the type is a pointer or array (pointer-like for aliasing).
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(_, _))
    }

    /// A pointer to `self`.
    pub fn ptr_to(&self) -> Type {
        Type::Ptr(Box::new(self.clone()))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Struct(name) => write!(f, "struct {name}"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, Some(n)) => write!(f, "{t}[{n}]"),
            Type::Array(t, None) => write!(f, "{t}[]"),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
    /// Pointer dereference `*e`.
    Deref,
    /// Address-of `&e` (the operand must be an lvalue).
    AddrOf,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
        };
        write!(f, "{s}")
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` — pure conjunction (expressions have no side effects).
    And,
    /// `||` — pure disjunction.
    Or,
}

impl BinOp {
    /// True for `<`, `<=`, `>`, `>=`, `==`, `!=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&` and `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// True for `+ - * / %`.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`), if any.
    pub fn flip(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            _ => return None,
        })
    }

    /// The logically negated comparison (`a < b` ⇔ `!(a >= b)`), if any.
    pub fn negate(self) -> Option<BinOp> {
        Some(match self {
            BinOp::Lt => BinOp::Ge,
            BinOp::Le => BinOp::Gt,
            BinOp::Gt => BinOp::Le,
            BinOp::Ge => BinOp::Lt,
            BinOp::Eq => BinOp::Ne,
            BinOp::Ne => BinOp::Eq,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        write!(f, "{s}")
    }
}

/// Pure expressions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    IntLit(i64),
    /// The null pointer constant `NULL` (also written `0` in pointer context).
    Null,
    /// A variable reference.
    Var(String),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A struct field access `e.f`; `e->f` parses as `(*e).f`.
    Field(Box<Expr>, String),
    /// An array element access `a[i]` (logical memory model).
    Index(Box<Expr>, Box<Expr>),
    /// A call `f(args)`. After simplification calls appear only at the
    /// top level of [`Stmt::Call`].
    Call(String, Vec<Expr>),
}

impl Expr {
    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `!self` with double negations collapsed and comparisons flipped.
    pub fn negated(&self) -> Expr {
        match self {
            Expr::Unary(UnOp::Not, inner) => (**inner).clone(),
            Expr::Binary(op, l, r) => match op.negate() {
                Some(neg) => Expr::Binary(neg, l.clone(), r.clone()),
                None => Expr::Unary(UnOp::Not, Box::new(self.clone())),
            },
            Expr::IntLit(v) => Expr::IntLit(i64::from(*v == 0)),
            _ => Expr::Unary(UnOp::Not, Box::new(self.clone())),
        }
    }

    /// Binary-operation helper.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary(op, Box::new(l), Box::new(r))
    }

    /// Unary-operation helper.
    pub fn un(op: UnOp, e: Expr) -> Expr {
        Expr::Unary(op, Box::new(e))
    }

    /// `*self`.
    pub fn deref(self) -> Expr {
        Expr::un(UnOp::Deref, self)
    }

    /// `&self`.
    pub fn addr_of(self) -> Expr {
        Expr::un(UnOp::AddrOf, self)
    }

    /// `self->field`, i.e. `(*self).field`.
    pub fn arrow(self, field: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self.deref()), field.into())
    }

    /// `self.field`.
    pub fn field(self, field: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self), field.into())
    }

    /// True if this expression is an lvalue form (variable, dereference,
    /// field access, or array element).
    pub fn is_lvalue(&self) -> bool {
        match self {
            Expr::Var(_) => true,
            Expr::Unary(UnOp::Deref, _) => true,
            Expr::Field(base, _) => base.is_lvalue(),
            Expr::Index(base, _) => base.is_lvalue(),
            _ => false,
        }
    }

    /// True if the expression contains a function call.
    pub fn has_call(&self) -> bool {
        match self {
            Expr::Call(_, _) => true,
            Expr::IntLit(_) | Expr::Null | Expr::Var(_) => false,
            Expr::Unary(_, e) => e.has_call(),
            Expr::Binary(_, l, r) => l.has_call() || r.has_call(),
            Expr::Field(e, _) => e.has_call(),
            Expr::Index(a, i) => a.has_call() || i.has_call(),
        }
    }

    /// The maximum number of dereferences stacked along any access path.
    ///
    /// `x` has depth 0, `*p` and `p->f` have depth 1, `**p` and
    /// `p->next->val` have depth 2. The paper's intermediate form requires
    /// depth at most 1 on every access path.
    pub fn deref_depth(&self) -> u32 {
        match self {
            Expr::IntLit(_) | Expr::Null | Expr::Var(_) => 0,
            Expr::Unary(UnOp::Deref, e) => e.deref_depth() + 1,
            Expr::Unary(UnOp::AddrOf, e) => e.deref_depth().saturating_sub(1),
            Expr::Unary(_, e) => e.deref_depth(),
            Expr::Binary(_, l, r) => l.deref_depth().max(r.deref_depth()),
            Expr::Field(e, _) => e.deref_depth(),
            Expr::Index(a, i) => (a.deref_depth() + 1).max(i.deref_depth()),
            Expr::Call(_, args) => args.iter().map(Expr::deref_depth).max().unwrap_or(0),
        }
    }

    /// Visits every sub-expression (including `self`), outermost first.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Expr)) {
        visit(self);
        match self {
            Expr::IntLit(_) | Expr::Null | Expr::Var(_) => {}
            Expr::Unary(_, e) => e.walk(visit),
            Expr::Binary(_, l, r) => {
                l.walk(visit);
                r.walk(visit);
            }
            Expr::Field(e, _) => e.walk(visit),
            Expr::Index(a, i) => {
                a.walk(visit);
                i.walk(visit);
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.walk(visit);
                }
            }
        }
    }

    /// The set of variable names referenced anywhere in the expression
    /// (the paper's `vars(e)`), in first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Var(name) = e {
                if !out.iter().any(|v| v == name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// The set of variable names *dereferenced* in the expression (the
    /// paper's `drfs(e)`): variables appearing under a `*`, `->`, or `[]`.
    pub fn derefd_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            let base = match e {
                Expr::Unary(UnOp::Deref, b) => Some(b),
                Expr::Index(b, _) => Some(b),
                _ => None,
            };
            if let Some(b) = base {
                for v in b.vars() {
                    if !out.iter().any(|x| x == &v) {
                        out.push(v);
                    }
                }
            }
        });
        out
    }

    /// Replaces every occurrence of expression `from` with `to`
    /// (syntactic substitution; `from` is matched structurally).
    pub fn subst_expr(&self, from: &Expr, to: &Expr) -> Expr {
        if self == from {
            return to.clone();
        }
        match self {
            Expr::IntLit(_) | Expr::Null | Expr::Var(_) => self.clone(),
            Expr::Unary(op, e) => Expr::Unary(*op, Box::new(e.subst_expr(from, to))),
            Expr::Binary(op, l, r) => Expr::Binary(
                *op,
                Box::new(l.subst_expr(from, to)),
                Box::new(r.subst_expr(from, to)),
            ),
            Expr::Field(e, f) => Expr::Field(Box::new(e.subst_expr(from, to)), f.clone()),
            Expr::Index(a, i) => Expr::Index(
                Box::new(a.subst_expr(from, to)),
                Box::new(i.subst_expr(from, to)),
            ),
            Expr::Call(f, args) => Expr::Call(
                f.clone(),
                args.iter().map(|a| a.subst_expr(from, to)).collect(),
            ),
        }
    }

    /// Substitutes variable `name` by expression `to` (`self[to/name]`).
    pub fn subst_var(&self, name: &str, to: &Expr) -> Expr {
        self.subst_expr(&Expr::Var(name.to_string()), to)
    }
}

/// A unique identifier for a statement of the simplified program.
///
/// Statement identities survive the translation into a boolean program so
/// that Bebop counterexamples can be mapped back to C statements by Newton.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl StmtId {
    /// The id used for statements that have not been numbered yet.
    pub const UNASSIGNED: StmtId = StmtId(u32::MAX);
}

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// The empty statement `;`.
    Skip,
    /// An assignment `lhs = rhs;` where `lhs` is an lvalue.
    Assign {
        /// Unique id (assigned by [`crate::simplify`]).
        id: StmtId,
        /// Left-hand side lvalue.
        lhs: Expr,
        /// Right-hand side (pure, call-free after simplification).
        rhs: Expr,
    },
    /// A call statement `dst = f(args);` or `f(args);`.
    Call {
        /// Unique id (assigned by [`crate::simplify`]).
        id: StmtId,
        /// Optional destination lvalue.
        dst: Option<Expr>,
        /// Callee name.
        func: String,
        /// Actual arguments (pure, call-free after simplification).
        args: Vec<Expr>,
    },
    /// A statement sequence `{ s1 ... sn }`.
    Seq(Vec<Stmt>),
    /// `if (cond) then_branch else else_branch`.
    If {
        /// Unique id of the branch point.
        id: StmtId,
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_branch: Box<Stmt>,
        /// Else branch ([`Stmt::Skip`] if absent).
        else_branch: Box<Stmt>,
    },
    /// `while (cond) body`.
    While {
        /// Unique id of the loop head.
        id: StmtId,
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `goto label;`
    Goto(String),
    /// A label marker `label:` (attaches to the next statement in sequence).
    Label(String),
    /// `return;` or `return e;`
    Return {
        /// Unique id.
        id: StmtId,
        /// Returned value, if any.
        value: Option<Expr>,
    },
    /// `assert(e);` — reaching this with `e` false is the property violation.
    Assert {
        /// Unique id.
        id: StmtId,
        /// Asserted condition.
        cond: Expr,
    },
    /// `assume(e);` — executions where `e` is false are discarded
    /// (used by spec instrumentation; not ordinary C).
    Assume {
        /// Unique id.
        id: StmtId,
        /// Assumed condition.
        cond: Expr,
    },
    /// `break;` (eliminated by simplification).
    Break,
    /// `continue;` (eliminated by simplification).
    Continue,
}

impl Stmt {
    /// An assignment with an unassigned id.
    pub fn assign(lhs: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign {
            id: StmtId::UNASSIGNED,
            lhs,
            rhs,
        }
    }

    /// Visits every statement in the tree, outermost first.
    pub fn walk<'a>(&'a self, visit: &mut dyn FnMut(&'a Stmt)) {
        visit(self);
        match self {
            Stmt::Seq(stmts) => {
                for s in stmts {
                    s.walk(visit);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk(visit);
                else_branch.walk(visit);
            }
            Stmt::While { body, .. } => body.walk(visit),
            _ => {}
        }
    }

    /// The id of this statement, if it carries one.
    pub fn id(&self) -> Option<StmtId> {
        match self {
            Stmt::Assign { id, .. }
            | Stmt::Call { id, .. }
            | Stmt::If { id, .. }
            | Stmt::While { id, .. }
            | Stmt::Return { id, .. }
            | Stmt::Assert { id, .. }
            | Stmt::Assume { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct tag.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, Type)>,
}

impl StructDef {
    /// Looks up the type of a field.
    pub fn field_type(&self, field: &str) -> Option<&Type> {
        self.fields.iter().find(|(n, _)| n == field).map(|(_, t)| t)
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type.
    pub ty: Type,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Local variables (declarations are hoisted to function scope).
    pub locals: Vec<(String, Type)>,
    /// The function body.
    pub body: Stmt,
}

impl Function {
    /// Looks up the declared type of a parameter or local.
    pub fn var_type(&self, name: &str) -> Option<&Type> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.ty)
            .or_else(|| self.locals.iter().find(|(n, _)| n == name).map(|(_, t)| t))
    }
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions, in declaration order.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<(String, Type)>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Looks up a struct definition by tag.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Looks up the type of a global variable.
    pub fn global_type(&self, name: &str) -> Option<&Type> {
        self.globals.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// The number of non-blank source lines of the pretty-printed program,
    /// used for the "lines" column of the paper's tables.
    pub fn line_count(&self) -> usize {
        crate::pretty::program_to_string(self)
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers_build_expected_shapes() {
        let e = Expr::var("p").arrow("val");
        assert_eq!(
            e,
            Expr::Field(
                Box::new(Expr::Unary(UnOp::Deref, Box::new(Expr::Var("p".into())))),
                "val".into()
            )
        );
        assert!(e.is_lvalue());
        assert!(!Expr::int(3).is_lvalue());
    }

    #[test]
    fn deref_depth_counts_stacked_derefs() {
        let p = Expr::var("p");
        assert_eq!(p.deref_depth(), 0);
        assert_eq!(p.clone().deref().deref_depth(), 1);
        assert_eq!(p.clone().deref().deref().deref_depth(), 2);
        // p->next->val has depth 2
        let e = Expr::var("p").arrow("next").deref().field("val");
        assert_eq!(e.deref_depth(), 2);
        // &*p cancels
        assert_eq!(p.deref().addr_of().deref_depth(), 0);
    }

    #[test]
    fn vars_and_drfs() {
        // *q <= y
        let e = Expr::bin(BinOp::Le, Expr::var("q").deref(), Expr::var("y"));
        assert_eq!(e.vars(), vec!["q".to_string(), "y".to_string()]);
        assert_eq!(e.derefd_vars(), vec!["q".to_string()]);
    }

    #[test]
    fn negated_flips_comparisons() {
        let e = Expr::bin(BinOp::Lt, Expr::var("x"), Expr::int(5));
        assert_eq!(
            e.negated(),
            Expr::bin(BinOp::Ge, Expr::var("x"), Expr::int(5))
        );
        assert_eq!(e.negated().negated(), e);
        let n = Expr::un(UnOp::Not, Expr::var("b"));
        assert_eq!(n.negated(), Expr::var("b"));
    }

    #[test]
    fn subst_var_replaces_occurrences() {
        // (x + 1) < y  with x := z*2
        let e = Expr::bin(
            BinOp::Lt,
            Expr::bin(BinOp::Add, Expr::var("x"), Expr::int(1)),
            Expr::var("y"),
        );
        let to = Expr::bin(BinOp::Mul, Expr::var("z"), Expr::int(2));
        let got = e.subst_var("x", &to);
        assert_eq!(
            got,
            Expr::bin(
                BinOp::Lt,
                Expr::bin(BinOp::Add, to.clone(), Expr::int(1)),
                Expr::var("y"),
            )
        );
        // y untouched
        assert_eq!(e.subst_var("w", &to), e);
    }

    #[test]
    fn type_display() {
        let t = Type::Struct("cell".into()).ptr_to();
        assert_eq!(t.to_string(), "struct cell*");
        assert_eq!(
            Type::Array(Box::new(Type::Int), Some(4)).to_string(),
            "int[4]"
        );
    }
}
