//! Flat control-flow form of simplified functions.
//!
//! The structured intermediate form (see [`crate::simplify`]) is convenient
//! for the abstraction algorithm, which mirrors program structure, but the
//! concrete interpreter and Newton's symbolic path executor want a flat
//! instruction list with resolved jump targets. Both views share
//! [`StmtId`]s, so a trace through one can be replayed through the other.

use crate::ast::*;
use std::collections::HashMap;

/// A flat instruction. Indices refer to positions in
/// [`FlatFunction::instrs`].
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `lhs = rhs;`
    Assign {
        /// Originating statement.
        id: StmtId,
        /// Destination lvalue.
        lhs: Expr,
        /// Pure right-hand side.
        rhs: Expr,
    },
    /// `dst = func(args);` or `func(args);`
    Call {
        /// Originating statement.
        id: StmtId,
        /// Optional destination lvalue.
        dst: Option<Expr>,
        /// Callee.
        func: String,
        /// Pure actuals.
        args: Vec<Expr>,
    },
    /// Two-way branch on `cond`.
    Branch {
        /// Originating `if`/`while` statement.
        id: StmtId,
        /// Branch condition.
        cond: Expr,
        /// Target when `cond` is true.
        target_true: usize,
        /// Target when `cond` is false.
        target_false: usize,
    },
    /// Unconditional jump.
    Jump(usize),
    /// `assert(cond);`
    Assert {
        /// Originating statement.
        id: StmtId,
        /// Asserted condition.
        cond: Expr,
    },
    /// `assume(cond);`
    Assume {
        /// Originating statement.
        id: StmtId,
        /// Assumed condition.
        cond: Expr,
    },
    /// Function return; the value (if any) is the given variable.
    Return {
        /// Originating statement.
        id: StmtId,
        /// Name of the returned variable, if non-void.
        value: Option<String>,
    },
    /// No-op placeholder (labels, skips).
    Nop,
}

impl Instr {
    /// The originating statement id, if the instruction carries one.
    pub fn id(&self) -> Option<StmtId> {
        match self {
            Instr::Assign { id, .. }
            | Instr::Call { id, .. }
            | Instr::Branch { id, .. }
            | Instr::Assert { id, .. }
            | Instr::Assume { id, .. }
            | Instr::Return { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A function lowered to a flat instruction list.
#[derive(Debug, Clone)]
pub struct FlatFunction {
    /// Function name.
    pub name: String,
    /// The instructions; entry is index 0.
    pub instrs: Vec<Instr>,
    /// Label name to instruction index.
    pub labels: HashMap<String, usize>,
}

/// Errors produced while flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlattenError {
    /// Description, including the offending label for unresolved gotos.
    pub message: String,
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flatten error: {}", self.message)
    }
}

impl std::error::Error for FlattenError {}

/// Flattens a simplified function into a [`FlatFunction`].
///
/// # Errors
///
/// Returns [`FlattenError`] if a `goto` targets an undefined label or a
/// `break`/`continue` survived simplification.
pub fn flatten_function(f: &Function) -> Result<FlatFunction, FlattenError> {
    let mut fl = Flattener {
        instrs: Vec::new(),
        labels: HashMap::new(),
        pending_gotos: Vec::new(),
    };
    fl.stmt(&f.body)?;
    // implicit return for void functions that fall off the end
    fl.instrs.push(Instr::Return {
        id: StmtId::UNASSIGNED,
        value: None,
    });
    for (idx, label) in fl.pending_gotos {
        let target = *fl.labels.get(&label).ok_or_else(|| FlattenError {
            message: format!("undefined label `{label}` in `{}`", f.name),
        })?;
        if let Instr::Jump(t) = &mut fl.instrs[idx] {
            *t = target;
        }
    }
    Ok(FlatFunction {
        name: f.name.clone(),
        instrs: fl.instrs,
        labels: fl.labels,
    })
}

/// Flattens every function of a simplified program.
///
/// # Errors
///
/// Propagates the first [`FlattenError`].
pub fn flatten_program(p: &Program) -> Result<HashMap<String, FlatFunction>, FlattenError> {
    let mut out = HashMap::new();
    for f in &p.functions {
        out.insert(f.name.clone(), flatten_function(f)?);
    }
    Ok(out)
}

struct Flattener {
    instrs: Vec<Instr>,
    labels: HashMap<String, usize>,
    /// (index of placeholder Jump, label name)
    pending_gotos: Vec<(usize, String)>,
}

impl Flattener {
    fn here(&self) -> usize {
        self.instrs.len()
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), FlattenError> {
        match s {
            Stmt::Skip => {}
            Stmt::Label(l) => {
                self.labels.insert(l.clone(), self.here());
            }
            Stmt::Goto(l) => {
                let idx = self.here();
                self.instrs.push(Instr::Jump(usize::MAX));
                self.pending_gotos.push((idx, l.clone()));
            }
            Stmt::Assign { id, lhs, rhs } => self.instrs.push(Instr::Assign {
                id: *id,
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            }),
            Stmt::Call {
                id,
                dst,
                func,
                args,
            } => self.instrs.push(Instr::Call {
                id: *id,
                dst: dst.clone(),
                func: func.clone(),
                args: args.clone(),
            }),
            Stmt::Assert { id, cond } => self.instrs.push(Instr::Assert {
                id: *id,
                cond: cond.clone(),
            }),
            Stmt::Assume { id, cond } => self.instrs.push(Instr::Assume {
                id: *id,
                cond: cond.clone(),
            }),
            Stmt::Return { id, value } => {
                let value = match value {
                    Some(Expr::Var(v)) => Some(v.clone()),
                    None => None,
                    Some(other) => {
                        return Err(FlattenError {
                            message: format!(
                                "return of non-variable `{}` (run simplify first)",
                                crate::pretty::expr_to_string(other)
                            ),
                        })
                    }
                };
                self.instrs.push(Instr::Return { id: *id, value });
            }
            Stmt::Seq(stmts) => {
                for st in stmts {
                    self.stmt(st)?;
                }
            }
            Stmt::If {
                id,
                cond,
                then_branch,
                else_branch,
            } => {
                let branch_idx = self.here();
                self.instrs.push(Instr::Branch {
                    id: *id,
                    cond: cond.clone(),
                    target_true: 0,
                    target_false: 0,
                });
                let then_start = self.here();
                self.stmt(then_branch)?;
                let jump_idx = self.here();
                self.instrs.push(Instr::Jump(usize::MAX));
                let else_start = self.here();
                self.stmt(else_branch)?;
                let end = self.here();
                if let Instr::Branch {
                    target_true,
                    target_false,
                    ..
                } = &mut self.instrs[branch_idx]
                {
                    *target_true = then_start;
                    *target_false = else_start;
                }
                if let Instr::Jump(t) = &mut self.instrs[jump_idx] {
                    *t = end;
                }
            }
            Stmt::While { id, cond, body } => {
                let head = self.here();
                self.instrs.push(Instr::Branch {
                    id: *id,
                    cond: cond.clone(),
                    target_true: 0,
                    target_false: 0,
                });
                let body_start = self.here();
                self.stmt(body)?;
                self.instrs.push(Instr::Jump(head));
                let exit = self.here();
                if let Instr::Branch {
                    target_true,
                    target_false,
                    ..
                } = &mut self.instrs[head]
                {
                    *target_true = body_start;
                    *target_false = exit;
                }
            }
            Stmt::Break | Stmt::Continue => {
                return Err(FlattenError {
                    message: "break/continue must be eliminated by simplify".into(),
                })
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::simplify::simplify_program;

    fn flat(src: &str, name: &str) -> FlatFunction {
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p).unwrap();
        flatten_function(s.function(name).unwrap()).unwrap()
    }

    #[test]
    fn flattens_straight_line() {
        let f = flat("int f(int x) { x = 1; x = 2; return x; }", "f");
        let assigns = f
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Assign { .. }))
            .count();
        // x=1, x=2 (the trailing `return x` keeps x as the return variable)
        assert_eq!(assigns, 2);
        assert!(matches!(f.instrs.last(), Some(Instr::Return { .. })));
    }

    #[test]
    fn branch_targets_resolve() {
        let f = flat(
            "int f(int x) { if (x > 0) { x = 1; } else { x = 2; } return x; }",
            "f",
        );
        let (tt, tf) = f
            .instrs
            .iter()
            .find_map(|i| match i {
                Instr::Branch {
                    target_true,
                    target_false,
                    ..
                } => Some((*target_true, *target_false)),
                _ => None,
            })
            .unwrap();
        assert!(tt < f.instrs.len() && tf < f.instrs.len());
        assert_ne!(tt, tf);
    }

    #[test]
    fn while_loops_back() {
        let f = flat("void f(int x) { while (x > 0) { x = x - 1; } }", "f");
        // some Jump targets the Branch index
        let branch_idx = f
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Branch { .. }))
            .unwrap();
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Jump(t) if *t == branch_idx)));
    }

    #[test]
    fn goto_resolves_to_label() {
        let f = flat(
            "void f(int x) { if (x > 0) goto done; x = 1; done: ; }",
            "f",
        );
        let done = f.labels["done"];
        assert!(f
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Jump(t) if *t == done)));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let p = parse_program("void f() { goto nowhere; }").unwrap();
        let s = simplify_program(&p).unwrap();
        assert!(flatten_function(s.function("f").unwrap()).is_err());
    }
}
