//! Concrete interpreter for simplified programs.
//!
//! The interpreter implements the paper's *logical model of memory*: every
//! variable, struct field, and array element is one logical cell, `p + i`
//! for pointer `p` yields `p` itself, and `malloc` allocates a fresh
//! logical object sized by the static type of its destination.
//!
//! It exists for three reasons:
//!
//! * the example binaries run the corpus programs on concrete inputs;
//! * the property-based *soundness* tests execute a C program concretely
//!   and check that the boolean program abstraction can replay the same
//!   path with consistent predicate valuations (the paper's §4.6 theorem);
//! * Newton's symbolic executor shares its path semantics.
//!
//! Per-step *watch expressions* (the predicates) are evaluated into the
//! recorded [`Trace`]; a watch that traps (e.g. dereferences `NULL`)
//! records [`None`], matching the abstraction's "unknown" value.

use crate::ast::*;
use crate::flow::{flatten_program, FlatFunction, Instr};
use crate::simplify::RET_VAR;
use crate::typeck::TypeEnv;
use std::collections::HashMap;
use std::fmt;

/// The address of a logical memory cell: object number and offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Object identifier.
    pub obj: u32,
    /// Cell offset within the object.
    pub off: u32,
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A pointer to a cell.
    Ptr(Addr),
    /// The null pointer.
    Null,
    /// An uninitialized cell (reading one is a trap).
    Uninit,
}

impl Value {
    /// C truthiness: nonzero integers and non-null pointers are true.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::UninitRead`] for uninitialized values.
    pub fn truthy(self) -> Result<bool, Trap> {
        match self {
            Value::Int(v) => Ok(v != 0),
            Value::Ptr(_) => Ok(true),
            Value::Null => Ok(false),
            Value::Uninit => Err(Trap::UninitRead),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Ptr(a) => write!(f, "<obj{}+{}>", a.obj, a.off),
            Value::Null => write!(f, "NULL"),
            Value::Uninit => write!(f, "<uninit>"),
        }
    }
}

/// Reasons execution can stop abnormally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// A `NULL` pointer was dereferenced.
    NullDeref,
    /// An uninitialized value was read.
    UninitRead,
    /// Division or remainder by zero.
    DivByZero,
    /// An array access fell outside its object.
    OutOfBounds,
    /// The step budget was exhausted (probable infinite loop).
    OutOfFuel,
    /// An `assert` failed at the given statement.
    AssertFailed(StmtId),
    /// An `assume` was violated at the given statement (execution is
    /// discarded, not erroneous).
    AssumeFailed(StmtId),
    /// A construct the interpreter does not model.
    Unsupported(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NullDeref => write!(f, "null pointer dereference"),
            Trap::UninitRead => write!(f, "read of uninitialized value"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::OutOfBounds => write!(f, "array access out of bounds"),
            Trap::OutOfFuel => write!(f, "step budget exhausted"),
            Trap::AssertFailed(id) => write!(f, "assertion failed at {id}"),
            Trap::AssumeFailed(id) => write!(f, "assume violated at {id}"),
            Trap::Unsupported(what) => write!(f, "unsupported: {what}"),
        }
    }
}

impl std::error::Error for Trap {}

/// One recorded execution step.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Function being executed.
    pub func: String,
    /// Instruction index within the function's flat body.
    pub pc: usize,
    /// Originating statement id, if any.
    pub id: Option<StmtId>,
    /// For branches, the direction taken.
    pub branch_taken: Option<bool>,
    /// Values of the function's watch expressions *before* the step;
    /// `None` when evaluation trapped (predicate undefined here).
    pub watches: Vec<Option<bool>>,
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The steps, in execution order.
    pub steps: Vec<TraceStep>,
}

/// The interpreter.
pub struct Interp {
    program: Program,
    env: TypeEnv,
    flats: HashMap<String, FlatFunction>,
    heap: Vec<Vec<Value>>,
    globals: HashMap<String, Addr>,
    /// Inputs consumed by the `nondet()` intrinsic.
    pub nondet_inputs: Vec<i64>,
    nondet_pos: usize,
    /// Remaining execution steps.
    pub fuel: u64,
    /// Per-function watch expressions, evaluated at every step.
    pub watches: HashMap<String, Vec<Expr>>,
    /// The recorded trace of the last `run`.
    pub trace: Trace,
}

struct Frame {
    func: String,
    pc: usize,
    locals: HashMap<String, Addr>,
    /// Pre-evaluated address receiving the return value, if any.
    ret_addr: Option<Addr>,
}

impl Interp {
    /// Creates an interpreter for a *simplified* program.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Unsupported`] if the program fails to flatten.
    pub fn new(program: &Program) -> Result<Interp, Trap> {
        let env = TypeEnv::new(program);
        let flats = flatten_program(program).map_err(|e| Trap::Unsupported(e.message))?;
        let mut interp = Interp {
            program: program.clone(),
            env,
            flats,
            heap: Vec::new(),
            globals: HashMap::new(),
            nondet_inputs: Vec::new(),
            nondet_pos: 0,
            fuel: 1_000_000,
            watches: HashMap::new(),
            trace: Trace::default(),
        };
        for (name, ty) in &interp.program.globals.clone() {
            let addr = interp.alloc(ty, true);
            interp.globals.insert(name.clone(), addr);
        }
        Ok(interp)
    }

    /// The number of cells occupied by a value of type `ty`.
    pub fn size_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Void | Type::Int | Type::Ptr(_) => 1,
            Type::Struct(name) => self
                .env
                .struct_def(name)
                .map(|sd| sd.fields.iter().map(|(_, t)| self.size_of(t)).sum())
                .unwrap_or(1),
            Type::Array(elem, n) => self.size_of(elem) * n.unwrap_or(1) as u32,
        }
    }

    /// The cell offset of `field` within `struct name`.
    fn field_offset(&self, name: &str, field: &str) -> Result<u32, Trap> {
        let sd = self
            .env
            .struct_def(name)
            .ok_or_else(|| Trap::Unsupported(format!("unknown struct {name}")))?;
        let mut off = 0;
        for (fname, fty) in &sd.fields {
            if fname == field {
                return Ok(off);
            }
            off += self.size_of(fty);
        }
        Err(Trap::Unsupported(format!("no field {field} in {name}")))
    }

    /// Allocates a fresh object of type `ty`; zero-initialized if `zero`.
    pub fn alloc(&mut self, ty: &Type, zero: bool) -> Addr {
        let size = self.size_of(ty).max(1);
        let init = if zero {
            match ty {
                Type::Ptr(_) => Value::Null,
                _ => Value::Int(0),
            }
        } else {
            Value::Uninit
        };
        // structs mix field kinds; zero-init per flattened scalar kind
        let mut cells = vec![init; size as usize];
        if zero {
            self.zero_init_cells(ty, &mut cells, 0);
        }
        let obj = self.heap.len() as u32;
        self.heap.push(cells);
        Addr { obj, off: 0 }
    }

    fn zero_init_cells(&self, ty: &Type, cells: &mut [Value], at: u32) {
        match ty {
            Type::Ptr(_) => cells[at as usize] = Value::Null,
            Type::Int | Type::Void => cells[at as usize] = Value::Int(0),
            Type::Struct(name) => {
                if let Some(sd) = self.env.struct_def(name) {
                    let fields = sd.fields.clone();
                    let mut off = at;
                    for (_, fty) in &fields {
                        self.zero_init_cells(fty, cells, off);
                        off += self.size_of(fty);
                    }
                }
            }
            Type::Array(elem, n) => {
                let mut off = at;
                for _ in 0..n.unwrap_or(1) {
                    self.zero_init_cells(elem, cells, off);
                    off += self.size_of(elem);
                }
            }
        }
    }

    /// Reads the cell at `addr`.
    pub fn load(&self, addr: Addr) -> Result<Value, Trap> {
        self.heap
            .get(addr.obj as usize)
            .and_then(|o| o.get(addr.off as usize))
            .copied()
            .ok_or(Trap::OutOfBounds)
    }

    /// Writes the cell at `addr`.
    pub fn store(&mut self, addr: Addr, v: Value) -> Result<(), Trap> {
        let cell = self
            .heap
            .get_mut(addr.obj as usize)
            .and_then(|o| o.get_mut(addr.off as usize))
            .ok_or(Trap::OutOfBounds)?;
        *cell = v;
        Ok(())
    }

    fn var_addr(&self, frame: &Frame, name: &str) -> Result<Addr, Trap> {
        frame
            .locals
            .get(name)
            .or_else(|| self.globals.get(name))
            .copied()
            .ok_or_else(|| Trap::Unsupported(format!("unknown variable {name}")))
    }

    fn func_of(&self, name: &str) -> Option<&Function> {
        self.program.function(name)
    }

    fn static_type(&self, frame: &Frame, e: &Expr) -> Result<Type, Trap> {
        let f = self.func_of(&frame.func);
        self.env
            .type_of(f, e)
            .map_err(|te| Trap::Unsupported(te.message))
    }

    /// Evaluates an lvalue to a cell address in `frame`'s scope.
    fn eval_lvalue(&self, frame: &Frame, e: &Expr) -> Result<Addr, Trap> {
        match e {
            Expr::Var(name) => self.var_addr(frame, name),
            Expr::Unary(UnOp::Deref, inner) => match self.eval(frame, inner)? {
                Value::Ptr(a) => Ok(a),
                Value::Null => Err(Trap::NullDeref),
                Value::Uninit => Err(Trap::UninitRead),
                Value::Int(_) => Err(Trap::Unsupported("dereference of int".into())),
            },
            Expr::Field(base, field) => {
                let base_addr = self.eval_lvalue(frame, base)?;
                let bt = self.static_type(frame, base)?;
                match bt {
                    Type::Struct(sname) => {
                        let off = self.field_offset(&sname, field)?;
                        Ok(Addr {
                            obj: base_addr.obj,
                            off: base_addr.off + off,
                        })
                    }
                    other => Err(Trap::Unsupported(format!(
                        "field access on non-struct {other}"
                    ))),
                }
            }
            Expr::Index(base, idx) => {
                let i = match self.eval(frame, idx)? {
                    Value::Int(v) => v,
                    _ => return Err(Trap::Unsupported("non-integer index".into())),
                };
                let bt = self.static_type(frame, base)?;
                let (base_addr, elem) = match bt {
                    Type::Array(elem, _) => (self.eval_lvalue(frame, base)?, *elem),
                    Type::Ptr(elem) => match self.eval(frame, base)? {
                        Value::Ptr(a) => (a, *elem),
                        Value::Null => return Err(Trap::NullDeref),
                        _ => return Err(Trap::UninitRead),
                    },
                    other => return Err(Trap::Unsupported(format!("index of {other}"))),
                };
                if i < 0 {
                    return Err(Trap::OutOfBounds);
                }
                let off = base_addr.off + (i as u32) * self.size_of(&elem);
                let size = self
                    .heap
                    .get(base_addr.obj as usize)
                    .map(|o| o.len() as u32)
                    .unwrap_or(0);
                if off >= size {
                    return Err(Trap::OutOfBounds);
                }
                Ok(Addr {
                    obj: base_addr.obj,
                    off,
                })
            }
            other => Err(Trap::Unsupported(format!(
                "not an lvalue: {}",
                crate::pretty::expr_to_string(other)
            ))),
        }
    }

    /// Evaluates a pure expression in `frame`'s scope.
    fn eval(&self, frame: &Frame, e: &Expr) -> Result<Value, Trap> {
        match e {
            Expr::IntLit(v) => Ok(Value::Int(*v)),
            Expr::Null => Ok(Value::Null),
            Expr::Var(_) | Expr::Field(_, _) | Expr::Index(_, _) => {
                let a = self.eval_lvalue(frame, e)?;
                let v = self.load(a)?;
                if v == Value::Uninit {
                    Err(Trap::UninitRead)
                } else {
                    Ok(v)
                }
            }
            Expr::Unary(UnOp::Deref, _) => {
                let a = self.eval_lvalue(frame, e)?;
                let v = self.load(a)?;
                if v == Value::Uninit {
                    Err(Trap::UninitRead)
                } else {
                    Ok(v)
                }
            }
            Expr::Unary(UnOp::AddrOf, inner) => Ok(Value::Ptr(self.eval_lvalue(frame, inner)?)),
            Expr::Unary(UnOp::Neg, inner) => match self.eval(frame, inner)? {
                Value::Int(v) => Ok(Value::Int(v.wrapping_neg())),
                _ => Err(Trap::Unsupported("negation of pointer".into())),
            },
            Expr::Unary(UnOp::Not, inner) => {
                let b = self.eval(frame, inner)?.truthy()?;
                Ok(Value::Int(i64::from(!b)))
            }
            Expr::Binary(op, l, r) => self.eval_binary(frame, *op, l, r),
            Expr::Call(name, _) => Err(Trap::Unsupported(format!(
                "call to `{name}` inside expression (run simplify first)"
            ))),
        }
    }

    fn eval_binary(&self, frame: &Frame, op: BinOp, l: &Expr, r: &Expr) -> Result<Value, Trap> {
        // short-circuit-free but lazy evaluation is still fine: operands
        // are pure; we evaluate both eagerly except for logical ops where
        // laziness avoids spurious traps on the non-taken side.
        if op == BinOp::And {
            return Ok(Value::Int(i64::from(
                self.eval(frame, l)?.truthy()? && self.eval(frame, r)?.truthy()?,
            )));
        }
        if op == BinOp::Or {
            return Ok(Value::Int(i64::from(
                self.eval(frame, l)?.truthy()? || self.eval(frame, r)?.truthy()?,
            )));
        }
        let lv = self.eval(frame, l)?;
        let rv = self.eval(frame, r)?;
        if op.is_comparison() {
            let result = match (lv, rv) {
                (Value::Int(a), Value::Int(b)) => match op {
                    BinOp::Lt => a < b,
                    BinOp::Le => a <= b,
                    BinOp::Gt => a > b,
                    BinOp::Ge => a >= b,
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    _ => unreachable!(),
                },
                (Value::Null, Value::Null) => match op {
                    BinOp::Eq => true,
                    BinOp::Ne => false,
                    _ => return Err(Trap::Unsupported("ordered pointer compare".into())),
                },
                (Value::Ptr(a), Value::Ptr(b)) => match op {
                    BinOp::Eq => a == b,
                    BinOp::Ne => a != b,
                    _ => return Err(Trap::Unsupported("ordered pointer compare".into())),
                },
                (Value::Ptr(_), Value::Null) | (Value::Null, Value::Ptr(_)) => match op {
                    BinOp::Eq => false,
                    BinOp::Ne => true,
                    _ => return Err(Trap::Unsupported("ordered pointer compare".into())),
                },
                // comparing a pointer against literal 0
                (Value::Ptr(_), Value::Int(0)) | (Value::Int(0), Value::Ptr(_)) => match op {
                    BinOp::Eq => false,
                    BinOp::Ne => true,
                    _ => return Err(Trap::Unsupported("pointer/int compare".into())),
                },
                (Value::Null, Value::Int(0)) | (Value::Int(0), Value::Null) => match op {
                    BinOp::Eq => true,
                    BinOp::Ne => false,
                    _ => return Err(Trap::Unsupported("pointer/int compare".into())),
                },
                (Value::Uninit, _) | (_, Value::Uninit) => return Err(Trap::UninitRead),
                _ => return Err(Trap::Unsupported("mixed compare".into())),
            };
            return Ok(Value::Int(i64::from(result)));
        }
        // arithmetic
        match (lv, rv) {
            (Value::Int(a), Value::Int(b)) => {
                let v = match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            return Err(Trap::DivByZero);
                        }
                        a.wrapping_div(b)
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            return Err(Trap::DivByZero);
                        }
                        a.wrapping_rem(b)
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(v))
            }
            // logical memory model: p + i == p
            (Value::Ptr(a), Value::Int(_)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                Ok(Value::Ptr(a))
            }
            (Value::Int(_), Value::Ptr(a)) if op == BinOp::Add => Ok(Value::Ptr(a)),
            (Value::Null, Value::Int(_)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                Ok(Value::Null)
            }
            (Value::Uninit, _) | (_, Value::Uninit) => Err(Trap::UninitRead),
            _ => Err(Trap::Unsupported("pointer arithmetic".into())),
        }
    }

    fn next_nondet(&mut self) -> i64 {
        let v = self
            .nondet_inputs
            .get(self.nondet_pos)
            .copied()
            .unwrap_or(0);
        self.nondet_pos += 1;
        v
    }

    fn record_step(&mut self, frame: &Frame, branch_taken: Option<bool>) {
        let id = self.flats[&frame.func].instrs[frame.pc].id();
        let watches = match self.watches.get(&frame.func) {
            Some(exprs) => exprs
                .iter()
                .map(|w| self.eval(frame, w).ok().and_then(|v| v.truthy().ok()))
                .collect(),
            None => Vec::new(),
        };
        self.trace.steps.push(TraceStep {
            func: frame.func.clone(),
            pc: frame.pc,
            id,
            branch_taken,
            watches,
        });
    }

    /// Runs function `func` on `args` until it returns.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if execution goes wrong; `Trap::AssertFailed`
    /// signals a property violation, `Trap::AssumeFailed` a discarded
    /// execution.
    pub fn run(&mut self, func: &str, args: Vec<Value>) -> Result<Option<Value>, Trap> {
        self.trace = Trace::default();
        self.nondet_pos = 0;
        let mut stack = Vec::new();
        stack.push(self.make_frame(func, args, None)?);
        let mut last_return: Option<Value> = None;
        while let Some(frame) = stack.last() {
            if self.fuel == 0 {
                return Err(Trap::OutOfFuel);
            }
            self.fuel -= 1;
            let flat = &self.flats[&frame.func];
            if frame.pc >= flat.instrs.len() {
                return Err(Trap::Unsupported("fell off function end".into()));
            }
            let instr = flat.instrs[frame.pc].clone();
            match instr {
                Instr::Nop => {
                    stack.last_mut().expect("frame").pc += 1;
                }
                Instr::Jump(t) => {
                    stack.last_mut().expect("frame").pc = t;
                }
                Instr::Assign { lhs, rhs, .. } => {
                    let frame = stack.last().expect("frame");
                    self.record_step(frame, None);
                    let addr = self.eval_lvalue(frame, &lhs)?;
                    let v = self.eval(frame, &rhs)?;
                    self.store(addr, v)?;
                    stack.last_mut().expect("frame").pc += 1;
                }
                Instr::Branch {
                    cond,
                    target_true,
                    target_false,
                    ..
                } => {
                    let frame = stack.last().expect("frame");
                    let taken = self.eval(frame, &cond)?.truthy()?;
                    self.record_step(frame, Some(taken));
                    stack.last_mut().expect("frame").pc =
                        if taken { target_true } else { target_false };
                }
                Instr::Assert { id, cond } => {
                    let frame = stack.last().expect("frame");
                    self.record_step(frame, None);
                    if !self.eval(frame, &cond)?.truthy()? {
                        return Err(Trap::AssertFailed(id));
                    }
                    stack.last_mut().expect("frame").pc += 1;
                }
                Instr::Assume { id, cond } => {
                    let frame = stack.last().expect("frame");
                    self.record_step(frame, None);
                    if !self.eval(frame, &cond)?.truthy()? {
                        return Err(Trap::AssumeFailed(id));
                    }
                    stack.last_mut().expect("frame").pc += 1;
                }
                Instr::Call {
                    dst,
                    func: callee,
                    args,
                    ..
                } => {
                    let frame = stack.last().expect("frame");
                    self.record_step(frame, None);
                    let ret_addr = match &dst {
                        Some(d) => Some(self.eval_lvalue(frame, d)?),
                        None => None,
                    };
                    match callee.as_str() {
                        "nondet" => {
                            let v = Value::Int(self.next_nondet());
                            if let Some(a) = ret_addr {
                                self.store(a, v)?;
                            }
                            stack.last_mut().expect("frame").pc += 1;
                        }
                        "malloc" => {
                            let pointee = match &dst {
                                Some(d) => {
                                    match self.static_type(stack.last().expect("frame"), d)? {
                                        Type::Ptr(inner) => *inner,
                                        _ => Type::Int,
                                    }
                                }
                                None => Type::Int,
                            };
                            let a = self.alloc(&pointee, true);
                            if let Some(ra) = ret_addr {
                                self.store(ra, Value::Ptr(a))?;
                            }
                            stack.last_mut().expect("frame").pc += 1;
                        }
                        _ => {
                            let mut argv = Vec::with_capacity(args.len());
                            {
                                let frame = stack.last().expect("frame");
                                for a in &args {
                                    argv.push(self.eval(frame, a)?);
                                }
                            }
                            let new_frame = self.make_frame(&callee, argv, ret_addr)?;
                            stack.last_mut().expect("frame").pc += 1;
                            stack.push(new_frame);
                        }
                    }
                }
                Instr::Return { value, .. } => {
                    let frame = stack.last().expect("frame");
                    self.record_step(frame, None);
                    let v = match &value {
                        Some(name) => {
                            let a = self.var_addr(frame, name)?;
                            Some(self.load(a)?)
                        }
                        None => None,
                    };
                    let ret_addr = frame.ret_addr;
                    stack.pop();
                    if let (Some(a), Some(v)) = (ret_addr, v) {
                        self.store(a, v)?;
                    }
                    last_return = v;
                }
            }
        }
        Ok(last_return)
    }

    fn make_frame(
        &mut self,
        func: &str,
        args: Vec<Value>,
        ret_addr: Option<Addr>,
    ) -> Result<Frame, Trap> {
        let f = self
            .func_of(func)
            .ok_or_else(|| Trap::Unsupported(format!("unknown function {func}")))?
            .clone();
        if args.len() != f.params.len() {
            return Err(Trap::Unsupported(format!(
                "{func} expects {} args, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let mut locals = HashMap::new();
        for (p, v) in f.params.iter().zip(args) {
            let a = self.alloc(&p.ty, false);
            self.store(a, v)?;
            locals.insert(p.name.clone(), a);
        }
        for (name, ty) in &f.locals {
            let a = self.alloc(ty, false);
            locals.insert(name.clone(), a);
        }
        let _ = RET_VAR; // return slot is an ordinary local created above
        Ok(Frame {
            func: func.to_string(),
            pc: 0,
            locals,
            ret_addr,
        })
    }

    /// Builds a linked list of `cell`-like struct objects from `vals`,
    /// returning a pointer to the head (or `Null` for the empty list).
    ///
    /// The struct must have an `int`-valued field `val_field` and a
    /// self-pointer field `next_field`. Used by examples and tests to set
    /// up heap inputs.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::Unsupported`] if the struct or fields are missing.
    pub fn build_list(
        &mut self,
        struct_name: &str,
        val_field: &str,
        next_field: &str,
        vals: &[i64],
    ) -> Result<Value, Trap> {
        let ty = Type::Struct(struct_name.to_string());
        let val_off = self.field_offset(struct_name, val_field)?;
        let next_off = self.field_offset(struct_name, next_field)?;
        let mut head = Value::Null;
        for v in vals.iter().rev() {
            let a = self.alloc(&ty, true);
            self.store(
                Addr {
                    obj: a.obj,
                    off: a.off + val_off,
                },
                Value::Int(*v),
            )?;
            self.store(
                Addr {
                    obj: a.obj,
                    off: a.off + next_off,
                },
                head,
            )?;
            head = Value::Ptr(a);
        }
        Ok(head)
    }

    /// Reads back a linked list into a vector of its `val_field` values.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] on malformed lists (cycles are cut by fuel).
    pub fn read_list(
        &self,
        struct_name: &str,
        val_field: &str,
        next_field: &str,
        mut head: Value,
    ) -> Result<Vec<i64>, Trap> {
        let val_off = self.field_offset(struct_name, val_field)?;
        let next_off = self.field_offset(struct_name, next_field)?;
        let mut out = Vec::new();
        let mut guard = 0;
        while let Value::Ptr(a) = head {
            guard += 1;
            if guard > 100_000 {
                return Err(Trap::OutOfFuel);
            }
            match self.load(Addr {
                obj: a.obj,
                off: a.off + val_off,
            })? {
                Value::Int(v) => out.push(v),
                _ => return Err(Trap::UninitRead),
            }
            head = self.load(Addr {
                obj: a.obj,
                off: a.off + next_off,
            })?;
        }
        Ok(out)
    }

    /// Allocates an object of type `ty` and returns a pointer to it
    /// (for setting up `T*` arguments in harnesses).
    pub fn alloc_value(&mut self, ty: &Type, v: Value) -> Result<Value, Trap> {
        let a = self.alloc(ty, true);
        self.store(a, v)?;
        Ok(Value::Ptr(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::simplify::simplify_program;

    fn interp_of(src: &str) -> Interp {
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p).unwrap();
        Interp::new(&s).unwrap()
    }

    #[test]
    fn runs_arithmetic() {
        let mut i = interp_of("int f(int x) { return x * 2 + 1; }");
        assert_eq!(
            i.run("f", vec![Value::Int(20)]).unwrap(),
            Some(Value::Int(41))
        );
    }

    #[test]
    fn runs_loops_and_branches() {
        let mut i = interp_of(
            r#"
            int sum(int n) {
                int s, k;
                s = 0; k = 1;
                while (k <= n) { s = s + k; k = k + 1; }
                return s;
            }
        "#,
        );
        assert_eq!(
            i.run("sum", vec![Value::Int(10)]).unwrap(),
            Some(Value::Int(55))
        );
    }

    #[test]
    fn runs_calls_with_byvalue_semantics() {
        let mut i = interp_of(
            r#"
            int inc(int x) { x = x + 1; return x; }
            int f(int y) { int z; z = inc(y); return z + y; }
        "#,
        );
        // inc gets a copy: f(5) = 6 + 5
        assert_eq!(
            i.run("f", vec![Value::Int(5)]).unwrap(),
            Some(Value::Int(11))
        );
    }

    #[test]
    fn pointers_read_and_write() {
        let mut i = interp_of(
            r#"
            void setp(int* p, int v) { *p = v; }
            int f(int x) {
                int y;
                y = 0;
                setp(&y, x);
                return y;
            }
        "#,
        );
        assert_eq!(
            i.run("f", vec![Value::Int(7)]).unwrap(),
            Some(Value::Int(7))
        );
    }

    #[test]
    fn null_deref_traps() {
        let mut i = interp_of(
            r#"
            struct cell { int val; struct cell* next; };
            int f(struct cell* p) { return p->val; }
        "#,
        );
        assert_eq!(i.run("f", vec![Value::Null]), Err(Trap::NullDeref));
    }

    #[test]
    fn assert_failure_is_reported() {
        let mut i = interp_of("void f(int x) { assert(x > 0); }");
        let r = i.run("f", vec![Value::Int(-1)]);
        assert!(matches!(r, Err(Trap::AssertFailed(_))));
        assert!(i.run("f", vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let mut i = interp_of("void f() { while (1) { ; } }");
        i.fuel = 1000;
        assert_eq!(i.run("f", vec![]), Err(Trap::OutOfFuel));
    }

    #[test]
    fn nondet_consumes_inputs() {
        let mut i = interp_of("int f() { int x; x = nondet(); return x; }");
        i.nondet_inputs = vec![42];
        assert_eq!(i.run("f", vec![]).unwrap(), Some(Value::Int(42)));
    }

    #[test]
    fn list_partition_end_to_end() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            list partition(list *l, int v) {
                list curr, prev, newl, nextcurr;
                curr = *l;
                prev = NULL;
                newl = NULL;
                while (curr != NULL) {
                    nextcurr = curr->next;
                    if (curr->val > v) {
                        if (prev != NULL) { prev->next = nextcurr; }
                        if (curr == *l) { *l = nextcurr; }
                        curr->next = newl;
                        L: newl = curr;
                    } else {
                        prev = curr;
                    }
                    curr = nextcurr;
                }
                return newl;
            }
        "#;
        let mut i = interp_of(src);
        let head = i
            .build_list("cell", "val", "next", &[5, 1, 9, 3, 7])
            .unwrap();
        let l = i
            .alloc_value(&Type::Struct("cell".into()).ptr_to(), head)
            .unwrap();
        let big = i
            .run("partition", vec![l.clone(), Value::Int(4)])
            .unwrap()
            .unwrap();
        // returned list: elements > 4, in reverse encounter order
        let bigs = i.read_list("cell", "val", "next", big).unwrap();
        assert_eq!(bigs, vec![7, 9, 5]);
        // original list (through *l): elements <= 4
        let Value::Ptr(la) = l else { panic!() };
        let small_head = i.load(la).unwrap();
        let smalls = i.read_list("cell", "val", "next", small_head).unwrap();
        assert_eq!(smalls, vec![1, 3]);
    }

    #[test]
    fn watches_are_recorded() {
        let mut i = interp_of("int f(int x) { x = x + 1; return x; }");
        i.watches.insert(
            "f".into(),
            vec![crate::parser::parse_expr("x > 0").unwrap()],
        );
        i.run("f", vec![Value::Int(0)]).unwrap();
        let first = &i.trace.steps[0];
        assert_eq!(first.watches, vec![Some(false)]);
        let last = i.trace.steps.last().unwrap();
        assert_eq!(last.watches, vec![Some(true)]);
    }

    #[test]
    fn arrays_index_and_bounds() {
        let mut i = interp_of(
            r#"
            int f(int n) {
                int a[4];
                int k, s;
                k = 0;
                while (k < 4) { a[k] = k * 10; k = k + 1; }
                s = a[n];
                return s;
            }
        "#,
        );
        assert_eq!(
            i.run("f", vec![Value::Int(2)]).unwrap(),
            Some(Value::Int(20))
        );
        assert_eq!(i.run("f", vec![Value::Int(9)]), Err(Trap::OutOfBounds));
    }
}
