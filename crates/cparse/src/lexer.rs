//! Hand-written lexer for the C subset.

use crate::ast::Pos;
use crate::ParseError;
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Identifier or keyword candidate.
    Ident(String),
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `struct`
    KwStruct,
    /// `typedef`
    KwTypedef,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `goto`
    KwGoto,
    /// `return`
    KwReturn,
    /// `break`
    KwBreak,
    /// `continue`
    KwContinue,
    /// `assert`
    KwAssert,
    /// `assume`
    KwAssume,
    /// `NULL`
    KwNull,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::KwInt => write!(f, "int"),
            Tok::KwVoid => write!(f, "void"),
            Tok::KwStruct => write!(f, "struct"),
            Tok::KwTypedef => write!(f, "typedef"),
            Tok::KwIf => write!(f, "if"),
            Tok::KwElse => write!(f, "else"),
            Tok::KwWhile => write!(f, "while"),
            Tok::KwGoto => write!(f, "goto"),
            Tok::KwReturn => write!(f, "return"),
            Tok::KwBreak => write!(f, "break"),
            Tok::KwContinue => write!(f, "continue"),
            Tok::KwAssert => write!(f, "assert"),
            Tok::KwAssume => write!(f, "assume"),
            Tok::KwNull => write!(f, "NULL"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::LBracket => write!(f, "["),
            Tok::RBracket => write!(f, "]"),
            Tok::Semi => write!(f, ";"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Arrow => write!(f, "->"),
            Tok::Assign => write!(f, "="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Percent => write!(f, "%"),
            Tok::Amp => write!(f, "&"),
            Tok::AmpAmp => write!(f, "&&"),
            Tok::PipePipe => write!(f, "||"),
            Tok::Bang => write!(f, "!"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::EqEq => write!(f, "=="),
            Tok::Ne => write!(f, "!="),
            Tok::Colon => write!(f, ":"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Source position of the first character.
    pub pos: Pos,
}

/// Tokenizes `src` into a vector of tokens terminated by [`Tok::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unrecognized characters, unterminated
/// comments, or integer literals that overflow `i64`.
pub fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new(pos, "unterminated block comment"));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'#' => {
                // Preprocessor lines (e.g. #include) are skipped wholesale.
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| {
                    ParseError::new(pos, format!("integer literal `{text}` overflows"))
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    pos,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let text = &src[start..i];
                let tok = match text {
                    "int" | "long" | "short" | "char" | "unsigned" | "signed" => Tok::KwInt,
                    "void" => Tok::KwVoid,
                    "struct" => Tok::KwStruct,
                    "typedef" => Tok::KwTypedef,
                    "if" => Tok::KwIf,
                    "else" => Tok::KwElse,
                    "while" => Tok::KwWhile,
                    "goto" => Tok::KwGoto,
                    "return" => Tok::KwReturn,
                    "break" => Tok::KwBreak,
                    "continue" => Tok::KwContinue,
                    "assert" => Tok::KwAssert,
                    "assume" => Tok::KwAssume,
                    "NULL" => Tok::KwNull,
                    _ => Tok::Ident(text.to_string()),
                };
                out.push(Token { tok, pos });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (tok, len) = match two {
                    "->" => (Tok::Arrow, 2),
                    "&&" => (Tok::AmpAmp, 2),
                    "||" => (Tok::PipePipe, 2),
                    "<=" => (Tok::Le, 2),
                    ">=" => (Tok::Ge, 2),
                    "==" => (Tok::EqEq, 2),
                    "!=" => (Tok::Ne, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b';' => (Tok::Semi, 1),
                        b',' => (Tok::Comma, 1),
                        b'.' => (Tok::Dot, 1),
                        b'=' => (Tok::Assign, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'&' => (Tok::Amp, 1),
                        b'!' => (Tok::Bang, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b':' => (Tok::Colon, 1),
                        _ => {
                            return Err(ParseError::new(
                                pos,
                                format!("unrecognized character `{}`", c as char),
                            ))
                        }
                    },
                };
                for _ in 0..len {
                    bump!();
                }
                out.push(Token { tok, pos });
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_tokens() {
        assert_eq!(
            toks("x = p->next;"),
            vec![
                Tok::Ident("x".into()),
                Tok::Assign,
                Tok::Ident("p".into()),
                Tok::Arrow,
                Tok::Ident("next".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_comparisons_and_logic() {
        assert_eq!(
            toks("a <= b && c != d || !e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::AmpAmp,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::PipePipe,
                Tok::Bang,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_preprocessor() {
        assert_eq!(
            toks("// line\nx /* block\nmore */ y\n#include <stdio.h>\nz"),
            vec![
                Tok::Ident("x".into()),
                Tok::Ident("y".into()),
                Tok::Ident("z".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn keywords_and_null() {
        assert_eq!(
            toks("if while NULL struct typedef unsigned"),
            vec![
                Tok::KwIf,
                Tok::KwWhile,
                Tok::KwNull,
                Tok::KwStruct,
                Tok::KwTypedef,
                Tok::KwInt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let ts = tokenize("x\n  y").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("x @ y").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
