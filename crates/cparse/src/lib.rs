//! Front end for the C subset analyzed by the SLAM toolkit reproduction.
//!
//! This crate plays the role of Microsoft's AST toolkit in the paper
//! *Automatic Predicate Abstraction of C Programs* (PLDI 2001): it parses
//! a C subset, type-checks it, and lowers it into the paper's intermediate
//! form (§4), in which all intraprocedural control flow is `if`/`while`/
//! `goto`, expressions are side-effect free with at most one pointer
//! dereference per access path, and calls occur only at statement level.
//!
//! # Example
//!
//! ```
//! use cparse::parse_and_simplify;
//! use cparse::interp::{Interp, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_and_simplify("int dbl(int x) { return x + x; }")?;
//! let mut interp = Interp::new(&program)?;
//! let out = interp.run("dbl", vec![Value::Int(21)])?;
//! assert_eq!(out, Some(Value::Int(42)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod flow;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod simplify;
pub mod slice;
pub mod typeck;

pub use ast::{Expr, Function, Program, Stmt, StmtId, Type};
pub use parser::{parse_expr, parse_program};
pub use simplify::simplify_program;
pub use typeck::{check_program, TypeEnv, TypeError};

use ast::Pos;
use std::fmt;

/// A syntax error with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub pos: Pos,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `pos`.
    pub fn new(pos: Pos, message: impl Into<String>) -> ParseError {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Any front-end failure: syntax or type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendError {
    /// Syntax error.
    Parse(ParseError),
    /// Type error (possibly raised during simplification).
    Type(TypeError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Type(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> FrontendError {
        FrontendError::Parse(e)
    }
}

impl From<TypeError> for FrontendError {
    fn from(e: TypeError) -> FrontendError {
        FrontendError::Type(e)
    }
}

/// Parses, type-checks, and lowers a source file into the intermediate
/// form in one call.
///
/// # Errors
///
/// Returns a [`FrontendError`] on the first syntax or type error.
pub fn parse_and_simplify(src: &str) -> Result<Program, FrontendError> {
    let program = parse_program(src)?;
    check_program(&program)?;
    Ok(simplify_program(&program)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_simplify_pipeline() {
        let p =
            parse_and_simplify("int f(int x) { if (x > 0) return x; else return -x; }").unwrap();
        simplify::check_simple_form(&p).unwrap();
    }

    #[test]
    fn reports_parse_errors() {
        assert!(matches!(
            parse_and_simplify("int f( {"),
            Err(FrontendError::Parse(_))
        ));
    }

    #[test]
    fn reports_type_errors() {
        assert!(matches!(
            parse_and_simplify("void f() { x = 1; }"),
            Err(FrontendError::Type(_))
        ));
    }
}
