//! Recursive-descent parser for the C subset.
//!
//! Supported top-level forms: `typedef` (including the paper's
//! `typedef struct cell {...} *list;` idiom), standalone struct
//! definitions, global variable declarations, and function definitions.

use crate::ast::*;
use crate::lexer::{tokenize, Tok, Token};
use crate::ParseError;
use std::collections::HashMap;

/// Parses a translation unit.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error with its
/// source position.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    p.program()
}

/// Parses a single expression (used for predicate input files).
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is not a single well-formed expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(Tok::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Names bound by `typedef`, mapped to their underlying type.
    typedefs: HashMap<String, Type>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            typedefs: HashMap::new(),
        }
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn here(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: Tok) -> bool {
        if *self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                self.here(),
                format!("expected `{t}`, found `{}`", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError::new(
                self.here(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    // ---- types ---------------------------------------------------------

    /// True if the current token starts a type.
    fn at_type(&self) -> bool {
        match self.peek() {
            Tok::KwInt | Tok::KwVoid | Tok::KwStruct => true,
            Tok::Ident(name) => self.typedefs.contains_key(name),
            _ => false,
        }
    }

    /// Parses a base type (without declarator stars): `int`, `void`,
    /// `struct tag`, `struct tag { fields }`, or a typedef name.
    /// Returns the type and any struct definition encountered inline.
    fn base_type(&mut self) -> Result<(Type, Option<StructDef>), ParseError> {
        match self.peek().clone() {
            Tok::KwInt => {
                self.bump();
                // collapse `unsigned long` etc. (lexer maps them all to KwInt)
                while *self.peek() == Tok::KwInt {
                    self.bump();
                }
                Ok((Type::Int, None))
            }
            Tok::KwVoid => {
                self.bump();
                Ok((Type::Void, None))
            }
            Tok::KwStruct => {
                self.bump();
                let name = match self.peek().clone() {
                    Tok::Ident(s) => {
                        self.bump();
                        s
                    }
                    // anonymous structs get a synthesized tag
                    _ => format!("__anon{}", self.pos),
                };
                if *self.peek() == Tok::LBrace {
                    let def = self.struct_body(name.clone())?;
                    Ok((Type::Struct(name), Some(def)))
                } else {
                    Ok((Type::Struct(name), None))
                }
            }
            Tok::Ident(name) => {
                if let Some(t) = self.typedefs.get(&name).cloned() {
                    self.bump();
                    Ok((t, None))
                } else {
                    Err(ParseError::new(
                        self.here(),
                        format!("unknown type name `{name}`"),
                    ))
                }
            }
            other => Err(ParseError::new(
                self.here(),
                format!("expected type, found `{other}`"),
            )),
        }
    }

    /// Parses `{ field decls }` of a struct definition named `name`.
    fn struct_body(&mut self, name: String) -> Result<StructDef, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        while *self.peek() != Tok::RBrace {
            let (base, _) = self.base_type()?;
            loop {
                let (fname, ty) = self.declarator(base.clone())?;
                fields.push((fname, ty));
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
        }
        self.expect(Tok::RBrace)?;
        Ok(StructDef { name, fields })
    }

    /// Parses a declarator: `* ... name [n]?` applied to a base type.
    fn declarator(&mut self, mut ty: Type) -> Result<(String, Type), ParseError> {
        while self.eat(Tok::Star) {
            ty = ty.ptr_to();
        }
        let name = self.expect_ident()?;
        if self.eat(Tok::LBracket) {
            let n = match self.peek().clone() {
                Tok::Int(v) => {
                    self.bump();
                    Some(v as usize)
                }
                _ => None,
            };
            self.expect(Tok::RBracket)?;
            ty = Type::Array(Box::new(ty), n);
        }
        Ok((name, ty))
    }

    // ---- top level -----------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::new();
        while *self.peek() != Tok::Eof {
            if self.eat(Tok::KwTypedef) {
                let (base, def) = self.base_type()?;
                if let Some(d) = def {
                    prog.structs.push(d);
                }
                loop {
                    let (name, ty) = self.declarator(base.clone())?;
                    self.typedefs.insert(name, ty);
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::Semi)?;
                continue;
            }
            let (base, def) = self.base_type()?;
            if let Some(d) = def {
                prog.structs.push(d);
            }
            // `struct foo { ... };` with no declarators
            if self.eat(Tok::Semi) {
                continue;
            }
            let save = self.pos;
            let (name, ty) = self.declarator(base.clone())?;
            if *self.peek() == Tok::LParen {
                // function definition
                self.pos = save;
                let f = self.function(base)?;
                prog.functions.push(f);
            } else {
                // global variable(s)
                prog.globals.push((name, ty));
                while self.eat(Tok::Comma) {
                    let (n, t) = self.declarator(base.clone())?;
                    prog.globals.push((n, t));
                }
                self.expect(Tok::Semi)?;
            }
        }
        Ok(prog)
    }

    fn function(&mut self, base: Type) -> Result<Function, ParseError> {
        let (name, ret) = self.declarator(base)?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
                self.bump(); // f(void)
            } else {
                loop {
                    let (pbase, _) = self.base_type()?;
                    let (pname, pty) = self.declarator(pbase)?;
                    // array parameters decay to pointers
                    let pty = match pty {
                        Type::Array(elem, _) => Type::Ptr(elem),
                        other => other,
                    };
                    params.push(Param {
                        name: pname,
                        ty: pty,
                    });
                    if !self.eat(Tok::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(Tok::RParen)?;
        let mut locals = Vec::new();
        let body = self.block(&mut locals)?;
        Ok(Function {
            name,
            ret,
            params,
            locals,
            body,
        })
    }

    // ---- statements ----------------------------------------------------

    fn block(&mut self, locals: &mut Vec<(String, Type)>) -> Result<Stmt, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            self.stmt_into(&mut stmts, locals)?;
        }
        self.expect(Tok::RBrace)?;
        Ok(Stmt::Seq(stmts))
    }

    /// Parses one statement (or a declaration, which may expand to several
    /// initializing assignments) into `stmts`.
    fn stmt_into(
        &mut self,
        stmts: &mut Vec<Stmt>,
        locals: &mut Vec<(String, Type)>,
    ) -> Result<(), ParseError> {
        // label?
        if let Tok::Ident(name) = self.peek().clone() {
            if *self.peek2() == Tok::Colon && !self.typedefs.contains_key(&name) {
                self.bump();
                self.bump();
                stmts.push(Stmt::Label(name));
                return self.stmt_into(stmts, locals);
            }
        }
        if self.at_type() {
            // declaration: hoist to function scope, keep initializers
            let (base, _) = self.base_type()?;
            loop {
                let (name, ty) = self.declarator(base.clone())?;
                locals.push((name.clone(), ty));
                if self.eat(Tok::Assign) {
                    let rhs = self.expr()?;
                    stmts.push(Stmt::assign(Expr::Var(name), rhs));
                }
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::Semi)?;
            return Ok(());
        }
        let s = self.stmt(locals)?;
        stmts.push(s);
        Ok(())
    }

    fn stmt(&mut self, locals: &mut Vec<(String, Type)>) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::LBrace => self.block(locals),
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Skip)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.stmt(locals)?;
                let else_branch = if self.eat(Tok::KwElse) {
                    self.stmt(locals)?
                } else {
                    Stmt::Skip
                };
                Ok(Stmt::If {
                    id: StmtId::UNASSIGNED,
                    cond,
                    then_branch: Box::new(then_branch),
                    else_branch: Box::new(else_branch),
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.stmt(locals)?;
                Ok(Stmt::While {
                    id: StmtId::UNASSIGNED,
                    cond,
                    body: Box::new(body),
                })
            }
            Tok::KwGoto => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Goto(name))
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break)
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue)
            }
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return {
                    id: StmtId::UNASSIGNED,
                    value,
                })
            }
            Tok::KwAssert => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assert {
                    id: StmtId::UNASSIGNED,
                    cond,
                })
            }
            Tok::KwAssume => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assume {
                    id: StmtId::UNASSIGNED,
                    cond,
                })
            }
            _ => {
                // expression statement: assignment or call
                let e = self.expr()?;
                if self.eat(Tok::Assign) {
                    let rhs = self.expr()?;
                    self.expect(Tok::Semi)?;
                    if !e.is_lvalue() {
                        return Err(ParseError::new(
                            self.here(),
                            "left-hand side of assignment is not an lvalue",
                        ));
                    }
                    // v = f(...) is a call statement
                    if let Expr::Call(func, args) = rhs {
                        return Ok(Stmt::Call {
                            id: StmtId::UNASSIGNED,
                            dst: Some(e),
                            func,
                            args,
                        });
                    }
                    Ok(Stmt::assign(e, rhs))
                } else {
                    self.expect(Tok::Semi)?;
                    match e {
                        Expr::Call(func, args) => Ok(Stmt::Call {
                            id: StmtId::UNASSIGNED,
                            dst: None,
                            func,
                            args,
                        }),
                        _ => Err(ParseError::new(
                            self.here(),
                            "expression statement must be a call or assignment",
                        )),
                    }
                }
            }
        }
    }

    // ---- expressions ----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while self.eat(Tok::PipePipe) {
            let r = self.and_expr()?;
            e = Expr::bin(BinOp::Or, e, r);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.eq_expr()?;
        while self.eat(Tok::AmpAmp) {
            let r = self.eq_expr()?;
            e = Expr::bin(BinOp::And, e, r);
        }
        Ok(e)
    }

    fn eq_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.rel_expr()?;
        loop {
            let op = match self.peek() {
                Tok::EqEq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let r = self.rel_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn rel_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.add_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let r = self.unary_expr()?;
            e = Expr::bin(op, e, r);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(match e {
                    Expr::IntLit(v) => Expr::IntLit(-v),
                    other => Expr::un(UnOp::Neg, other),
                })
            }
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::un(UnOp::Not, e))
            }
            Tok::Star => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(e.deref())
            }
            Tok::Amp => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(e.addr_of())
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = e.field(f);
                }
                Tok::Arrow => {
                    self.bump();
                    let f = self.expect_ident()?;
                    e = e.arrow(f);
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::Null)
            }
            Tok::Ident(name) => {
                self.bump();
                if self.eat(Tok::LParen) {
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Tok::LParen => {
                self.bump();
                // (type) casts are parsed and dropped (logical memory model)
                if self.at_type() {
                    let (base, _) = self.base_type()?;
                    let mut _ty = base;
                    while self.eat(Tok::Star) {
                        _ty = _ty.ptr_to();
                    }
                    self.expect(Tok::RParen)?;
                    return self.unary_expr();
                }
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError::new(
                self.here(),
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_expression_precedence() {
        let e = parse_expr("a + b * c < d && !e").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::And,
                Expr::bin(
                    BinOp::Lt,
                    Expr::bin(
                        BinOp::Add,
                        Expr::var("a"),
                        Expr::bin(BinOp::Mul, Expr::var("b"), Expr::var("c"))
                    ),
                    Expr::var("d")
                ),
                Expr::un(UnOp::Not, Expr::var("e"))
            )
        );
    }

    #[test]
    fn arrow_desugars_to_deref_field() {
        let e = parse_expr("curr->val > v").unwrap();
        assert_eq!(
            e,
            Expr::bin(BinOp::Gt, Expr::var("curr").arrow("val"), Expr::var("v"))
        );
    }

    #[test]
    fn parses_typedef_struct_pointer() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            list g;
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.structs[0].name, "cell");
        assert_eq!(p.structs[0].fields.len(), 2);
        assert_eq!(
            p.globals[0],
            ("g".into(), Type::Struct("cell".into()).ptr_to())
        );
    }

    #[test]
    fn parses_partition_function() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            list partition(list *l, int v) {
                list curr, prev, newl, nextcurr;
                curr = *l;
                prev = NULL;
                newl = NULL;
                while (curr != NULL) {
                    nextcurr = curr->next;
                    if (curr->val > v) {
                        if (prev != NULL) { prev->next = nextcurr; }
                        if (curr == *l) { *l = nextcurr; }
                        curr->next = newl;
                        L: newl = curr;
                    } else {
                        prev = curr;
                    }
                    curr = nextcurr;
                }
                return newl;
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("partition").unwrap();
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.locals.len(), 4);
        let mut labels = Vec::new();
        f.body.walk(&mut |s| {
            if let Stmt::Label(l) = s {
                labels.push(l.clone());
            }
        });
        assert_eq!(labels, vec!["L".to_string()]);
    }

    #[test]
    fn parses_calls_and_assignment_statements() {
        let src = r#"
            int bar(int* q, int y) { return y; }
            void foo(int* p, int x) {
                int r;
                if (*p <= x) { *p = x; } else { *p = *p + x; }
                r = bar(p, x);
                bar(p, r);
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("foo").unwrap();
        let mut calls = 0;
        f.body.walk(&mut |s| {
            if matches!(s, Stmt::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 2);
    }

    #[test]
    fn parses_arrays_and_index() {
        let src = r#"
            int a[10];
            int sum(int n) {
                int i, s;
                i = 0; s = 0;
                while (i < n) { s = s + a[i]; i = i + 1; }
                return s;
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.globals[0],
            ("a".into(), Type::Array(Box::new(Type::Int), Some(10)))
        );
    }

    #[test]
    fn rejects_bad_lvalue() {
        let src = "void f() { 3 = x; }";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn parses_goto_and_labels() {
        let src = r#"
            void f(int x) {
                if (x > 0) goto done;
                x = 1;
                done: ;
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let mut gotos = 0;
        f.body.walk(&mut |s| {
            if matches!(s, Stmt::Goto(_)) {
                gotos += 1;
            }
        });
        assert_eq!(gotos, 1);
    }

    #[test]
    fn casts_are_dropped() {
        let e = parse_expr("(int*)p == NULL").unwrap();
        assert_eq!(e, Expr::bin(BinOp::Eq, Expr::var("p"), Expr::Null));
    }
}
