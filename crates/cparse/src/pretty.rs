//! Pretty printer for the C subset (round-trips through the parser).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders an expression in C concrete syntax.
pub fn expr_to_string(e: &Expr) -> String {
    let mut s = String::new();
    write_expr(&mut s, e, 0);
    s
}

/// Renders a statement (tree) with the given indentation depth.
pub fn stmt_to_string(s: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    write_stmt(&mut out, s, indent);
    out
}

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for sd in &p.structs {
        let _ = writeln!(out, "struct {} {{", sd.name);
        for (name, ty) in &sd.fields {
            let _ = writeln!(out, "    {};", decl_to_string(name, ty));
        }
        let _ = writeln!(out, "}};");
    }
    for (name, ty) in &p.globals {
        let _ = writeln!(out, "{};", decl_to_string(name, ty));
    }
    for f in &p.functions {
        let params: Vec<String> = f
            .params
            .iter()
            .map(|p| decl_to_string(&p.name, &p.ty))
            .collect();
        let _ = writeln!(
            out,
            "{} {}({}) {{",
            f.ret,
            f.name,
            if params.is_empty() {
                "void".to_string()
            } else {
                params.join(", ")
            }
        );
        for (name, ty) in &f.locals {
            let _ = writeln!(out, "    {};", decl_to_string(name, ty));
        }
        match &f.body {
            Stmt::Seq(stmts) => {
                for s in stmts {
                    out.push_str(&stmt_to_string(s, 1));
                }
            }
            other => out.push_str(&stmt_to_string(other, 1)),
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// Renders a declaration `T name` with C declarator syntax.
pub fn decl_to_string(name: &str, ty: &Type) -> String {
    match ty {
        Type::Array(elem, Some(n)) => format!("{elem} {name}[{n}]"),
        Type::Array(elem, None) => format!("{elem} {name}[]"),
        _ => format!("{ty} {name}"),
    }
}

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::IntLit(_) | Expr::Null | Expr::Var(_) | Expr::Call(_, _) => 10,
        Expr::Field(_, _) | Expr::Index(_, _) => 9,
        Expr::Unary(_, _) => 8,
        Expr::Binary(op, _, _) => match op {
            BinOp::Mul | BinOp::Div | BinOp::Rem => 7,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::Eq | BinOp::Ne => 4,
            BinOp::And => 3,
            BinOp::Or => 2,
        },
    }
}

fn write_expr(out: &mut String, e: &Expr, parent_prec: u8) {
    let my = prec(e);
    let need_parens = my < parent_prec;
    if need_parens {
        out.push('(');
    }
    match e {
        Expr::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        Expr::Null => out.push_str("NULL"),
        Expr::Var(name) => out.push_str(name),
        Expr::Unary(UnOp::Deref, inner) => {
            // print (*p).f as p->f at the Field level; plain deref here
            out.push('*');
            write_expr(out, inner, 9);
        }
        Expr::Unary(op, inner) => {
            let _ = write!(out, "{op}");
            write_expr(out, inner, 8);
        }
        Expr::Field(base, field) => {
            if let Expr::Unary(UnOp::Deref, p) = &**base {
                write_expr(out, p, 9);
                let _ = write!(out, "->{field}");
            } else {
                write_expr(out, base, 9);
                let _ = write!(out, ".{field}");
            }
        }
        Expr::Index(base, idx) => {
            write_expr(out, base, 9);
            out.push('[');
            write_expr(out, idx, 0);
            out.push(']');
        }
        Expr::Binary(op, l, r) => {
            write_expr(out, l, my);
            let _ = write!(out, " {op} ");
            write_expr(out, r, my + 1);
        }
        Expr::Call(f, args) => {
            let _ = write!(out, "{f}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a, 0);
            }
            out.push(')');
        }
    }
    if need_parens {
        out.push(')');
    }
}

fn write_stmt(out: &mut String, s: &Stmt, indent: usize) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Skip => {
            let _ = writeln!(out, "{pad};");
        }
        Stmt::Assign { lhs, rhs, .. } => {
            let _ = writeln!(
                out,
                "{pad}{} = {};",
                expr_to_string(lhs),
                expr_to_string(rhs)
            );
        }
        Stmt::Call {
            dst, func, args, ..
        } => {
            let args: Vec<String> = args.iter().map(expr_to_string).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(
                        out,
                        "{pad}{} = {func}({});",
                        expr_to_string(d),
                        args.join(", ")
                    );
                }
                None => {
                    let _ = writeln!(out, "{pad}{func}({});", args.join(", "));
                }
            }
        }
        Stmt::Seq(stmts) => {
            for st in stmts {
                write_stmt(out, st, indent);
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr_to_string(cond));
            write_stmt(out, then_branch, indent + 1);
            if matches!(**else_branch, Stmt::Skip) {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                write_stmt(out, else_branch, indent + 1);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr_to_string(cond));
            write_stmt(out, body, indent + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Goto(l) => {
            let _ = writeln!(out, "{pad}goto {l};");
        }
        Stmt::Label(l) => {
            let _ = writeln!(out, "{l}:");
        }
        Stmt::Return { value, .. } => match value {
            Some(e) => {
                let _ = writeln!(out, "{pad}return {};", expr_to_string(e));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::Assert { cond, .. } => {
            let _ = writeln!(out, "{pad}assert({});", expr_to_string(cond));
        }
        Stmt::Assume { cond, .. } => {
            let _ = writeln!(out, "{pad}assume({});", expr_to_string(cond));
        }
        Stmt::Break => {
            let _ = writeln!(out, "{pad}break;");
        }
        Stmt::Continue => {
            let _ = writeln!(out, "{pad}continue;");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    #[test]
    fn expr_round_trips() {
        for src in [
            "x + y * z",
            "(x + y) * z",
            "curr->val > v",
            "*p <= 0 && x == 0",
            "!(prev == NULL)",
            "a[i + 1] == a[j]",
            "&x != &y",
            "f(x, *p)",
        ] {
            let e = parse_expr(src).unwrap();
            let printed = expr_to_string(&e);
            let re = parse_expr(&printed).unwrap();
            assert_eq!(e, re, "round trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn program_round_trips() {
        let src = r#"
            typedef struct cell { int val; struct cell* next; } *list;
            int g;
            void f(list p, int x) {
                int y;
                y = 0;
                while (p != NULL) {
                    if (p->val > x) { y = y + 1; } else { p = p->next; }
                }
                L: return;
            }
        "#;
        let p = parse_program(src).unwrap();
        let printed = program_to_string(&p);
        let p2 = parse_program(&printed).unwrap();
        // struct defs print outside typedefs, so compare functions and globals
        assert_eq!(p.globals, p2.globals);
        assert_eq!(p.functions.len(), p2.functions.len());
        assert_eq!(p.functions[0].locals, p2.functions[0].locals);
    }

    #[test]
    fn line_count_is_stable() {
        let src = "int g;\nvoid f() { g = 1; }";
        let p = parse_program(src).unwrap();
        assert!(p.line_count() >= 3);
    }
}
