//! Lowering into the paper's intermediate form (§4).
//!
//! After [`simplify_program`]:
//!
//! 1. all intraprocedural control flow uses `if`/`while`/`goto` with pure,
//!    call-free conditions (`break`/`continue` are eliminated);
//! 2. all expressions are free of side effects and contain at most one
//!    pointer dereference along any access path (`**p` and `p->a->b` are
//!    split through temporaries);
//! 3. function calls occur only at the top level of a [`Stmt::Call`]
//!    (`z = x + f(y);` becomes `t = f(y); z = x + t;`);
//! 4. every function has a single `return` of a plain variable, at the
//!    distinguished exit label [`EXIT_LABEL`];
//! 5. every statement carries a unique [`StmtId`], stable across the
//!    translation to a boolean program.

use crate::ast::*;
use crate::typeck::{intrinsic_return, TypeEnv, TypeError};

/// The label that every `return` jumps to after normalization.
pub const EXIT_LABEL: &str = "__exit";

/// The synthesized variable holding a function's return value.
pub const RET_VAR: &str = "__retval";

/// Prefix of simplifier-introduced temporaries.
pub const TEMP_PREFIX: &str = "__t";

/// Lowers a program into the intermediate form and numbers its statements.
///
/// # Errors
///
/// Returns a [`TypeError`] if the program is ill-typed (the simplifier
/// type-checks as it introduces temporaries).
pub fn simplify_program(program: &Program) -> Result<Program, TypeError> {
    let env = TypeEnv::new(program);
    let mut out = Program {
        structs: program.structs.clone(),
        globals: program.globals.clone(),
        functions: Vec::new(),
    };
    for f in &program.functions {
        out.functions.push(simplify_function(&env, f)?);
    }
    number_statements(&mut out);
    Ok(out)
}

/// Assigns a fresh, unique [`StmtId`] to every statement in the program.
pub fn number_statements(program: &mut Program) {
    let mut next = 0u32;
    for f in &mut program.functions {
        number_stmt(&mut f.body, &mut next);
    }
}

fn number_stmt(s: &mut Stmt, next: &mut u32) {
    let mut take = || {
        let id = StmtId(*next);
        *next += 1;
        id
    };
    match s {
        Stmt::Assign { id, .. }
        | Stmt::Call { id, .. }
        | Stmt::Return { id, .. }
        | Stmt::Assert { id, .. }
        | Stmt::Assume { id, .. } => *id = take(),
        Stmt::If {
            id,
            then_branch,
            else_branch,
            ..
        } => {
            *id = take();
            number_stmt(then_branch, next);
            number_stmt(else_branch, next);
        }
        Stmt::While { id, body, .. } => {
            *id = take();
            number_stmt(body, next);
        }
        Stmt::Seq(stmts) => {
            for st in stmts {
                number_stmt(st, next);
            }
        }
        _ => {}
    }
}

struct Simplifier<'a> {
    env: &'a TypeEnv,
    params: Vec<Param>,
    locals: Vec<(String, Type)>,
    fname: String,
    temp_counter: u32,
    label_counter: u32,
}

impl<'a> Simplifier<'a> {
    fn lookup(&self, name: &str) -> Option<Type> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.ty.clone())
            .or_else(|| {
                self.locals
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, t)| t.clone())
            })
            .or_else(|| self.env.var_type(None, name))
    }

    fn type_of(&self, e: &Expr) -> Result<Type, TypeError> {
        self.env.type_of_with(&|n| self.lookup(n), e)
    }

    fn fresh_temp(&mut self, ty: Type) -> String {
        let name = format!("{TEMP_PREFIX}{}", self.temp_counter);
        self.temp_counter += 1;
        self.locals.push((name.clone(), ty));
        name
    }

    fn fresh_label(&mut self, base: &str) -> String {
        let name = format!("__{base}{}_{}", self.fname, self.label_counter);
        self.label_counter += 1;
        name
    }

    /// Rewrites `e` so that no access path contains more than one
    /// dereference and no call remains, emitting temp assignments into
    /// `pre`. `top_lvalue` marks the outermost lvalue of an assignment,
    /// which may keep its own (single) outer dereference.
    fn flatten_expr(&mut self, e: &Expr, pre: &mut Vec<Stmt>) -> Result<Expr, TypeError> {
        match e {
            Expr::IntLit(_) | Expr::Null | Expr::Var(_) => Ok(e.clone()),
            Expr::Unary(UnOp::Deref, inner) => {
                let inner = self.flatten_expr(inner, pre)?;
                let inner = self.demote_pointer(inner, pre)?;
                Ok(inner.deref())
            }
            Expr::Unary(op, inner) => {
                let inner = self.flatten_expr(inner, pre)?;
                Ok(Expr::un(*op, inner))
            }
            Expr::Binary(op, l, r) => {
                let l = self.flatten_expr(l, pre)?;
                let r = self.flatten_expr(r, pre)?;
                Ok(Expr::bin(*op, l, r))
            }
            Expr::Field(base, f) => {
                let base = self.flatten_expr(base, pre)?;
                // (*p).f : p must be deref-free
                if let Expr::Unary(UnOp::Deref, p) = base {
                    let p = self.demote_pointer(*p, pre)?;
                    Ok(p.deref().field(f.clone()))
                } else {
                    Ok(Expr::Field(Box::new(base), f.clone()))
                }
            }
            Expr::Index(base, idx) => {
                let base = self.flatten_expr(base, pre)?;
                let base = self.demote_pointer(base, pre)?;
                let idx = self.flatten_expr(idx, pre)?;
                let idx = self.demote_scalar_if_deep(idx, pre)?;
                Ok(Expr::Index(Box::new(base), Box::new(idx)))
            }
            Expr::Call(name, args) => {
                let mut flat_args = Vec::with_capacity(args.len());
                for a in args {
                    flat_args.push(self.flatten_expr(a, pre)?);
                }
                let ret = match intrinsic_return(name) {
                    Some(t) => t,
                    None => self
                        .env
                        .fn_sig(name)
                        .ok_or_else(|| TypeError {
                            message: format!("unknown function `{name}`"),
                        })?
                        .ret
                        .clone(),
                };
                let t = self.fresh_temp(ret);
                pre.push(Stmt::Call {
                    id: StmtId::UNASSIGNED,
                    dst: Some(Expr::Var(t.clone())),
                    func: name.clone(),
                    args: flat_args,
                });
                Ok(Expr::Var(t))
            }
        }
    }

    /// If `e` (used as a pointer about to be dereferenced) itself contains
    /// a dereference, copies it into a temporary so the outer access is a
    /// single dereference.
    fn demote_pointer(&mut self, e: Expr, pre: &mut Vec<Stmt>) -> Result<Expr, TypeError> {
        if e.deref_depth() == 0 {
            return Ok(e);
        }
        let ty = self.type_of(&e)?;
        let t = self.fresh_temp(ty);
        pre.push(Stmt::assign(Expr::Var(t.clone()), e));
        Ok(Expr::Var(t))
    }

    /// Index expressions may not contain dereferences (keeps location
    /// enumeration syntactic); copies deep indices into temporaries.
    fn demote_scalar_if_deep(&mut self, e: Expr, pre: &mut Vec<Stmt>) -> Result<Expr, TypeError> {
        if e.deref_depth() == 0 {
            return Ok(e);
        }
        let ty = self.type_of(&e)?;
        let t = self.fresh_temp(ty);
        pre.push(Stmt::assign(Expr::Var(t.clone()), e));
        Ok(Expr::Var(t))
    }

    fn simplify_stmt(
        &mut self,
        s: &Stmt,
        out: &mut Vec<Stmt>,
        break_label: Option<&str>,
        continue_label: Option<&str>,
        ret_ty: &Type,
    ) -> Result<(), TypeError> {
        match s {
            Stmt::Skip => out.push(Stmt::Skip),
            Stmt::Label(l) => out.push(Stmt::Label(l.clone())),
            Stmt::Goto(l) => out.push(Stmt::Goto(l.clone())),
            Stmt::Break => match break_label {
                Some(l) => out.push(Stmt::Goto(l.to_string())),
                None => {
                    return Err(TypeError {
                        message: "`break` outside of a loop".into(),
                    })
                }
            },
            Stmt::Continue => match continue_label {
                Some(l) => out.push(Stmt::Goto(l.to_string())),
                None => {
                    return Err(TypeError {
                        message: "`continue` outside of a loop".into(),
                    })
                }
            },
            Stmt::Assign { lhs, rhs, .. } => {
                let mut pre = Vec::new();
                let lhs = self.flatten_expr(lhs, &mut pre)?;
                let rhs = self.flatten_expr(rhs, &mut pre)?;
                out.extend(pre);
                // `lhs = f(...)` from flattening becomes a direct call
                if let Expr::Var(tv) = &rhs {
                    if let Some(Stmt::Call { dst: Some(d), .. }) = out.last_mut() {
                        if *d == Expr::Var(tv.clone()) && tv.starts_with(TEMP_PREFIX) {
                            *d = lhs;
                            return Ok(());
                        }
                    }
                }
                out.push(Stmt::assign(lhs, rhs));
            }
            Stmt::Call {
                dst, func, args, ..
            } => {
                let mut pre = Vec::new();
                let dst = match dst {
                    Some(d) => Some(self.flatten_expr(d, &mut pre)?),
                    None => None,
                };
                let mut flat_args = Vec::with_capacity(args.len());
                for a in args {
                    flat_args.push(self.flatten_expr(a, &mut pre)?);
                }
                out.extend(pre);
                out.push(Stmt::Call {
                    id: StmtId::UNASSIGNED,
                    dst,
                    func: func.clone(),
                    args: flat_args,
                });
            }
            Stmt::Seq(stmts) => {
                for st in stmts {
                    self.simplify_stmt(st, out, break_label, continue_label, ret_ty)?;
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let mut pre = Vec::new();
                let cond = self.flatten_expr(cond, &mut pre)?;
                out.extend(pre);
                let mut tb = Vec::new();
                self.simplify_stmt(then_branch, &mut tb, break_label, continue_label, ret_ty)?;
                let mut eb = Vec::new();
                self.simplify_stmt(else_branch, &mut eb, break_label, continue_label, ret_ty)?;
                out.push(Stmt::If {
                    id: StmtId::UNASSIGNED,
                    cond,
                    then_branch: Box::new(Stmt::Seq(tb)),
                    else_branch: Box::new(Stmt::Seq(eb)),
                });
            }
            Stmt::While { cond, body, .. } => {
                let mut pre = Vec::new();
                let flat_cond = self.flatten_expr(cond, &mut pre)?;
                let brk = self.fresh_label("brk_");
                let cont = self.fresh_label("cont_");
                let mut sbody = Vec::new();
                self.simplify_stmt(body, &mut sbody, Some(&brk), Some(&cont), ret_ty)?;
                if pre.is_empty() {
                    // Pure condition: keep the `while` shape (as in Fig. 1).
                    out.push(Stmt::Label(cont.clone()));
                    out.push(Stmt::While {
                        id: StmtId::UNASSIGNED,
                        cond: flat_cond,
                        body: Box::new(Stmt::Seq(sbody)),
                    });
                } else {
                    // Condition needed calls/temps: lower to if/goto so the
                    // temps are recomputed on every iteration.
                    out.push(Stmt::Label(cont.clone()));
                    out.extend(pre);
                    sbody.push(Stmt::Goto(cont.clone()));
                    out.push(Stmt::If {
                        id: StmtId::UNASSIGNED,
                        cond: flat_cond,
                        then_branch: Box::new(Stmt::Seq(sbody)),
                        else_branch: Box::new(Stmt::Seq(vec![])),
                    });
                }
                out.push(Stmt::Label(brk));
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    if *ret_ty == Type::Void {
                        return Err(TypeError {
                            message: "void function returns a value".into(),
                        });
                    }
                    let mut pre = Vec::new();
                    let e = self.flatten_expr(e, &mut pre)?;
                    out.extend(pre);
                    out.push(Stmt::assign(Expr::var(RET_VAR), e));
                }
                out.push(Stmt::Goto(EXIT_LABEL.to_string()));
            }
            Stmt::Assert { cond, .. } => {
                let mut pre = Vec::new();
                let cond = self.flatten_expr(cond, &mut pre)?;
                out.extend(pre);
                out.push(Stmt::Assert {
                    id: StmtId::UNASSIGNED,
                    cond,
                });
            }
            Stmt::Assume { cond, .. } => {
                let mut pre = Vec::new();
                let cond = self.flatten_expr(cond, &mut pre)?;
                out.extend(pre);
                out.push(Stmt::Assume {
                    id: StmtId::UNASSIGNED,
                    cond,
                });
            }
        }
        Ok(())
    }
}

/// If the function consists of straight code ending in a single
/// `return v;` of a plain variable (like the paper's `bar` returning
/// `l1`, or `partition` returning `newl`), that variable can stay the
/// return variable — the paper's signature computation (§4.5.2) depends
/// on predicates naming it. Returns the variable if so.
fn sole_trailing_return_var(f: &Function) -> Option<Option<String>> {
    let mut count = 0;
    f.body.walk(&mut |s| {
        if matches!(s, Stmt::Return { .. }) {
            count += 1;
        }
    });
    if count > 1 {
        return None;
    }
    let Stmt::Seq(stmts) = &f.body else {
        return None;
    };
    match stmts.last() {
        Some(Stmt::Return { value: None, .. }) if count == 1 => Some(None),
        Some(Stmt::Return {
            value: Some(Expr::Var(v)),
            ..
        }) if count == 1 => Some(Some(v.clone())),
        None if count == 0 && f.ret == Type::Void => Some(None),
        Some(_) if count == 0 && f.ret == Type::Void => Some(None),
        _ => None,
    }
}

fn simplify_function(env: &TypeEnv, f: &Function) -> Result<Function, TypeError> {
    let mut simp = Simplifier {
        env,
        params: f.params.clone(),
        locals: f.locals.clone(),
        fname: f.name.clone(),
        temp_counter: 0,
        label_counter: 0,
    };
    // fast path: keep the original return variable when possible
    if let Some(ret_var) = sole_trailing_return_var(f) {
        let Stmt::Seq(stmts) = &f.body else {
            unreachable!("sole_trailing_return_var checked Seq");
        };
        let mut body: Vec<Stmt> = stmts.clone();
        if matches!(body.last(), Some(Stmt::Return { .. })) {
            body.pop();
        }
        let mut out = Vec::new();
        for s in &body {
            simp.simplify_stmt(s, &mut out, None, None, &f.ret)?;
        }
        out.push(Stmt::Label(EXIT_LABEL.to_string()));
        out.push(Stmt::Return {
            id: StmtId::UNASSIGNED,
            value: ret_var.map(Expr::Var),
        });
        return Ok(Function {
            name: f.name.clone(),
            ret: f.ret.clone(),
            params: f.params.clone(),
            locals: simp.locals,
            body: Stmt::Seq(out),
        });
    }
    if f.ret != Type::Void {
        simp.locals.push((RET_VAR.to_string(), f.ret.clone()));
    }
    let mut out = Vec::new();
    simp.simplify_stmt(&f.body, &mut out, None, None, &f.ret)?;
    // single exit
    out.push(Stmt::Label(EXIT_LABEL.to_string()));
    out.push(Stmt::Return {
        id: StmtId::UNASSIGNED,
        value: if f.ret == Type::Void {
            None
        } else {
            Some(Expr::var(RET_VAR))
        },
    });
    Ok(Function {
        name: f.name.clone(),
        ret: f.ret.clone(),
        params: f.params.clone(),
        locals: simp.locals,
        body: Stmt::Seq(out),
    })
}

/// Checks the intermediate-form invariants (used in tests and debug
/// assertions): call-free expressions outside calls, dereference depth at
/// most one, no `break`/`continue`, single `return` per function.
pub fn check_simple_form(program: &Program) -> Result<(), String> {
    for f in &program.functions {
        let mut returns = 0usize;
        let mut err = None;
        f.body.walk(&mut |s| {
            let check_expr = |e: &Expr, what: &str| -> Option<String> {
                if e.has_call() {
                    return Some(format!("{}: call inside {what}", f.name));
                }
                if e.deref_depth() > 1 {
                    return Some(format!(
                        "{}: `{}` has dereference depth > 1",
                        f.name,
                        crate::pretty::expr_to_string(e)
                    ));
                }
                None
            };
            let bad = match s {
                Stmt::Assign { lhs, rhs, .. } => {
                    check_expr(lhs, "lhs").or_else(|| check_expr(rhs, "rhs"))
                }
                Stmt::Call { dst, args, .. } => dst
                    .as_ref()
                    .and_then(|d| check_expr(d, "call dst"))
                    .or_else(|| args.iter().find_map(|a| check_expr(a, "call arg"))),
                Stmt::If { cond, .. } | Stmt::While { cond, .. } => check_expr(cond, "condition"),
                Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => {
                    check_expr(cond, "assertion")
                }
                Stmt::Return { value, .. } => {
                    returns += 1;
                    match value {
                        Some(Expr::Var(_)) | None => None,
                        Some(_) => Some(format!("{}: return of a non-variable", f.name)),
                    }
                }
                Stmt::Break | Stmt::Continue => Some(format!(
                    "{}: break/continue survived simplification",
                    f.name
                )),
                _ => None,
            };
            if err.is_none() {
                err = bad;
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        if returns != 1 {
            return Err(format!("{}: expected 1 return, found {returns}", f.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn simp(src: &str) -> Program {
        let p = parse_program(src).unwrap();
        let s = simplify_program(&p).unwrap();
        check_simple_form(&s).unwrap();
        s
    }

    #[test]
    fn splits_nested_derefs() {
        let s = simp(
            r#"
            typedef struct cell { int val; struct cell* next; } *list;
            int f(list p) {
                int x;
                x = p->next->val;
                return x;
            }
        "#,
        );
        let f = s.function("f").unwrap();
        // a temp was introduced
        assert!(f.locals.iter().any(|(n, _)| n.starts_with(TEMP_PREFIX)));
    }

    #[test]
    fn extracts_calls_from_expressions() {
        let s = simp(
            r#"
            int g(int y) { return y + 1; }
            int f(int x) {
                int z;
                z = x + g(x);
                return z;
            }
        "#,
        );
        let f = s.function("f").unwrap();
        let mut calls = 0;
        let mut call_args_pure = true;
        f.body.walk(&mut |st| {
            if let Stmt::Call { args, .. } = st {
                calls += 1;
                call_args_pure &= args.iter().all(|a| !a.has_call());
            }
        });
        assert_eq!(calls, 1);
        assert!(call_args_pure);
    }

    #[test]
    fn direct_call_assignment_keeps_destination() {
        let s = simp(
            r#"
            int g(int y) { return y; }
            int f(int x) {
                int z;
                z = g(x);
                return z;
            }
        "#,
        );
        let f = s.function("f").unwrap();
        let mut found = false;
        f.body.walk(&mut |st| {
            if let Stmt::Call { dst: Some(d), .. } = st {
                found = *d == Expr::var("z");
            }
        });
        assert!(found, "call should assign directly to z");
    }

    #[test]
    fn break_and_continue_become_gotos() {
        let s = simp(
            r#"
            void f(int x) {
                while (x > 0) {
                    if (x == 5) break;
                    if (x == 3) continue;
                    x = x - 1;
                }
            }
        "#,
        );
        let f = s.function("f").unwrap();
        let mut gotos = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::Goto(_)) {
                gotos += 1;
            }
        });
        assert!(gotos >= 2);
    }

    #[test]
    fn returns_are_normalized_to_single_exit() {
        let s = simp(
            r#"
            int f(int x) {
                if (x > 0) return 1;
                return 0;
            }
        "#,
        );
        let f = s.function("f").unwrap();
        let mut returns = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::Return { .. }) {
                returns += 1;
            }
        });
        assert_eq!(returns, 1);
        assert!(f.locals.iter().any(|(n, _)| n == RET_VAR));
    }

    #[test]
    fn statements_get_unique_ids() {
        let s = simp("int f(int x) { x = 1; x = 2; return x; }");
        let mut ids = Vec::new();
        s.function("f").unwrap().body.walk(&mut |st| {
            if let Some(id) = st.id() {
                ids.push(id);
            }
        });
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "duplicate statement ids");
        assert!(ids.iter().all(|i| *i != StmtId::UNASSIGNED));
    }

    #[test]
    fn while_with_call_in_condition_is_lowered() {
        let s = simp(
            r#"
            int more(int x) { return x - 1; }
            void f(int x) {
                while (more(x) > 0) {
                    x = x - 1;
                }
            }
        "#,
        );
        let f = s.function("f").unwrap();
        // no While should remain with an impure condition; the loop became
        // if/goto, so at most the call sits before an `if`
        let mut whiles = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::While { .. }) {
                whiles += 1;
            }
        });
        assert_eq!(whiles, 0);
        check_simple_form(&s).unwrap();
    }

    #[test]
    fn partition_keeps_while_shape() {
        let s = simp(
            r#"
            typedef struct cell { int val; struct cell* next; } *list;
            list partition(list *l, int v) {
                list curr, prev, newl, nextcurr;
                curr = *l;
                prev = NULL;
                newl = NULL;
                while (curr != NULL) {
                    nextcurr = curr->next;
                    if (curr->val > v) {
                        if (prev != NULL) { prev->next = nextcurr; }
                        if (curr == *l) { *l = nextcurr; }
                        curr->next = newl;
                        L: newl = curr;
                    } else {
                        prev = curr;
                    }
                    curr = nextcurr;
                }
                return newl;
            }
        "#,
        );
        let f = s.function("partition").unwrap();
        let mut whiles = 0;
        f.body.walk(&mut |st| {
            if matches!(st, Stmt::While { .. }) {
                whiles += 1;
            }
        });
        assert_eq!(whiles, 1, "pure loop condition keeps while shape");
    }
}
