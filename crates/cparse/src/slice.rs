//! Applying a computed program slice to the simplified IR.
//!
//! The slicing *analysis* lives in the `analysis` crate (it needs the
//! call graph, MOD/REF summaries, and the alias oracle); this module is
//! the mechanical half: given the statements and functions the analysis
//! decided to drop, produce the sliced program. Dropped statements are
//! replaced by [`Stmt::Skip`] rather than removed so the surrounding
//! `Seq`/`If`/`While` structure — and every surviving [`StmtId`] — is
//! untouched, which keeps Newton's trace-to-statement mapping valid.

use crate::ast::{Program, Stmt, StmtId};
use std::collections::{BTreeMap, BTreeSet};

/// Produces the sliced program: functions named in `drop_funcs` are
/// removed entirely, and within the survivors every `Assign`/`Call`
/// whose id appears in `drop_stmts` becomes `skip`.
///
/// Ids in `drop_stmts` that name non-assignment statements are ignored
/// — only statement kinds with no control-flow or observation role are
/// ever erased.
pub fn apply_slice(
    program: &Program,
    drop_stmts: &BTreeMap<String, BTreeSet<StmtId>>,
    drop_funcs: &BTreeSet<String>,
) -> Program {
    let mut out = program.clone();
    out.functions.retain(|f| !drop_funcs.contains(&f.name));
    for f in &mut out.functions {
        if let Some(ids) = drop_stmts.get(&f.name) {
            if !ids.is_empty() {
                erase(&mut f.body, ids);
            }
        }
    }
    out
}

fn erase(s: &mut Stmt, ids: &BTreeSet<StmtId>) {
    match s {
        Stmt::Assign { id, .. } | Stmt::Call { id, .. } if ids.contains(id) => *s = Stmt::Skip,
        Stmt::Seq(ss) => {
            for child in ss {
                erase(child, ids);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            erase(then_branch, ids);
            erase(else_branch, ids);
        }
        Stmt::While { body, .. } => erase(body, ids),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_simplify;

    #[test]
    fn erases_listed_statements_and_functions() {
        let program = parse_and_simplify(
            "int g;\n\
             void helper(void) { g = 2; }\n\
             void main(void) { g = 0; g = 1; helper(); }\n",
        )
        .expect("parse");
        // collect main's statement ids in order
        let mut ids = Vec::new();
        program.function("main").unwrap().body.walk(&mut |s| {
            if let Some(id) = s.id() {
                ids.push(id);
            }
        });
        let mut drop_stmts = BTreeMap::new();
        drop_stmts.insert(
            "main".to_string(),
            [ids[1], ids[2]].into_iter().collect::<BTreeSet<_>>(),
        );
        let drop_funcs: BTreeSet<String> = ["helper".to_string()].into_iter().collect();
        let sliced = apply_slice(&program, &drop_stmts, &drop_funcs);
        assert!(sliced.function("helper").is_none());
        let mut kept = Vec::new();
        sliced.function("main").unwrap().body.walk(&mut |s| {
            if let Some(id) = s.id() {
                kept.push(id);
            }
        });
        assert!(kept.contains(&ids[0]), "first assignment survives");
        assert!(
            !kept.contains(&ids[1]) && !kept.contains(&ids[2]),
            "listed ids erased"
        );
    }

    #[test]
    fn empty_slice_is_identity() {
        let program = parse_and_simplify("void main(void) { int x; x = 1; }").expect("parse");
        let sliced = apply_slice(&program, &BTreeMap::new(), &BTreeSet::new());
        assert_eq!(sliced, program);
    }
}
