//! Type checker for the C subset.
//!
//! Besides rejecting ill-typed programs, the checker exposes
//! [`TypeEnv::type_of`], which later phases (weakest preconditions, the
//! points-to analysis, the prover encoding) use to enumerate the locations
//! mentioned by an expression and to distinguish pointer-valued from
//! integer-valued terms.

use crate::ast::*;
use std::collections::HashMap;
use std::fmt;

/// A type error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Description of the error.
    pub message: String,
}

impl TypeError {
    fn new(message: impl Into<String>) -> TypeError {
        TypeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.message)
    }
}

impl std::error::Error for TypeError {}

/// A function signature as seen by callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSig {
    /// Parameter types in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

/// Typing context for a program.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    structs: HashMap<String, StructDef>,
    globals: HashMap<String, Type>,
    functions: HashMap<String, FnSig>,
}

impl TypeEnv {
    /// Builds the environment from a program's declarations.
    pub fn new(program: &Program) -> TypeEnv {
        let mut env = TypeEnv::default();
        for s in &program.structs {
            env.structs.insert(s.name.clone(), s.clone());
        }
        for (name, ty) in &program.globals {
            env.globals.insert(name.clone(), ty.clone());
        }
        for f in &program.functions {
            env.functions.insert(
                f.name.clone(),
                FnSig {
                    params: f.params.iter().map(|p| p.ty.clone()).collect(),
                    ret: f.ret.clone(),
                },
            );
        }
        env
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, name: &str) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Looks up a function signature.
    pub fn fn_sig(&self, name: &str) -> Option<&FnSig> {
        self.functions.get(name)
    }

    /// Looks up the type of `name` in `func`'s scope (params, locals,
    /// then globals).
    pub fn var_type(&self, func: Option<&Function>, name: &str) -> Option<Type> {
        if let Some(f) = func {
            if let Some(t) = f.var_type(name) {
                return Some(t.clone());
            }
        }
        self.globals.get(name).cloned()
    }

    /// Computes the type of `e` in the scope of `func` (or global scope if
    /// `None`).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the expression is ill-typed or references
    /// an unknown name.
    pub fn type_of(&self, func: Option<&Function>, e: &Expr) -> Result<Type, TypeError> {
        self.type_of_with(&|name| self.var_type(func, name), e)
    }

    /// Like [`TypeEnv::type_of`], but with a custom variable-type lookup.
    ///
    /// The simplifier uses this while it is still inventing temporaries
    /// that are not yet recorded in any [`Function`].
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the expression is ill-typed or references
    /// an unknown name.
    pub fn type_of_with(
        &self,
        lookup: &dyn Fn(&str) -> Option<Type>,
        e: &Expr,
    ) -> Result<Type, TypeError> {
        match e {
            Expr::IntLit(_) => Ok(Type::Int),
            Expr::Null => Ok(Type::Ptr(Box::new(Type::Void))),
            Expr::Var(name) => {
                lookup(name).ok_or_else(|| TypeError::new(format!("unknown variable `{name}`")))
            }
            Expr::Unary(UnOp::Deref, inner) => {
                let t = self.type_of_with(lookup, inner)?;
                t.pointee().cloned().ok_or_else(|| {
                    TypeError::new(format!(
                        "cannot dereference non-pointer `{}` of type {t}",
                        crate::pretty::expr_to_string(inner)
                    ))
                })
            }
            Expr::Unary(UnOp::AddrOf, inner) => {
                if !inner.is_lvalue() {
                    return Err(TypeError::new(format!(
                        "cannot take address of non-lvalue `{}`",
                        crate::pretty::expr_to_string(inner)
                    )));
                }
                Ok(self.type_of_with(lookup, inner)?.ptr_to())
            }
            Expr::Unary(UnOp::Neg, inner) | Expr::Unary(UnOp::Not, inner) => {
                let t = self.type_of_with(lookup, inner)?;
                if matches!(t, Type::Struct(_)) {
                    return Err(TypeError::new("unary operator applied to struct value"));
                }
                Ok(Type::Int)
            }
            Expr::Binary(op, l, r) => {
                let lt = self.type_of_with(lookup, l)?;
                let rt = self.type_of_with(lookup, r)?;
                if op.is_logical() || op.is_comparison() {
                    if !compatible(&lt, &rt) && !(op.is_logical()) {
                        return Err(TypeError::new(format!(
                            "cannot compare {lt} with {rt} in `{}`",
                            crate::pretty::expr_to_string(e)
                        )));
                    }
                    return Ok(Type::Int);
                }
                // arithmetic; pointer arithmetic yields the pointer type
                match (&lt, &rt) {
                    (Type::Int, Type::Int) => Ok(Type::Int),
                    (p, Type::Int) if p.is_pointer_like() => Ok(lt.clone()),
                    (Type::Int, p) if p.is_pointer_like() => Ok(rt.clone()),
                    _ => Err(TypeError::new(format!(
                        "invalid operands {lt} {op} {rt} in `{}`",
                        crate::pretty::expr_to_string(e)
                    ))),
                }
            }
            Expr::Field(base, field) => {
                let bt = self.type_of_with(lookup, base)?;
                let sname = match &bt {
                    Type::Struct(n) => n.clone(),
                    _ => {
                        return Err(TypeError::new(format!(
                            "field access `.{field}` on non-struct type {bt}"
                        )))
                    }
                };
                let sd = self
                    .structs
                    .get(&sname)
                    .ok_or_else(|| TypeError::new(format!("unknown struct `{sname}`")))?;
                sd.field_type(field)
                    .cloned()
                    .ok_or_else(|| TypeError::new(format!("struct {sname} has no field `{field}`")))
            }
            Expr::Index(base, idx) => {
                let bt = self.type_of_with(lookup, base)?;
                let it = self.type_of_with(lookup, idx)?;
                if it != Type::Int {
                    return Err(TypeError::new("array index must be an int"));
                }
                bt.pointee()
                    .cloned()
                    .ok_or_else(|| TypeError::new(format!("cannot index non-array type {bt}")))
            }
            Expr::Call(name, args) => {
                if let Some(t) = intrinsic_return(name) {
                    return Ok(t);
                }
                let sig = self
                    .functions
                    .get(name)
                    .ok_or_else(|| TypeError::new(format!("unknown function `{name}`")))?
                    .clone();
                if sig.params.len() != args.len() {
                    return Err(TypeError::new(format!(
                        "`{name}` expects {} arguments, got {}",
                        sig.params.len(),
                        args.len()
                    )));
                }
                for (formal, actual) in sig.params.iter().zip(args) {
                    let at = self.type_of_with(lookup, actual)?;
                    if !compatible(formal, &at) {
                        return Err(TypeError::new(format!(
                            "argument `{}` of `{name}` has type {at}, expected {formal}",
                            crate::pretty::expr_to_string(actual)
                        )));
                    }
                }
                Ok(sig.ret)
            }
        }
    }
}

/// Intrinsics recognized by the toolkit (modeled, not user-defined).
///
/// `nondet()` returns an arbitrary int (environment input) and `malloc(n)`
/// returns a fresh object pointer; both are understood by the interpreter
/// and conservatively havoced by the abstraction.
pub fn intrinsic_return(name: &str) -> Option<Type> {
    match name {
        "nondet" => Some(Type::Int),
        "malloc" => Some(Type::Ptr(Box::new(Type::Void))),
        _ => None,
    }
}

/// Type compatibility: `int` with `int`, any pointer with `void*`/`NULL`,
/// identical types, arrays decaying to pointers.
pub fn compatible(a: &Type, b: &Type) -> bool {
    let decay = |t: &Type| match t {
        Type::Array(elem, _) => Type::Ptr(elem.clone()),
        other => other.clone(),
    };
    let (a, b) = (decay(a), decay(b));
    if a == b {
        return true;
    }
    match (&a, &b) {
        (Type::Ptr(x), Type::Ptr(y)) => **x == Type::Void || **y == Type::Void || x == y,
        // literal 0 used as a null pointer
        (Type::Ptr(_), Type::Int) | (Type::Int, Type::Ptr(_)) => true,
        _ => false,
    }
}

/// Checks every statement of every function in the program.
///
/// # Errors
///
/// Returns the first [`TypeError`] encountered.
pub fn check_program(program: &Program) -> Result<TypeEnv, TypeError> {
    let env = TypeEnv::new(program);
    for f in &program.functions {
        check_stmt(&env, f, &f.body)?;
    }
    Ok(env)
}

fn check_stmt(env: &TypeEnv, f: &Function, s: &Stmt) -> Result<(), TypeError> {
    match s {
        Stmt::Skip | Stmt::Goto(_) | Stmt::Label(_) | Stmt::Break | Stmt::Continue => Ok(()),
        Stmt::Assign { lhs, rhs, .. } => {
            let lt = env.type_of(Some(f), lhs)?;
            let rt = env.type_of(Some(f), rhs)?;
            if !compatible(&lt, &rt) {
                return Err(TypeError::new(format!(
                    "cannot assign {rt} to {lt} in `{} = {}`",
                    crate::pretty::expr_to_string(lhs),
                    crate::pretty::expr_to_string(rhs)
                )));
            }
            Ok(())
        }
        Stmt::Call {
            dst, func, args, ..
        } => {
            let call = Expr::Call(func.clone(), args.clone());
            let rt = env.type_of(Some(f), &call)?;
            if let Some(d) = dst {
                let dt = env.type_of(Some(f), d)?;
                if rt == Type::Void {
                    return Err(TypeError::new(format!(
                        "void function `{func}` used as a value"
                    )));
                }
                if !compatible(&dt, &rt) {
                    return Err(TypeError::new(format!(
                        "cannot assign {rt} returned by `{func}` to {dt}"
                    )));
                }
            }
            Ok(())
        }
        Stmt::Seq(stmts) => {
            for st in stmts {
                check_stmt(env, f, st)?;
            }
            Ok(())
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
            ..
        } => {
            env.type_of(Some(f), cond)?;
            check_stmt(env, f, then_branch)?;
            check_stmt(env, f, else_branch)
        }
        Stmt::While { cond, body, .. } => {
            env.type_of(Some(f), cond)?;
            check_stmt(env, f, body)
        }
        Stmt::Return { value, .. } => match (value, &f.ret) {
            (None, Type::Void) => Ok(()),
            (None, t) => Err(TypeError::new(format!(
                "`{}` must return a value of type {t}",
                f.name
            ))),
            (Some(_), Type::Void) => Err(TypeError::new(format!(
                "void function `{}` returns a value",
                f.name
            ))),
            (Some(e), t) => {
                let et = env.type_of(Some(f), e)?;
                if compatible(t, &et) {
                    Ok(())
                } else {
                    Err(TypeError::new(format!(
                        "`{}` returns {et}, expected {t}",
                        f.name
                    )))
                }
            }
        },
        Stmt::Assert { cond, .. } | Stmt::Assume { cond, .. } => {
            env.type_of(Some(f), cond)?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str) -> Result<TypeEnv, TypeError> {
        let p = parse_program(src).unwrap();
        check_program(&p)
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            r#"
            typedef struct cell { int val; struct cell* next; } *list;
            int g;
            int f(list p, int x) {
                list q;
                q = p->next;
                if (q != NULL && q->val > x) { g = g + 1; }
                return g;
            }
        "#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_variable() {
        let err = check("void f() { x = 1; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_bad_deref() {
        let err = check("void f(int x) { int y; y = *x; }").unwrap_err();
        assert!(err.message.contains("dereference"));
    }

    #[test]
    fn rejects_missing_field() {
        let err =
            check("struct s { int a; }; void f(struct s* p) { int y; y = p->b; }").unwrap_err();
        assert!(err.message.contains("no field"));
    }

    #[test]
    fn rejects_arity_mismatch() {
        let err = check("int g(int x) { return x; } void f() { int y; y = g(1, 2); }").unwrap_err();
        assert!(err.message.contains("arguments"));
    }

    #[test]
    fn null_is_compatible_with_pointers() {
        check("void f(int* p) { p = NULL; if (p == NULL) { p = p; } }").unwrap();
    }

    #[test]
    fn pointer_arithmetic_keeps_pointer_type() {
        let p = parse_program("void f(int* p, int i) { p = p + i; }").unwrap();
        let env = TypeEnv::new(&p);
        let f = p.function("f").unwrap();
        let e = crate::parser::parse_expr("p + i").unwrap();
        assert_eq!(
            env.type_of(Some(f), &e).unwrap(),
            Type::Ptr(Box::new(Type::Int))
        );
    }

    #[test]
    fn type_of_addr_of() {
        let p = parse_program("void f(int x) { ; }").unwrap();
        let env = TypeEnv::new(&p);
        let f = p.function("f").unwrap();
        let e = crate::parser::parse_expr("&x").unwrap();
        assert_eq!(
            env.type_of(Some(f), &e).unwrap(),
            Type::Ptr(Box::new(Type::Int))
        );
    }
}
