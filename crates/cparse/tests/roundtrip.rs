//! Property tests: the pretty printer and parser are mutually inverse,
//! and simplification preserves the concrete semantics.

use cparse::interp::{Interp, Value};
use cparse::parser::{parse_expr, parse_program};
use cparse::{parse_and_simplify, pretty};
use testutil::{run_cases, Rng};

#[derive(Debug, Clone)]
enum E {
    Num(i64),
    Var(usize),
    Neg(Box<E>),
    Not(Box<E>),
    Bin(usize, Box<E>, Box<E>),
}

const OPS: [&str; 13] = [
    "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
];
const VARS: [&str; 3] = ["alpha", "beta", "gamma"];

fn render(e: &E) -> String {
    match e {
        E::Num(v) => v.to_string(),
        E::Var(i) => VARS[i % 3].to_string(),
        E::Neg(x) => format!("-({})", render(x)),
        E::Not(x) => format!("!({})", render(x)),
        E::Bin(op, a, b) => {
            format!("({}) {} ({})", render(a), OPS[op % 13], render(b))
        }
    }
}

fn gen_e(rng: &mut Rng, depth: u32) -> E {
    if depth == 0 || rng.ratio(1, 3) {
        return if rng.gen_bool() {
            E::Num(rng.gen_range(0, 100))
        } else {
            E::Var(rng.index(3))
        };
    }
    match rng.index(3) {
        0 => E::Neg(Box::new(gen_e(rng, depth - 1))),
        1 => E::Not(Box::new(gen_e(rng, depth - 1))),
        _ => E::Bin(
            rng.index(13),
            Box::new(gen_e(rng, depth - 1)),
            Box::new(gen_e(rng, depth - 1)),
        ),
    }
}

fn eval(e: &E, env: &[i64; 3]) -> Option<i64> {
    Some(match e {
        E::Num(v) => *v,
        E::Var(i) => env[i % 3],
        E::Neg(x) => eval(x, env)?.wrapping_neg(),
        E::Not(x) => i64::from(eval(x, env)? == 0),
        E::Bin(op, a, b) => {
            let (x, y) = (eval(a, env)?, eval(b, env)?);
            match OPS[op % 13] {
                "+" => x.wrapping_add(y),
                "-" => x.wrapping_sub(y),
                "*" => x.wrapping_mul(y),
                "/" => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_div(y)
                }
                "%" => {
                    if y == 0 {
                        return None;
                    }
                    x.wrapping_rem(y)
                }
                "<" => i64::from(x < y),
                "<=" => i64::from(x <= y),
                ">" => i64::from(x > y),
                ">=" => i64::from(x >= y),
                "==" => i64::from(x == y),
                "!=" => i64::from(x != y),
                "&&" => i64::from(x != 0 && y != 0),
                "||" => i64::from(x != 0 || y != 0),
                _ => unreachable!(),
            }
        }
    })
}

#[test]
fn expressions_round_trip_through_the_printer() {
    run_cases(
        "expressions_round_trip_through_the_printer",
        256,
        |rng| gen_e(rng, 4),
        |e| {
            let src = render(e);
            let parsed = parse_expr(&src).expect("generated expression parses");
            let printed = pretty::expr_to_string(&parsed);
            let reparsed = parse_expr(&printed).expect("printed expression parses");
            assert_eq!(parsed, reparsed, "printed: {printed}");
        },
    );
}

#[test]
fn interpreter_matches_an_independent_evaluator() {
    run_cases(
        "interpreter_matches_an_independent_evaluator",
        256,
        |rng| {
            let e = gen_e(rng, 4);
            let args = [
                rng.gen_range(-5, 6) as i8,
                rng.gen_range(-5, 6) as i8,
                rng.gen_range(-5, 6) as i8,
            ];
            (e, args)
        },
        |(e, args)| {
            let src = format!(
                "int f(int alpha, int beta, int gamma) {{ return {}; }}",
                render(e)
            );
            let program = parse_and_simplify(&src).expect("generated program parses");
            let mut interp = Interp::new(&program).expect("interp");
            let argv = args.iter().map(|v| Value::Int(*v as i64)).collect();
            let got = interp.run("f", argv);
            let env = [args[0] as i64, args[1] as i64, args[2] as i64];
            match eval(e, &env) {
                Some(expected) => {
                    assert_eq!(got.ok().flatten(), Some(Value::Int(expected)));
                }
                None => {
                    // division by zero: the interpreter must trap
                    assert!(got.is_err());
                }
            }
        },
    );
}

#[test]
fn statement_round_trip_on_the_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/toys");
    for entry in std::fs::read_dir(dir).expect("corpus") {
        let path = entry.expect("entry").path();
        if path.extension().map(|e| e != "c").unwrap_or(true) {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read");
        let p1 = parse_program(&src).expect("parses");
        let printed = pretty::program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{path:?} reprint fails: {e}\n{printed}"));
        assert_eq!(p1.globals, p2.globals, "{path:?}");
        assert_eq!(p1.functions.len(), p2.functions.len(), "{path:?}");
    }
}
