//! An append-only on-disk store for cross-run verification caches.
//!
//! The in-memory caches of the toolkit — the shared prover-verdict cache
//! and the reuse session's transfer-function memo — are keyed by
//! *store-independent canonical fingerprints*, so their contents are
//! meaningful in any later process. This crate persists them as a flat
//! log of `(kind, key, value)` records behind an in-memory index, with
//! three properties the daemon depends on:
//!
//! * **Opening never fails.** A missing, truncated, corrupted,
//!   bit-flipped, or version-mismatched file degrades to a cold start
//!   with a warning recorded on the handle — never an error, and (since
//!   every record is checksummed) never a wrong value.
//! * **Appends are atomic enough.** [`flush`](DiskCache::flush) appends
//!   only whole records; a crash mid-append leaves at most one partial
//!   record at the tail, which the next open discards.
//! * **Single writer.** A sibling `.lock` file (created with
//!   `O_CREAT | O_EXCL`) serializes writers; a second opener degrades to
//!   an in-memory cold start that never writes, so a daemon and a CLI
//!   pointed at the same store cannot interleave appends.
//!
//! The store is a cache, not a database: losing it costs wall-clock
//! time on the next run, nothing else. That is why every failure mode
//! maps to "start cold".
//!
//! # Record format
//!
//! ```text
//! header:  "SLAMDC" magic | u16 LE format version
//! record:  u8 kind | u32 LE key len | u32 LE val len | key | val
//!          | u64 LE FNV-1a checksum of everything above
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// File magic, followed by the format version.
pub const MAGIC: &[u8; 6] = b"SLAMDC";
/// Current record-format version. A file with any other version is
/// ignored (cold start) and rewritten on the next flush.
pub const FORMAT_VERSION: u16 = 1;

/// Record kinds. The store itself is agnostic; these constants just keep
/// the producers and consumers in one namespace.
pub mod kind {
    /// A shared-cache implication verdict: key is the canonical formula
    /// encoding, value a single [`verdict`](super::verdict) byte.
    pub const VERDICT: u8 = 1;
    /// A reuse-session transfer-function memo entry: key is
    /// `config signature ++ 0x00 ++ leaf fingerprint`, value the exact
    /// binary encoding of the leaf output.
    pub const MEMO: u8 = 2;
}

/// Portable one-byte encodings of prover verdicts, shared by the writer
/// (scheduler checkpoint) and reader (scheduler hydration).
pub mod verdict {
    /// Satisfiable.
    pub const SAT: u8 = 0;
    /// Unsatisfiable.
    pub const UNSAT: u8 = 1;
    /// Solver budget exhausted; persisted so a warm run repeats the cold
    /// run's cached behavior exactly.
    pub const UNKNOWN: u8 = 2;
}

/// Upper bound on a single key or value, far above anything the caches
/// produce; a length past it is treated as corruption, so a bit flip in
/// a length field cannot make the loader allocate gigabytes.
const MAX_FIELD_LEN: u32 = 64 * 1024 * 1024;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A persistent `(kind, key) -> value` map backed by an append-only log.
///
/// All reads are served from the in-memory index built at open time;
/// [`put`](DiskCache::put) updates the index immediately and queues the
/// record, and [`flush`](DiskCache::flush) appends the queue to disk.
#[derive(Debug)]
pub struct DiskCache {
    path: PathBuf,
    lock_path: Option<PathBuf>,
    entries: HashMap<(u8, Vec<u8>), Vec<u8>>,
    /// Records accepted since the last flush, in insertion order.
    dirty: Vec<(u8, Vec<u8>)>,
    /// The on-disk file must be rewritten from scratch (it was corrupt,
    /// version-mismatched, or an overwrite changed an existing key).
    needs_rewrite: bool,
    read_only: bool,
    warnings: Vec<String>,
    loaded: usize,
}

impl DiskCache {
    /// Opens (or prepares to create) the store at `path`.
    ///
    /// Never fails: every problem — unreadable file, bad header, corrupt
    /// records, a concurrent writer holding the lock — degrades to a
    /// cold (possibly read-only) store and a warning in
    /// [`warnings`](DiskCache::warnings).
    pub fn open(path: impl AsRef<Path>) -> DiskCache {
        let path = path.as_ref().to_path_buf();
        let mut cache = DiskCache {
            lock_path: None,
            entries: HashMap::new(),
            dirty: Vec::new(),
            needs_rewrite: false,
            read_only: false,
            warnings: Vec::new(),
            loaded: 0,
            path,
        };
        cache.acquire_lock();
        cache.load();
        cache
    }

    /// An unlocked, never-flushed store for callers that want the same
    /// interface without any disk traffic (the "cache off" arm).
    pub fn in_memory() -> DiskCache {
        DiskCache {
            path: PathBuf::new(),
            lock_path: None,
            entries: HashMap::new(),
            dirty: Vec::new(),
            needs_rewrite: false,
            read_only: true,
            warnings: Vec::new(),
            loaded: 0,
        }
    }

    fn acquire_lock(&mut self) {
        let lock_path = self.path.with_extension("lock");
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                self.lock_path = Some(lock_path);
            }
            Err(e) => {
                self.read_only = true;
                self.warnings.push(format!(
                    "store {} is locked by another process ({e}); \
                     running read-only from a cold cache (delete {} if stale)",
                    self.path.display(),
                    lock_path.display()
                ));
            }
        }
    }

    fn load(&mut self) {
        // a concurrent writer may be mid-append; reading would race, so a
        // lock-degraded open starts cold as well as read-only
        if self.read_only {
            return;
        }
        let mut buf = Vec::new();
        match File::open(&self.path) {
            Ok(mut f) => {
                if let Err(e) = f.read_to_end(&mut buf) {
                    self.warn_cold(format!("unreadable store file: {e}"));
                    return;
                }
            }
            // no file yet: a clean cold start, not worth a warning
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
            Err(e) => {
                self.warn_cold(format!("cannot open store file: {e}"));
                return;
            }
        }
        if buf.len() < MAGIC.len() + 2 || &buf[..MAGIC.len()] != MAGIC {
            self.warn_cold("store file has no valid header".into());
            return;
        }
        let version = u16::from_le_bytes([buf[MAGIC.len()], buf[MAGIC.len() + 1]]);
        if version != FORMAT_VERSION {
            self.warn_cold(format!(
                "store format version {version} != supported {FORMAT_VERSION}"
            ));
            return;
        }
        let mut at = MAGIC.len() + 2;
        while at < buf.len() {
            match decode_record(&buf[at..]) {
                Ok((kind, key, val, consumed)) => {
                    self.entries.insert((kind, key.to_vec()), val.to_vec());
                    self.loaded += 1;
                    at += consumed;
                }
                // a partial record at EOF is the expected residue of a
                // crash mid-append: corruption either way — drop
                // everything already loaded and start cold
                Err(why) => {
                    self.warn_cold(format!("corrupt record at byte {at}: {why}"));
                    self.entries.clear();
                    self.loaded = 0;
                    return;
                }
            }
        }
    }

    fn warn_cold(&mut self, why: String) {
        self.warnings.push(format!(
            "store {}: {why}; starting from a cold cache",
            self.path.display()
        ));
        self.needs_rewrite = true;
    }

    /// Looks up a record.
    pub fn get(&self, kind: u8, key: &[u8]) -> Option<&[u8]> {
        self.entries.get(&(kind, key.to_vec())).map(Vec::as_slice)
    }

    /// Inserts (or overwrites) a record. New keys append on the next
    /// flush; changing an existing key's value forces a full rewrite so
    /// the log never resurrects the stale value.
    pub fn put(&mut self, kind: u8, key: Vec<u8>, val: Vec<u8>) {
        match self.entries.get(&(kind, key.clone())) {
            Some(existing) if *existing == val => {}
            Some(_) => {
                self.needs_rewrite = true;
                self.entries.insert((kind, key), val);
            }
            None => {
                self.dirty.push((kind, key.clone()));
                self.entries.insert((kind, key), val);
            }
        }
    }

    /// Every record of `kind`, in unspecified order.
    pub fn iter_kind(&self, kind: u8) -> impl Iterator<Item = (&[u8], &[u8])> {
        self.entries
            .iter()
            .filter(move |((k, _), _)| *k == kind)
            .map(|((_, key), val)| (key.as_slice(), val.as_slice()))
    }

    /// Number of resident records (all kinds).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no records are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records read back from disk at open time (0 on any cold start).
    pub fn loaded(&self) -> usize {
        self.loaded
    }

    /// True when another process held the writer lock at open time: the
    /// store serves an empty cache and [`flush`](DiskCache::flush) is a
    /// no-op.
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Everything that went wrong while opening, in order. An empty
    /// slice means a fully warm (or genuinely fresh) start.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// Writes queued records to disk: an append for the common case, a
    /// full rewrite after corruption or an overwrite. Read-only stores
    /// return `Ok` without touching the filesystem.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the in-memory index stays valid and a
    /// later flush retries the same records.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.read_only {
            return Ok(());
        }
        if self.needs_rewrite {
            let tmp = self.path.with_extension("tmp");
            {
                let mut f = File::create(&tmp)?;
                f.write_all(MAGIC)?;
                f.write_all(&FORMAT_VERSION.to_le_bytes())?;
                // deterministic record order keeps rewrites reproducible
                let mut keys: Vec<&(u8, Vec<u8>)> = self.entries.keys().collect();
                keys.sort();
                for k in keys {
                    f.write_all(&encode_record(k.0, &k.1, &self.entries[k]))?;
                }
                f.sync_all()?;
            }
            std::fs::rename(&tmp, &self.path)?;
            self.needs_rewrite = false;
            self.dirty.clear();
            return Ok(());
        }
        if self.dirty.is_empty() {
            return Ok(());
        }
        let mut f = match OpenOptions::new().append(true).open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut f = File::create(&self.path)?;
                f.write_all(MAGIC)?;
                f.write_all(&FORMAT_VERSION.to_le_bytes())?;
                f
            }
            Err(e) => return Err(e),
        };
        let mut out = Vec::new();
        for (kind, key) in &self.dirty {
            out.extend_from_slice(&encode_record(
                *kind,
                key,
                &self.entries[&(*kind, key.clone())],
            ));
        }
        f.write_all(&out)?;
        f.sync_all()?;
        self.dirty.clear();
        Ok(())
    }
}

impl Drop for DiskCache {
    fn drop(&mut self) {
        if let Some(lock) = &self.lock_path {
            let _ = std::fs::remove_file(lock);
        }
    }
}

fn encode_record(kind: u8, key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 8 + key.len() + val.len() + 8);
    out.push(kind);
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(&(val.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(val);
    let sum = fnv1a(FNV_OFFSET, &out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// One decoded record: kind, key, value, and the bytes consumed.
type DecodedRecord<'a> = (u8, &'a [u8], &'a [u8], usize);

/// Decodes one record from the front of `buf`, returning the record and
/// the bytes consumed.
fn decode_record(buf: &[u8]) -> Result<DecodedRecord<'_>, &'static str> {
    if buf.len() < 9 {
        return Err("truncated record head");
    }
    let kind = buf[0];
    let key_len = u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]);
    let val_len = u32::from_le_bytes([buf[5], buf[6], buf[7], buf[8]]);
    if key_len > MAX_FIELD_LEN || val_len > MAX_FIELD_LEN {
        return Err("implausible field length");
    }
    let body_end = 9usize + key_len as usize + val_len as usize;
    let total = body_end + 8;
    if buf.len() < total {
        return Err("truncated record body");
    }
    let sum = u64::from_le_bytes(buf[body_end..total].try_into().expect("8 bytes"));
    if fnv1a(FNV_OFFSET, &buf[..body_end]) != sum {
        return Err("checksum mismatch");
    }
    let key = &buf[9..9 + key_len as usize];
    let val = &buf[9 + key_len as usize..body_end];
    Ok((kind, key, val, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "diskcache_unit_{}_{}_{name}.store",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "_")
        ));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(p.with_extension("lock"));
        p
    }

    #[test]
    fn roundtrip_and_append() {
        let path = tmp_path("roundtrip");
        {
            let mut c = DiskCache::open(&path);
            assert!(c.warnings().is_empty(), "{:?}", c.warnings());
            c.put(kind::VERDICT, b"k1".to_vec(), vec![verdict::SAT]);
            c.put(kind::MEMO, b"k1".to_vec(), b"other namespace".to_vec());
            c.flush().unwrap();
            c.put(kind::VERDICT, b"k2".to_vec(), vec![verdict::UNSAT]);
            c.flush().unwrap();
        }
        let c = DiskCache::open(&path);
        assert!(c.warnings().is_empty(), "{:?}", c.warnings());
        assert_eq!(c.loaded(), 3);
        assert_eq!(c.get(kind::VERDICT, b"k1"), Some(&[verdict::SAT][..]));
        assert_eq!(c.get(kind::VERDICT, b"k2"), Some(&[verdict::UNSAT][..]));
        assert_eq!(c.get(kind::MEMO, b"k1"), Some(&b"other namespace"[..]));
        assert_eq!(c.get(kind::MEMO, b"k2"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overwrite_forces_rewrite_and_survives() {
        let path = tmp_path("overwrite");
        {
            let mut c = DiskCache::open(&path);
            c.put(kind::MEMO, b"a".to_vec(), b"v1".to_vec());
            c.flush().unwrap();
            c.put(kind::MEMO, b"a".to_vec(), b"v2".to_vec());
            c.flush().unwrap();
        }
        let c = DiskCache::open(&path);
        assert!(c.warnings().is_empty(), "{:?}", c.warnings());
        assert_eq!(c.get(kind::MEMO, b"a"), Some(&b"v2"[..]));
        assert_eq!(c.loaded(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn second_opener_degrades_to_read_only_cold() {
        let path = tmp_path("lock");
        let mut first = DiskCache::open(&path);
        first.put(kind::VERDICT, b"k".to_vec(), vec![verdict::SAT]);
        first.flush().unwrap();
        {
            let mut second = DiskCache::open(&path);
            assert!(second.read_only());
            assert!(second.is_empty());
            assert_eq!(second.warnings().len(), 1);
            // writes are accepted in memory but never reach the disk
            second.put(kind::VERDICT, b"x".to_vec(), vec![verdict::UNSAT]);
            second.flush().unwrap();
        }
        drop(first);
        let reopened = DiskCache::open(&path);
        assert!(!reopened.read_only());
        assert_eq!(reopened.loaded(), 1);
        assert_eq!(reopened.get(kind::VERDICT, b"x"), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn in_memory_store_never_touches_disk() {
        let mut c = DiskCache::in_memory();
        c.put(kind::VERDICT, b"k".to_vec(), vec![verdict::SAT]);
        assert_eq!(c.get(kind::VERDICT, b"k"), Some(&[verdict::SAT][..]));
        c.flush().unwrap();
        assert!(c.read_only());
    }
}
