//! Robustness gates for the on-disk store: every way a store file can be
//! damaged must degrade to a cold start with a warning — never an error,
//! never a stale or corrupted value served as valid.

use diskcache::{kind, verdict, DiskCache, FORMAT_VERSION, MAGIC};
use std::path::PathBuf;

fn tmp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "diskcache_robust_{}_{name}.store",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(p.with_extension("lock"));
    p
}

/// A store with a handful of records of both kinds, flushed to disk.
fn seeded(path: &PathBuf) {
    let mut c = DiskCache::open(path);
    for i in 0..10u8 {
        c.put(kind::VERDICT, vec![b'v', i], vec![verdict::SAT]);
        c.put(kind::MEMO, vec![b'm', i], vec![i; 64]);
    }
    c.flush().unwrap();
    drop(c);
}

/// Cold start: no records, at least one warning, and writes still work.
fn assert_cold_but_usable(path: &PathBuf) {
    let mut c = DiskCache::open(path);
    assert_eq!(c.loaded(), 0, "damaged store must load nothing");
    assert!(c.is_empty());
    assert!(
        !c.warnings().is_empty(),
        "damage must be reported, not silent"
    );
    assert!(!c.read_only(), "a damaged file does not block writing");
    // the store recovers: a put + flush rebuilds a valid file
    c.put(kind::VERDICT, b"fresh".to_vec(), vec![verdict::UNSAT]);
    c.flush().unwrap();
    drop(c);
    let c = DiskCache::open(path);
    assert!(c.warnings().is_empty(), "{:?}", c.warnings());
    assert_eq!(c.loaded(), 1);
    assert_eq!(c.get(kind::VERDICT, b"fresh"), Some(&[verdict::UNSAT][..]));
}

#[test]
fn truncated_file_degrades_to_cold_start() {
    let path = tmp_path("truncated");
    seeded(&path);
    let bytes = std::fs::read(&path).unwrap();
    // cut mid-record (three quarters in lands inside some record body)
    std::fs::write(&path, &bytes[..bytes.len() * 3 / 4]).unwrap();
    assert_cold_but_usable(&path);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_single_bit_flip_is_detected() {
    let path = tmp_path("bitflip");
    seeded(&path);
    let bytes = std::fs::read(&path).unwrap();
    // flip one bit at a spread of positions across header and records;
    // the loader must either cold-start or (never) serve a wrong value
    for pos in (0..bytes.len()).step_by(37) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        let c = DiskCache::open(&path);
        assert_eq!(
            c.loaded(),
            0,
            "bit flip at byte {pos} went undetected ({} records loaded)",
            c.loaded()
        );
        assert!(!c.warnings().is_empty(), "flip at {pos} not reported");
        drop(c);
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn version_mismatch_degrades_to_cold_start() {
    let path = tmp_path("version");
    seeded(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    let next = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[MAGIC.len()] = next[0];
    bytes[MAGIC.len() + 1] = next[1];
    std::fs::write(&path, &bytes).unwrap();
    assert_cold_but_usable(&path);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn foreign_file_degrades_to_cold_start() {
    let path = tmp_path("foreign");
    std::fs::write(&path, b"this is not a store file at all").unwrap();
    assert_cold_but_usable(&path);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn empty_file_degrades_to_cold_start() {
    let path = tmp_path("empty");
    std::fs::write(&path, b"").unwrap();
    assert_cold_but_usable(&path);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn garbage_appended_after_valid_records_is_rejected() {
    let path = tmp_path("tail_garbage");
    seeded(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    std::fs::write(&path, &bytes).unwrap();
    // conservative contract: any corruption anywhere drops the whole
    // cache rather than guessing which prefix to trust
    assert_cold_but_usable(&path);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn concurrent_openers_never_interleave_writes() {
    let path = tmp_path("concurrent");
    seeded(&path);
    let bytes_before = std::fs::read(&path).unwrap();
    let mut daemon = DiskCache::open(&path);
    assert_eq!(daemon.loaded(), 20);
    // a CLI pointed at the daemon's store: cold, read-only, warned
    let mut cli = DiskCache::open(&path);
    assert!(cli.read_only());
    assert_eq!(cli.loaded(), 0);
    assert_eq!(cli.warnings().len(), 1);
    cli.put(kind::MEMO, b"cli".to_vec(), b"never lands".to_vec());
    cli.flush().unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), bytes_before);
    drop(cli);
    // the daemon's lock survives the CLI's exit and its writes still work
    daemon.put(kind::MEMO, b"daemon".to_vec(), b"lands".to_vec());
    daemon.flush().unwrap();
    drop(daemon);
    let c = DiskCache::open(&path);
    assert_eq!(c.loaded(), 21);
    assert_eq!(c.get(kind::MEMO, b"daemon"), Some(&b"lands"[..]));
    assert_eq!(c.get(kind::MEMO, b"cli"), None);
    std::fs::remove_file(&path).unwrap();
}
